"""The worker process: one shard-owning engine behind a Unix socket.

Each worker is spawned (not forked — the front is multi-threaded) from a
picklable :class:`WorkerSpec`, attaches the shared-memory dataset
manifests as zero-copy views, and serves pickled request/response
messages over its ``AF_UNIX`` socket:

* **session ops** — the worker owns every session the consistent-hash
  ring routes to its slot, running the unmodified engine
  (:class:`~repro.core.caching.CachingEngine` over
  :class:`~repro.core.engine.SubDEx`), so per-session responses are
  byte-identical to the single-process server's;
* **scan** — the scatter half of a phase scan: count matrices for the
  requested shards only (:func:`~repro.cluster.merge.partial_scan`);
* **ping / stats / shutdown** — supervision, observability scrape, and
  graceful drain.

Resilience mirrors the front: each worker keeps its own checkpoint
store (``<checkpoint_dir>/worker-<i>``), restores from it on (re)start,
checkpoints on every mutation, and flushes on SIGTERM before exiting 0.
Observability crosses the boundary: requests carry the front's trace id
into a per-worker tracer + span-stats sink whose summary the front
exposes under ``/debug/spans/summary``.
"""

from __future__ import annotations

import logging
import os
import signal
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..anytime import (
    QualityLadder,
    QualityRung,
    RefinementLostError,
    RefinementStore,
    budget_deadline,
)
from ..core.caching import CachingEngine
from ..core.engine import SubDEx, SubDExConfig
from ..core.history import ExplorationLog
from ..core.modes import ExplorationMode, ExplorationPath
from ..exceptions import EmptyGroupError, OperationError, ReproError
from ..obs.collect import ThreadLocalTraceCapture, fragment_from_trace
from ..obs.tracing import Tracer
from ..perf.spanstats import SpanStatsSink
from ..resilience.checkpoint import (
    CheckpointStore,
    SessionCheckpoint,
    SessionCheckpointer,
    restore_session,
)
from ..resilience.deadline import Deadline, DeadlineExceeded, deadline_scope
from ..server.protocol import (
    ProtocolError,
    apply_edit,
    criteria_from_json,
    criteria_to_json,
    error_payload,
    rating_map_to_json,
    recommendation_to_json,
    step_to_json,
)
from ..server.registry import (
    SessionGoneError,
    SessionLimitError,
    SessionRegistry,
    UnknownSessionError,
)
from ..slo import SLOConfig, SLOTracker
from . import ipc
from .merge import partial_scan
from .partition import ShardMap, attach_database
from .shm import SegmentRegistry

__all__ = ["WorkerSpec", "worker_main"]

_log = logging.getLogger("repro.cluster.worker")


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned worker needs, in picklable form."""

    index: int
    n_workers: int
    n_shards: int
    socket_path: str
    #: dataset name → :func:`~repro.cluster.partition.share_database` manifest
    manifests: Mapping[str, Mapping[str, Any]]
    #: dataset name → engine configuration (mirrors the front's factories)
    configs: Mapping[str, SubDExConfig]
    default_dataset: str
    max_sessions: int = 64
    session_ttl_seconds: float = 1800.0
    group_cache_capacity: int = 256
    result_cache_capacity: int = 128
    #: Per-worker checkpoint subdirectories hang off this root.
    checkpoint_dir: str | None = None
    checkpoint_interval_seconds: float = 30.0
    tracing_enabled: bool = True
    #: JSON form of the front's :class:`~repro.slo.SLOConfig`; ``None``
    #: disables per-worker SLO windows (the front still tracks HTTP-level
    #: SLOs itself).
    slo_config: Mapping[str, Any] | None = None
    #: Truncation guard for shipped trace fragments (fleet collection).
    trace_max_spans: int = 512


class WorkerApp:
    """Request dispatch + engine/session/checkpoint state of one worker."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.started = time.monotonic()
        self.segments = SegmentRegistry()
        self.databases = {
            name: attach_database(manifest, self.segments)
            for name, manifest in spec.manifests.items()
        }
        shard_map = ShardMap(spec.n_shards)
        self.record_shards = {
            name: shard_map.record_shards(db)
            for name, db in self.databases.items()
        }
        self._engines: dict[str, CachingEngine] = {}
        self._engines_lock = threading.Lock()
        self.registry = SessionRegistry(
            max_sessions=spec.max_sessions,
            ttl_seconds=spec.session_ttl_seconds,
        )
        self.tracer = Tracer(enabled=spec.tracing_enabled)
        self.span_stats = SpanStatsSink()
        self.tracer.add_sink(self.span_stats)
        # fleet trace collection: the root span closes on the handling
        # thread, so a thread-local capture lets handle() pick the
        # finished trace up and ship it back on the IPC reply
        self.trace_capture = ThreadLocalTraceCapture()
        self.tracer.add_sink(self.trace_capture)
        self.checkpointer: SessionCheckpointer | None = None
        if spec.checkpoint_dir is not None:
            store = CheckpointStore(
                os.path.join(spec.checkpoint_dir, f"worker-{spec.index}")
            )
            self.checkpointer = SessionCheckpointer(
                store,
                source=self._checkpoint_source,
                interval_seconds=spec.checkpoint_interval_seconds,
            )
        self.stop = threading.Event()
        self.requests_handled = 0
        #: anytime: the rung plans this worker executes and the
        #: refinement jobs it owns.  The store is process-local on
        #: purpose — a worker that dies takes its tokens with it, and
        #: polls after the restart answer a typed ``refinement_lost``.
        self.ladder = QualityLadder()
        self.refinements = RefinementStore()
        #: per-worker SLO windows over op traffic, scraped by the front's
        #: GET /slo and merged by addition into the fleet scorecard
        self.slo: SLOTracker | None = None
        if spec.slo_config is not None:
            self.slo = SLOTracker(SLOConfig.from_json(spec.slo_config))

    # -- engines -------------------------------------------------------------
    def engine(self, dataset: str) -> CachingEngine:
        database = self.databases.get(dataset)
        if database is None:
            raise ProtocolError(
                f"unknown dataset {dataset!r} "
                f"(served datasets: {', '.join(self.databases)})",
                "unknown_dataset",
            )
        with self._engines_lock:
            engine = self._engines.get(dataset)
            if engine is None:
                engine = CachingEngine(
                    SubDEx(database, self.spec.configs[dataset]),
                    group_capacity=self.spec.group_cache_capacity,
                    result_capacity=self.spec.result_cache_capacity,
                )
                self._engines[dataset] = engine
            return engine

    # -- checkpointing -------------------------------------------------------
    def _checkpoint_source(self):
        for managed in self.registry.live_sessions():
            if managed.session is None:
                continue
            if not managed.lock.acquire(blocking=False):
                continue
            try:
                yield SessionCheckpoint.capture(
                    managed.session_id,
                    managed.dataset,
                    managed.created_wall,
                    managed.session,
                )
            finally:
                managed.lock.release()

    def save_checkpoint(self, managed) -> None:
        if self.checkpointer is None or managed.session is None:
            return
        self.checkpointer.save(
            SessionCheckpoint.capture(
                managed.session_id,
                managed.dataset,
                managed.created_wall,
                managed.session,
            )
        )

    def restore_sessions(self) -> int:
        """Replay this worker's checkpoints — the restart-recovery path."""
        if self.checkpointer is None:
            return 0
        restored = 0
        for checkpoint in self.checkpointer.store.load_all():
            try:
                engine = self.engine(checkpoint.dataset)
                session = restore_session(engine, checkpoint)
                managed = self.registry.adopt(
                    checkpoint.session_id,
                    checkpoint.dataset,
                    session,
                    created_wall=checkpoint.created_wall,
                )
                managed.latest = session.steps[-1] if session.steps else None
                restored += 1
            except Exception:  # noqa: BLE001 - skip the unrestorable
                _log.warning(
                    "worker %d: failed to restore session %s; skipping",
                    self.spec.index,
                    checkpoint.session_id,
                    exc_info=True,
                )
        return restored

    # -- dispatch ------------------------------------------------------------
    def handle(self, message: Mapping[str, Any]) -> dict[str, Any]:
        op = message.get("op", "<missing>")
        payload = message.get("payload") or {}
        deadline_s = message.get("deadline_s")
        deadline = Deadline(deadline_s) if deadline_s else None
        started = time.perf_counter()
        self.requests_handled += 1
        with self.tracer.span(
            "worker.request",
            trace_id=message.get("trace_id"),
            op=op,
            worker=self.spec.index,
        ) as root:
            try:
                with deadline_scope(deadline):
                    handler = getattr(self, "op_" + op.replace(".", "_"), None)
                    if handler is None:
                        raise ProtocolError(
                            f"unknown worker op {op!r}", "unknown_op"
                        )
                    status, reply = handler(payload)
            except Exception as error:  # noqa: BLE001 - mapped to envelopes
                status, reply = self._error_envelope(error)
            root.set(status=status)
        elapsed = time.perf_counter() - started
        # supervision chatter (heartbeats, scrapes) would drown the ops
        # class; only real work feeds the worker's SLO windows
        if self.slo is not None and op not in ("ping", "stats", "slo"):
            degraded = False
            rung = None
            if isinstance(reply, dict):
                degraded = bool(reply.get("degraded"))
                quality = reply.get("quality")
                if isinstance(quality, dict):
                    rung = quality.get("rung")
            self.slo.ingest(
                op, status, elapsed, degraded=degraded, rung=rung, op=True
            )
        envelope = {
            "status": status,
            "payload": reply,
            "worker": self.spec.index,
            "server_ms": elapsed * 1000.0,
        }
        # fleet trace collection: ship this request's finished span tree
        # back as a fragment when the front asked for it (supervision
        # chatter uses raw ipc.request and never sets "collect")
        trace = self.trace_capture.take()
        if (
            message.get("collect")
            and message.get("trace_id")
            and trace is not None
            and trace.trace_id == message.get("trace_id")
        ):
            envelope["trace"] = fragment_from_trace(
                trace,
                self.spec.index,
                os.getpid(),
                max_spans=self.spec.trace_max_spans,
            )
        return envelope

    @staticmethod
    def _error_envelope(error: Exception) -> tuple[int, dict[str, Any]]:
        """The front's ``_run`` status map, reproduced for IPC replies."""
        if isinstance(error, DeadlineExceeded):
            return 504, error_payload(
                "deadline_exceeded", str(error), retryable=True
            )
        if isinstance(error, ProtocolError):
            return 400, error_payload(error.code, str(error))
        if isinstance(error, UnknownSessionError):
            return 404, error_payload("unknown_session", str(error))
        if isinstance(error, SessionGoneError):
            return 410, error_payload("session_gone", str(error))
        if isinstance(error, RefinementLostError):
            return 410, error_payload("refinement_lost", str(error))
        if isinstance(error, SessionLimitError):
            return 429, error_payload(
                "too_many_sessions", str(error), retryable=True, retry_after=1
            )
        if isinstance(error, (EmptyGroupError, OperationError)):
            return 400, error_payload("empty_group", str(error))
        if isinstance(error, ReproError):
            return 400, error_payload("bad_request", str(error))
        return 500, error_payload(
            "internal_error", f"{type(error).__name__}: {error}"
        )

    # -- supervision ops -----------------------------------------------------
    def op_ping(self, payload: Mapping[str, Any]) -> tuple[int, dict[str, Any]]:
        return 200, {
            "worker": self.spec.index,
            "pid": os.getpid(),
            "sessions": self.registry.live_count,
            "uptime_seconds": time.monotonic() - self.started,
        }

    def op_stats(self, payload: Mapping[str, Any]) -> tuple[int, dict[str, Any]]:
        limit = payload.get("limit")
        stats: dict[str, Any] = {
            "worker": self.spec.index,
            "pid": os.getpid(),
            "uptime_seconds": time.monotonic() - self.started,
            "requests_handled": self.requests_handled,
            "sessions": self.registry.counters(),
            "spans": self.span_stats.summary(limit=limit),
            "refinements": self.refinements.counters(),
        }
        if self.checkpointer is not None:
            stats["checkpoints"] = self.checkpointer.counters()
        return 200, stats

    def op_slo(self, payload: Mapping[str, Any]) -> tuple[int, dict[str, Any]]:
        """This worker's SLO window counts (merged at the front by addition)."""
        return 200, {
            "worker": self.spec.index,
            "totals": self.slo.totals() if self.slo is not None else None,
        }

    def op_shutdown(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        self.stop.set()
        return 200, {"worker": self.spec.index, "stopping": True}

    # -- scatter scans -------------------------------------------------------
    def op_scan(self, payload: Mapping[str, Any]) -> tuple[int, dict[str, Any]]:
        dataset = payload.get("dataset") or self.spec.default_dataset
        database = self.databases.get(dataset)
        if database is None:
            raise ProtocolError(
                f"unknown dataset {dataset!r}", "unknown_dataset"
            )
        with self.tracer.span(
            "engine.scan", dataset=dataset, n_specs=len(payload["specs"])
        ):
            with self.tracer.span(
                "phase.scan", shards=len(payload["shards"])
            ) as sp:
                partial = partial_scan(
                    database,
                    payload["criteria"],
                    payload["specs"],
                    self.record_shards[dataset],
                    payload["shards"],
                )
                sp.set(rows=partial.group_size)
        return 200, {
            "worker": self.spec.index,
            "shards": partial.shards,
            "group_size": partial.group_size,
            "counts": partial.counts,
        }

    # -- session ops (mirror the HTTP handlers one-to-one) --------------------
    def op_session_create(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        sid = payload["sid"]
        body = payload.get("body") or {}
        dataset = body.get("dataset") or self.spec.default_dataset
        if not isinstance(dataset, str):
            raise ProtocolError("'dataset' must be a string", "invalid_request")
        engine = self.engine(dataset)
        start = (
            criteria_from_json(body["criteria"])
            if body.get("criteria") is not None
            else None
        )
        self.registry.evict_idle()
        session = engine.session(start)
        managed = self.registry.adopt(sid, dataset, session)
        with managed.lock:
            record = session.step(with_recommendations=True)
            managed.latest = record
            self.save_checkpoint(managed)
            return 201, {
                "session_id": sid,
                "dataset": dataset,
                "degraded": record.degraded,
                "step": step_to_json(record),
            }

    def op_sessions_list(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        return 200, {"sessions": self.registry.summaries()}

    def op_session_summary(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        with self.registry.acquire(payload["sid"]) as managed:
            summary = managed.summary(now=time.monotonic())
            summary["criteria"] = (
                criteria_to_json(managed.session.criteria)
                if managed.session is not None
                else None
            )
            summary["worker"] = self.spec.index
            return 200, summary

    def op_session_close(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        sid = payload["sid"]
        managed = self.registry.close(sid)
        if self.checkpointer is not None:
            self.checkpointer.forget(sid)
        return 200, {
            "session_id": sid,
            "closed": True,
            "n_steps": managed.session.n_steps if managed.session else 0,
        }

    def op_session_maps(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        sid = payload["sid"]
        with self.registry.acquire(sid) as managed:
            record = managed.latest
            return 200, {
                "session_id": sid,
                "step_index": record.index if record else 0,
                "degraded": record.degraded if record else False,
                "criteria": criteria_to_json(record.criteria)
                if record
                else None,
                "maps": [
                    rating_map_to_json(rm, record.result.dw_utility(rm))
                    for rm in record.result.selected
                ]
                if record
                else [],
            }

    def op_session_recommendations(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        sid = payload["sid"]
        limit = payload.get("o")
        budget_ms = payload.get("budget_ms")
        rung_label = payload.get("rung")
        if budget_ms is None and rung_label is None:
            # pre-anytime shape: serve the stored step recommendations
            with self.registry.acquire(sid) as managed:
                scored = managed.latest.recommendations if managed.latest else ()
                if limit is not None:
                    scored = scored[:limit]
                return 200, {
                    "session_id": sid,
                    "recommendations": [
                        recommendation_to_json(i, s)
                        for i, s in enumerate(scored, 1)
                    ],
                }
        # anytime: the front picked the rung from its load signals; this
        # worker executes the plan under the soft budget (the envelope's
        # deadline_s stays the hard limit and still 504s on overrun)
        rung = (
            QualityRung.from_label(rung_label)
            if rung_label is not None
            else QualityRung.FULL
        )
        plan = self.ladder.plan(rung)
        with self.registry.acquire(sid) as managed:
            if plan.use_cached:
                scored = managed.latest.recommendations if managed.latest else ()
                if limit is not None:
                    scored = scored[:limit]
                quality: dict[str, Any] = {
                    "rung": rung.label,
                    "complete": False,
                    "stale": True,
                }
                partial = True
                recommendations = [
                    recommendation_to_json(i, s)
                    for i, s in enumerate(scored, 1)
                ]
            else:
                result = managed.session.recommendations_anytime(
                    budget=budget_deadline(budget_ms),
                    o=limit,
                    plan=plan,
                )
                quality = result.completeness.to_json()
                partial = result.is_partial
                recommendations = [
                    recommendation_to_json(i, s)
                    for i, s in enumerate(result, 1)
                ]
        refinement: dict[str, Any] | None = None
        if partial:
            token = uuid.uuid4().hex
            self.refinements.submit(token, lambda: self._refine_job(sid))
            refinement = {
                "token": token,
                "href": f"/sessions/{sid}/recommendations/refine/{token}",
            }
        if budget_ms is not None:
            quality["budget_ms"] = budget_ms
        return 200, {
            "session_id": sid,
            "degraded": partial or rung is not QualityRung.FULL,
            "quality": quality,
            "refinement": refinement,
            "recommendations": recommendations,
        }

    def _refine_job(self, sid: str) -> dict[str, Any]:
        """Full-quality recompute backing one refinement token."""
        with self.registry.acquire(sid) as managed:
            result = managed.session.recommendations_anytime()
            return {
                "quality": result.completeness.to_json(),
                "recommendations": [
                    recommendation_to_json(i, s)
                    for i, s in enumerate(result, 1)
                ],
            }

    def op_session_refine(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        return 200, {
            "session_id": payload["sid"],
            **self.refinements.poll(payload["token"]),
        }

    def op_session_apply(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        sid = payload["sid"]
        body = payload.get("body") or {}
        directives = [
            k
            for k in ("recommendation", "add", "drop", "sql", "criteria")
            if k in body
        ]
        if len(directives) > 1:
            raise ProtocolError(
                "apply body must contain exactly one of 'recommendation', "
                f"'add', 'drop', 'sql' or 'criteria', got {directives}",
                "invalid_edit",
            )
        with self.registry.acquire(sid) as managed:
            if "recommendation" in body:
                number = body["recommendation"]
                scored = managed.latest.recommendations if managed.latest else ()
                if (
                    not isinstance(number, int)
                    or isinstance(number, bool)
                    or not 1 <= number <= len(scored)
                ):
                    raise ProtocolError(
                        f"invalid recommendation number {number!r} "
                        f"(the current step offers 1..{len(scored)})",
                        "invalid_recommendation",
                    )
                record = managed.session.step(
                    scored[number - 1].operation, with_recommendations=True
                )
            else:
                criteria = apply_edit(managed.session.criteria, body)
                record = managed.session.apply_criteria(
                    criteria, with_recommendations=True
                )
            managed.latest = record
            self.save_checkpoint(managed)
            return 200, {
                "session_id": sid,
                "degraded": record.degraded,
                "step": step_to_json(record),
            }

    def op_session_history(
        self, payload: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        sid = payload["sid"]
        with self.registry.acquire(sid) as managed:
            path = ExplorationPath(
                ExplorationMode.USER_DRIVEN, managed.session.steps
            )
            log = ExplorationLog.from_path(
                path,
                dataset=managed.dataset,
                metadata={"session_id": sid},
            )
            return 200, log.to_dict()


def _serve_connection(app: WorkerApp, conn: socket.socket) -> None:
    try:
        conn.settimeout(60.0)
        message = ipc.read_message(conn)
        ipc.write_message(conn, app.handle(message))
    except ipc.WorkerIPCError:
        pass  # client went away; nothing to answer
    except Exception:  # noqa: BLE001 - a worker thread must never die loudly
        _log.exception("worker %d: connection handler failed", app.spec.index)
    finally:
        conn.close()


def worker_main(spec: WorkerSpec) -> int:
    """Spawn entry point: attach, restore, serve until told to stop."""
    logging.basicConfig(level=logging.WARNING)
    app = WorkerApp(spec)

    def _request_stop(signum: int, frame: object) -> None:
        app.stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # front handles Ctrl-C

    restored = app.restore_sessions()
    if restored:
        _log.info("worker %d: restored %d session(s)", spec.index, restored)
    if app.checkpointer is not None:
        app.checkpointer.start()

    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        if os.path.exists(spec.socket_path):
            os.unlink(spec.socket_path)
        listener.bind(spec.socket_path)
        listener.listen(128)
        listener.settimeout(0.2)  # poll the stop flag between accepts
        while not app.stop.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=_serve_connection,
                args=(app, conn),
                name=f"worker-{spec.index}-conn",
                daemon=True,
            ).start()
    finally:
        listener.close()
        try:
            os.unlink(spec.socket_path)
        except OSError:
            pass
        # drain: one final checkpoint per live session, then detach
        if app.checkpointer is not None:
            app.checkpointer.stop()
            app.checkpointer.flush()
        app.segments.close_attached()
    return 0
