"""Mergeable partial phase scans: counts compose by addition, exactly.

The sufficient-statistic layer (PR-3) already scores candidate rating
maps from ``(n_groups, scale)`` integer count matrices — and integer
histograms over *disjoint* row sets compose by addition with no rounding
anywhere.  That is the whole correctness argument for the cluster's
scatter/gather scans:

1. shards partition the rating records (:class:`~repro.cluster.partition.ShardMap`),
2. each worker scans its shards' slice of the selected group
   (:func:`partial_scan` → one :class:`PartialScan` of count matrices),
3. the front adds the matrices and group sizes (:func:`merge_scans`) and
   hands the totals to
   :meth:`~repro.core.generator.RMSetGenerator.generate_from_counts`
   (:func:`result_from_scans`),

so the merged :class:`~repro.core.generator.RMSetResult` is
**byte-identical** to a single-process scan of the whole group — the
equivalence suite in ``tests/cluster`` fingerprints it against both the
naive and the indexed paths.

Everything here is pure (no sockets, no processes), so the equivalence
tests run in-process; the worker and supervisor are thin transport around
these functions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from ..core.generator import PruningStrategy, RMSetGenerator, RMSetResult
from ..core.rating_maps import RatingMapSpec, enumerate_map_specs
from ..core.utility import SeenMaps
from ..index.delta import direct_counts
from ..model.database import SubjectiveDatabase
from ..model.groups import RatingGroup, SelectionCriteria

__all__ = [
    "PartialScan",
    "local_partial_scans",
    "merge_scans",
    "partial_scan",
    "preview_generator",
    "result_from_scans",
    "scan_specs",
]


@dataclass(frozen=True)
class PartialScan:
    """One worker's contribution to a scattered phase scan.

    ``group_size`` is the number of selected records in ``shards`` and
    ``counts[i]`` the ``(n_groups, scale)`` int64 histogram for spec ``i``
    — both additive across disjoint shard sets.
    """

    shards: tuple[int, ...]
    group_size: int
    counts: tuple[np.ndarray, ...]


def scan_specs(
    database: SubjectiveDatabase, criteria: SelectionCriteria
) -> tuple[RatingMapSpec, ...]:
    """The candidate map specs of one scan, in canonical order."""
    return tuple(enumerate_map_specs(database, criteria))


def partial_scan(
    database: SubjectiveDatabase,
    criteria: SelectionCriteria,
    specs: Sequence[RatingMapSpec],
    record_shards: np.ndarray,
    shards: Sequence[int],
) -> PartialScan:
    """Scan ``criteria``'s group restricted to ``shards``.

    ``record_shards`` is the :meth:`ShardMap.record_shards` array; an
    empty shard list (or a shard holding none of the group's records)
    yields all-zero matrices, which merge as the identity.
    """
    shards = tuple(int(s) for s in shards)
    rows = RatingGroup(database, criteria).rows
    if rows.size and shards:
        rows = rows[np.isin(record_shards[rows], np.asarray(shards))]
    elif not shards:
        rows = rows[:0]
    return PartialScan(
        shards=shards,
        group_size=int(rows.size),
        counts=tuple(direct_counts(database, spec, rows) for spec in specs),
    )


def local_partial_scans(
    database: SubjectiveDatabase,
    criteria: SelectionCriteria,
    specs: Sequence[RatingMapSpec],
    record_shards: np.ndarray,
    n_shards: int,
) -> list[PartialScan]:
    """Every shard's partial scan of one local database.

    The single-process twin of a full scatter: selects ``criteria``'s
    group **once** and slices the row set by shard, instead of re-running
    the group selection per shard the way ``n_shards`` separate
    :func:`partial_scan` calls would.  Row order within each shard matches
    :func:`partial_scan` exactly, so the merged result is byte-identical.
    """
    rows = RatingGroup(database, criteria).rows
    shard_of = record_shards[rows]
    return [
        PartialScan(
            shards=(shard,),
            group_size=int(shard_rows.size),
            counts=tuple(
                direct_counts(database, spec, shard_rows) for spec in specs
            ),
        )
        for shard in range(n_shards)
        for shard_rows in (rows[shard_of == shard],)
    ]


def merge_scans(
    partials: Iterable[PartialScan], n_specs: int
) -> tuple[int, tuple[np.ndarray, ...]]:
    """Add up partial scans: total group size + per-spec count matrices."""
    group_size = 0
    totals: list[np.ndarray] | None = None
    for partial in partials:
        if len(partial.counts) != n_specs:
            raise ValueError(
                f"partial scan carries {len(partial.counts)} count "
                f"matrices, expected {n_specs}"
            )
        group_size += partial.group_size
        if totals is None:
            totals = [np.array(c, dtype=np.int64, copy=True) for c in partial.counts]
        else:
            for total, counts in zip(totals, partial.counts):
                total += counts
    if totals is None:
        totals = []
    return group_size, tuple(totals)


def preview_generator(generator: RMSetGenerator) -> RMSetGenerator:
    """The single-phase, no-pruning twin of ``generator``.

    ``generate_from_counts`` produces exactly what ``generate`` produces
    under this configuration (the Recommendation Builder's preview
    configuration), which pins the scatter/gather path to the
    single-process semantics the equivalence suite checks.
    """
    return RMSetGenerator(
        replace(generator.config, n_phases=1, pruning=PruningStrategy.NONE)
    )


def result_from_scans(
    generator: RMSetGenerator,
    database: SubjectiveDatabase,
    criteria: SelectionCriteria,
    specs: Sequence[RatingMapSpec],
    partials: Iterable[PartialScan],
    k: int | None = None,
) -> RMSetResult:
    """Gather: merge partial counts and finalize one :class:`RMSetResult`.

    The scan is stateless (a fresh display history), so repeated scans of
    the same criteria return the same maps — and the same bytes as a
    single-process scan of the full group.
    """
    specs = tuple(specs)
    group_size, totals = merge_scans(partials, len(specs))
    counts_of = dict(zip(specs, totals))
    labels_of = {
        spec: tuple(
            database.aligned_grouping(spec.side, spec.attribute).labels
        )
        for spec in specs
    }
    seen = SeenMaps(
        database.dimensions,
        n_attributes=len(tuple(database.grouping_attributes())),
    )
    return generator.generate_from_counts(
        criteria,
        specs,
        counts_of.__getitem__,
        labels_of.__getitem__,
        group_size,
        seen,
        k=k,
    )
