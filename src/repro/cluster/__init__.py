"""repro.cluster — sharded multi-process serving with shared-memory data.

The cluster scales SubDEx serving across CPU cores without changing a
single result byte: an HTTP front spawns ``N`` worker processes, each
attaching the dataset's numpy columns as zero-copy views over
``multiprocessing.shared_memory`` segments.  Sessions are routed to
workers by consistent hash of the session id; phase scans are scattered
across shard-owning workers and the partial count cubes merged by
integer addition — byte-identical to the single-process path by
construction (see :mod:`repro.cluster.merge` for the argument and
``tests/cluster`` for the fingerprint proofs).

Layout:

* :mod:`repro.cluster.shm` — segment lifecycle: create/attach/unlink,
  ``atexit``/signal cleanup, stale-segment purge;
* :mod:`repro.cluster.partition` — database export/attach manifests and
  the reviewer-row shard map;
* :mod:`repro.cluster.merge` — partial phase scans and their exact merge;
* :mod:`repro.cluster.hashing` — the consistent-hash ring;
* :mod:`repro.cluster.ipc` — length-prefixed pickle frames over
  ``AF_UNIX`` sockets;
* :mod:`repro.cluster.worker` — the spawned worker process;
* :mod:`repro.cluster.supervisor` — the front's pool: spawn, route,
  scatter/gather, heartbeat/restart, drain.
"""

from .hashing import HashRing
from .ipc import WorkerIPCError
from .merge import (
    PartialScan,
    merge_scans,
    partial_scan,
    preview_generator,
    result_from_scans,
    scan_specs,
)
from .partition import (
    ShardMap,
    attach_database,
    share_database,
)
from .shm import (
    SegmentRegistry,
    attach_array,
    purge_stale_segments,
    share_array,
)
from .supervisor import ClusterConfig, WorkerPool, WorkerUnavailableError
from .worker import WorkerSpec, worker_main

__all__ = [
    "ClusterConfig",
    "HashRing",
    "PartialScan",
    "SegmentRegistry",
    "ShardMap",
    "WorkerIPCError",
    "WorkerPool",
    "WorkerSpec",
    "WorkerUnavailableError",
    "attach_array",
    "attach_database",
    "merge_scans",
    "partial_scan",
    "preview_generator",
    "purge_stale_segments",
    "result_from_scans",
    "scan_specs",
    "share_array",
    "share_database",
    "worker_main",
]
