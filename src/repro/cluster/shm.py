"""Shared-memory segments with crash-safe lifecycle management.

The cluster keeps every numeric/categorical dataset column in one
:mod:`multiprocessing.shared_memory` segment per array.  The front
process *owns* segments (creates and eventually unlinks them); worker
processes *attach* (zero-copy ``np.ndarray`` views over the same pages).

Lifecycle hazards this module defends against:

* **CPython's resource tracker unlinking attached segments.**  On 3.11 a
  child that merely attaches a segment registers it with its own
  resource tracker, which unlinks it when the child exits — destroying
  the mapping for everyone.  :meth:`SegmentRegistry.attach` therefore
  unregisters attachments; only the owning registry ever unlinks.
* **Leaked ``/dev/shm`` blocks after a crash.**  Segment names embed the
  owning pid (``subdex-<pid>-<token>``); :func:`purge_stale_segments`
  unlinks any segment whose owner is no longer alive.  The owning
  registry also installs ``atexit`` + SIGTERM/SIGINT hooks
  (:meth:`SegmentRegistry.install_cleanup`) so ordinary and signalled
  exits unlink eagerly rather than relying on the purge.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import signal
import threading
import uuid
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Mapping

import numpy as np

from ..exceptions import ReproError

__all__ = [
    "SEGMENT_PREFIX",
    "SegmentRegistry",
    "attach_array",
    "purge_stale_segments",
    "share_array",
]

#: Prefix of every segment this package creates; the stale-segment purge
#: only ever touches names carrying it.
SEGMENT_PREFIX = "subdex"

_SHM_DIR = "/dev/shm"


def _segment_name() -> str:
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{uuid.uuid4().hex[:12]}"


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Stop the resource tracker from unlinking an *attached* segment."""
    try:  # pragma: no cover - depends on interpreter internals
        resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


def segment_owner_pid(name: str) -> int | None:
    """The pid embedded in a segment name, or ``None`` if not ours."""
    parts = name.split("-")
    if len(parts) != 3 or parts[0] != SEGMENT_PREFIX:
        return None
    try:
        return int(parts[1])
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    return True


def purge_stale_segments(shm_dir: str = _SHM_DIR) -> list[str]:
    """Unlink segments whose owning process is dead; returns their names.

    Safe to call from anywhere (server startup does): only names carrying
    :data:`SEGMENT_PREFIX` and a dead owner pid are touched.
    """
    removed: list[str] = []
    try:
        names = os.listdir(shm_dir)
    except OSError:  # pragma: no cover - non-Linux / no tmpfs
        return removed
    for name in names:
        pid = segment_owner_pid(name)
        if pid is None or pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            segment = shared_memory.SharedMemory(name=name)
        except OSError:  # pragma: no cover - raced with another purge
            continue
        try:
            # attach registered the name with our tracker; unlink
            # unregisters it again, so the pair stays balanced
            segment.unlink()
        except OSError:  # pragma: no cover - raced with another purge
            pass
        finally:
            segment.close()
        removed.append(name)
    return removed


class SegmentRegistry:
    """Tracks every segment a process owns or has attached.

    One registry per role: the front's worker pool owns the dataset
    segments; each worker process keeps one registry of attachments so
    its views stay valid for the process lifetime and are closed on exit.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._owned: dict[str, shared_memory.SharedMemory] = {}
        self._attached: dict[str, shared_memory.SharedMemory] = {}
        self._cleanup_installed = False

    # -- ownership -----------------------------------------------------------
    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        segment = shared_memory.SharedMemory(
            name=_segment_name(), create=True, size=max(1, int(nbytes))
        )
        with self._lock:
            self._owned[segment.name] = segment
        return segment

    def attach(self, name: str) -> shared_memory.SharedMemory:
        with self._lock:
            cached = self._owned.get(name) or self._attached.get(name)
        if cached is not None:
            return cached
        try:
            segment = shared_memory.SharedMemory(name=name)
        except OSError as error:
            raise ReproError(
                f"shared-memory segment {name!r} is gone: {error}"
            ) from error
        # Attaching registers the segment with a resource tracker.  In a
        # multiprocessing child the tracker is *shared* with the owning
        # front (the fd is inherited), so the registration is a no-op and
        # unregistering here would strip the owner's own entry — the
        # owner's later unlink() would then double-unregister, making the
        # tracker print KeyError tracebacks at exit.  The same applies to
        # a second registry attaching inside the owning process itself
        # (in-process replay and the equivalence tests do this).  Only a
        # standalone attacher (its own tracker, foreign segment) must
        # unregister, lest its tracker unlink the live segment when it
        # exits (CPython 3.11 behaviour).
        if (
            multiprocessing.parent_process() is None
            and segment_owner_pid(name) != os.getpid()
        ):
            _untrack(segment)  # the owner unlinks; we only ever close
        with self._lock:
            self._attached[name] = segment
        return segment

    @property
    def owned_names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._owned)

    # -- teardown ------------------------------------------------------------
    def close_attached(self) -> None:
        with self._lock:
            attached, self._attached = self._attached, {}
        for segment in attached.values():
            try:
                segment.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def unlink_all(self) -> int:
        """Unlink (and close) every owned segment; returns how many."""
        with self._lock:
            owned, self._owned = self._owned, {}
        for segment in owned.values():
            try:
                segment.unlink()
            except OSError:  # pragma: no cover - already unlinked
                pass
            try:
                segment.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self.close_attached()
        return len(owned)

    # -- crash safety --------------------------------------------------------
    def install_cleanup(self) -> None:
        """Unlink owned segments on interpreter exit and fatal signals.

        Signal handlers chain to whatever was installed before (the
        server's own graceful-shutdown handler keeps working); outside the
        main thread only the ``atexit`` hook is installed.
        """
        if self._cleanup_installed:
            return
        self._cleanup_installed = True
        atexit.register(self.unlink_all)
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous = signal.getsignal(signum)

            def _handler(
                sig: int, frame: Any, previous=previous
            ) -> None:  # pragma: no cover - exercised in subprocess tests
                self.unlink_all()
                if callable(previous):
                    previous(sig, frame)
                else:
                    signal.signal(sig, signal.SIG_DFL)
                    os.kill(os.getpid(), sig)

            try:
                signal.signal(signum, _handler)
            except ValueError:  # pragma: no cover - not the main thread
                break


def share_array(
    array: np.ndarray, registry: SegmentRegistry
) -> dict[str, Any]:
    """Copy ``array`` into a new owned segment; returns its manifest."""
    array = np.ascontiguousarray(array)
    segment = registry.create(array.nbytes)
    if array.nbytes:
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
    return {
        "segment": segment.name,
        "dtype": array.dtype.str,
        "shape": tuple(int(n) for n in array.shape),
    }


def attach_array(
    manifest: Mapping[str, Any], registry: SegmentRegistry
) -> np.ndarray:
    """A zero-copy read-only view over a shared segment.

    The returned array's pages live for as long as ``registry`` keeps the
    attachment open (the worker's process lifetime).
    """
    shape = tuple(manifest["shape"])
    dtype = np.dtype(manifest["dtype"])
    if not int(np.prod(shape)):
        return np.empty(shape, dtype=dtype)
    segment = registry.attach(manifest["segment"])
    view = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
    view.flags.writeable = False
    return view
