"""Declarative SLO definitions and the shared evaluation math.

An SLO here is a per-**endpoint-class** contract — e.g. the
``recommendations`` class promises *p95 ≤ 800 ms, availability ≥ 99.5%,
degraded rate ≤ 5%*.  Endpoint classes group the server's route labels
(and the cluster workers' op names) into the few categories a human
actually reasons about:

* ``recommendations`` — the paper's interactive promise: recommendation
  reads and refinement polls;
* ``steps`` — state-changing exploration steps (session create, apply,
  stateless cluster scans);
* ``reads`` — cheap session reads (maps, summaries, history, listings);
* ``ops`` — operational surface (health, metrics, debug, cluster admin).

The latency objective is expressed as a *quantile promise*: ``p95 ≤
800 ms`` is exactly "≥ 95% of requests finish within 800 ms", so the
tracker only needs a within-budget counter, never a quantile estimate —
and the same counter arithmetic reproduces offline from a request log,
which is how the macro-workload bench cross-checks ``GET /slo``.

Everything that turns raw counts into scorecard numbers lives in
:func:`evaluate_counts` / :func:`burn_rate`, shared by the live tracker,
the cluster fleet aggregation and the offline recomputation in
:mod:`repro.workload.report` — one implementation, three call sites, so
the acceptance comparison is a genuine consistency check rather than two
copies of the same bug.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "SLObjective",
    "SLOConfig",
    "burn_rate",
    "default_slo_config",
    "evaluate_counts",
    "load_slo_config",
]

#: Floor on the allowed bad fraction: a 100% objective would make every
#: burn rate infinite, which helps nobody — clamp instead.
_MIN_ALLOWED = 1e-9


@dataclass(frozen=True)
class SLObjective:
    """One endpoint class's promises.

    ``latency_ms`` + ``latency_target`` encode the quantile promise
    (target 0.95 at 800 ms ⇔ "p95 ≤ 800 ms"); ``availability_target``
    bounds the non-5xx fraction; ``max_degraded_rate`` bounds how often
    the anytime ladder may hand back degraded answers.
    """

    latency_ms: float = 800.0
    latency_target: float = 0.95
    availability_target: float = 0.995
    max_degraded_rate: float = 0.05

    def __post_init__(self) -> None:
        if self.latency_ms <= 0:
            raise ValueError(f"latency_ms must be > 0, got {self.latency_ms}")
        for name in ("latency_target", "availability_target"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if not 0.0 <= self.max_degraded_rate <= 1.0:
            raise ValueError(
                f"max_degraded_rate must be in [0, 1], "
                f"got {self.max_degraded_rate}"
            )

    def to_json(self) -> dict[str, float]:
        return {
            "latency_ms": self.latency_ms,
            "latency_target": self.latency_target,
            "availability_target": self.availability_target,
            "max_degraded_rate": self.max_degraded_rate,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "SLObjective":
        unknown = set(data) - {
            "latency_ms",
            "latency_target",
            "availability_target",
            "max_degraded_rate",
        }
        if unknown:
            raise ValueError(
                f"unknown SLO objective keys: {', '.join(sorted(unknown))}"
            )
        return cls(**{k: float(v) for k, v in data.items()})


#: The shipped per-class objectives — the paper's interactivity promise
#: made explicit.  ``ops`` is tracked but deliberately lax: debug
#: endpoints (profiles, traces) are slow by design.
DEFAULT_CLASS_OBJECTIVES: Mapping[str, SLObjective] = {
    "recommendations": SLObjective(
        latency_ms=800.0,
        latency_target=0.95,
        availability_target=0.995,
        max_degraded_rate=0.05,
    ),
    "steps": SLObjective(
        latency_ms=2000.0,
        latency_target=0.90,
        availability_target=0.995,
        max_degraded_rate=0.10,
    ),
    "reads": SLObjective(
        latency_ms=250.0,
        latency_target=0.95,
        availability_target=0.999,
        max_degraded_rate=0.05,
    ),
    "ops": SLObjective(
        latency_ms=5000.0,
        latency_target=0.90,
        availability_target=0.99,
        max_degraded_rate=1.0,
    ),
}

#: HTTP route label → endpoint class (labels as they appear in
#: ``/metrics``; unlisted labels fall through to :func:`_classify_route`).
DEFAULT_ROUTE_CLASSES: Mapping[str, str] = {
    "GET /sessions/{id}/recommendations": "recommendations",
    "GET /sessions/{id}/recommendations/refine/{token}": "recommendations",
    "POST /sessions": "steps",
    "POST /sessions/{id}/apply": "steps",
    "POST /cluster/maps": "steps",
    "GET /sessions": "reads",
    "GET /sessions/{id}": "reads",
    "GET /sessions/{id}/maps": "reads",
    "GET /sessions/{id}/history": "reads",
    "DELETE /sessions/{id}": "reads",
}

#: Cluster worker op name → endpoint class (mirrors the route table).
DEFAULT_OP_CLASSES: Mapping[str, str] = {
    "session.recommendations": "recommendations",
    "session.refine": "recommendations",
    "session.create": "steps",
    "session.apply": "steps",
    "scan": "steps",
    "session.maps": "reads",
    "session.summary": "reads",
    "session.history": "reads",
    "session.close": "reads",
    "sessions.list": "reads",
}


def _classify_route(label: str) -> str:
    """Fallback classification for labels outside the explicit table."""
    if "/recommendations" in label:
        return "recommendations"
    if label.startswith(("POST ", "PUT ", "PATCH ")):
        return "steps"
    if "/sessions" in label:
        return "reads"
    return "ops"


@dataclass(frozen=True)
class SLOConfig:
    """The full declarative SLO surface of one deployment."""

    classes: Mapping[str, SLObjective]
    route_classes: Mapping[str, str]
    op_classes: Mapping[str, str]
    #: Fast-burn alerting threshold over the 5m window (Google SRE's
    #: page-worthy 14.4 = "the 30-day budget gone in ~2 days").
    fast_burn_threshold: float = 14.4
    #: Slow-burn warning threshold over the 1h window.
    slow_burn_threshold: float = 6.0

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("SLOConfig needs at least one endpoint class")
        for table_name in ("route_classes", "op_classes"):
            for key, cls in getattr(self, table_name).items():
                if cls not in self.classes:
                    raise ValueError(
                        f"{table_name}[{key!r}] names unknown class {cls!r}"
                    )
        if self.fast_burn_threshold <= 0 or self.slow_burn_threshold <= 0:
            raise ValueError("burn thresholds must be > 0")

    def classify(self, route_label: str) -> str:
        """Endpoint class of one HTTP route label."""
        cls = self.route_classes.get(route_label)
        if cls is None:
            cls = _classify_route(route_label)
        return cls if cls in self.classes else "ops"

    def classify_op(self, op: str) -> str:
        """Endpoint class of one cluster-worker op name."""
        cls = self.op_classes.get(op)
        if cls is not None and cls in self.classes:
            return cls
        return "ops" if "ops" in self.classes else next(iter(self.classes))

    def objective(self, cls: str) -> SLObjective:
        return self.classes[cls]

    def to_json(self) -> dict[str, Any]:
        """A picklable/JSON form (ships to cluster workers in WorkerSpec)."""
        return {
            "classes": {
                name: objective.to_json()
                for name, objective in self.classes.items()
            },
            "routes": dict(self.route_classes),
            "ops": dict(self.op_classes),
            "fast_burn_threshold": self.fast_burn_threshold,
            "slow_burn_threshold": self.slow_burn_threshold,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "SLOConfig":
        """Parse a config dict; class objectives *merge over* the defaults.

        A ``--slo-config`` file only needs to name what it changes::

            {"classes": {"recommendations": {"latency_ms": 500}}}
        """
        unknown = set(data) - {
            "classes",
            "routes",
            "ops",
            "fast_burn_threshold",
            "slow_burn_threshold",
        }
        if unknown:
            raise ValueError(
                f"unknown SLO config keys: {', '.join(sorted(unknown))}"
            )
        for key in ("classes", "routes", "ops"):
            value = data.get(key)
            if value is not None and not isinstance(value, Mapping):
                raise ValueError(f"{key!r} must be a JSON object")
        classes = dict(DEFAULT_CLASS_OBJECTIVES)
        for name, spec in (data.get("classes") or {}).items():
            if not isinstance(spec, Mapping):
                raise ValueError(
                    f"class {name!r} must map to an objective object"
                )
            base = classes.get(name, SLObjective()).to_json()
            base.update(spec)
            classes[name] = SLObjective.from_json(base)
        routes = dict(DEFAULT_ROUTE_CLASSES)
        routes.update(data.get("routes") or {})
        ops = dict(DEFAULT_OP_CLASSES)
        ops.update(data.get("ops") or {})
        return cls(
            classes=classes,
            route_classes=routes,
            op_classes=ops,
            fast_burn_threshold=float(
                data.get("fast_burn_threshold", 14.4)
            ),
            slow_burn_threshold=float(data.get("slow_burn_threshold", 6.0)),
        )


def default_slo_config() -> SLOConfig:
    """The shipped configuration (also the base every file merges over)."""
    return SLOConfig(
        classes=dict(DEFAULT_CLASS_OBJECTIVES),
        route_classes=dict(DEFAULT_ROUTE_CLASSES),
        op_classes=dict(DEFAULT_OP_CLASSES),
    )


def load_slo_config(path: str | None) -> SLOConfig:
    """Read a ``--slo-config`` JSON file (``None`` → the defaults)."""
    if path is None:
        return default_slo_config()
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"SLO config {path!r} must be a JSON object")
    return SLOConfig.from_json(data)


# -- shared evaluation math ---------------------------------------------------

def burn_rate(bad: float, total: float, target: float) -> float:
    """How fast the error budget burns: observed bad fraction ÷ allowed.

    1.0 = burning exactly at budget; >1 = over; an empty window burns
    nothing (0.0 — never NaN).  Monotone in ``bad`` for fixed window
    membership: adding a bad request can only raise it.
    """
    if total <= 0:
        return 0.0
    allowed = max(1.0 - target, _MIN_ALLOWED)
    return (bad / total) / allowed


def evaluate_counts(
    objective: SLObjective, counts: Mapping[str, Any]
) -> dict[str, Any]:
    """Scorecard numbers for one class over one window's raw counts.

    ``counts`` needs ``count``, ``errors``, ``shed``, ``degraded`` and
    ``within_budget`` keys (the :class:`~repro.slo.windows.WindowCounts`
    JSON form).  Rates are ``None`` on an empty window — JSON ``null``,
    never NaN — and burn rates are 0.0 (no traffic consumes no budget).
    """
    total = float(counts.get("count", 0))
    errors = float(counts.get("errors", 0))
    shed = float(counts.get("shed", 0))
    degraded = float(counts.get("degraded", 0))
    within = float(counts.get("within_budget", 0))
    if total <= 0:
        return {
            "count": 0,
            "availability": None,
            "latency_attainment": None,
            "error_rate": None,
            "shed_rate": None,
            "degraded_rate": None,
            "mean_latency_ms": None,
            "burn_rates": {
                "availability": 0.0,
                "latency": 0.0,
                "degraded": 0.0,
                "max": 0.0,
            },
        }
    burn_availability = burn_rate(
        errors, total, objective.availability_target
    )
    burn_latency = burn_rate(
        total - within, total, objective.latency_target
    )
    burn_degraded = burn_rate(
        degraded, total, 1.0 - objective.max_degraded_rate
    )
    sum_seconds = float(counts.get("sum_seconds", 0.0))
    return {
        "count": int(total),
        "availability": (total - errors) / total,
        "latency_attainment": within / total,
        "error_rate": errors / total,
        "shed_rate": shed / total,
        "degraded_rate": degraded / total,
        "mean_latency_ms": sum_seconds / total * 1000.0,
        "burn_rates": {
            "availability": burn_availability,
            "latency": burn_latency,
            "degraded": burn_degraded,
            "max": max(burn_availability, burn_latency, burn_degraded),
        },
    }
