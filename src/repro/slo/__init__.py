"""Live SLO tracking: declarative objectives, rolling windows, burn rates.

The layer that scores the serving stack against the paper's
interactivity promise: per-endpoint-class objectives (:mod:`.spec`),
lock-cheap 1m/5m/1h ring-buffer windows (:mod:`.windows`) fed from the
request envelope path, and a tracker (:mod:`.tracker`) exposing
``GET /slo`` scorecards, ``subdex_slo_*`` Prometheus families and
burn-rate threshold events.  The macro-workload driver
(:mod:`repro.workload`) recomputes the same numbers offline from its own
request log — the two must agree, and the macro bench asserts it.
"""

from .spec import (
    SLObjective,
    SLOConfig,
    burn_rate,
    default_slo_config,
    evaluate_counts,
    load_slo_config,
)
from .tracker import SLOTracker, merge_worker_totals, scorecard_from_totals
from .windows import ClassWindows, WindowCounts, merge_counts

__all__ = [
    "ClassWindows",
    "SLObjective",
    "SLOConfig",
    "SLOTracker",
    "WindowCounts",
    "burn_rate",
    "default_slo_config",
    "evaluate_counts",
    "load_slo_config",
    "merge_counts",
    "merge_worker_totals",
    "scorecard_from_totals",
]
