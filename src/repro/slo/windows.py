"""Lock-cheap multi-window rolling aggregates for SLO tracking.

One :class:`ClassWindows` per endpoint class holds three slot-ring
windows (1m of 1 s slots, 5m of 5 s slots, 1h of 60 s slots) plus a
cumulative since-start total.  Each ring is a fixed array of
:class:`WindowCounts` slots; a slot is identified by its *epoch*
(``int(now // slot_seconds)``) and lazily reset the first time a new
epoch lands on its position — no timer threads, no allocation on the
hot path, and reads simply skip slots whose epoch has fallen out of the
window.

An ingest is one lock acquisition and a handful of integer adds per
window (the latency bucket index is computed once, outside the lock) —
deliberately far cheaper than the requests it measures, so the obs
overhead gate (≤ 5%) keeps holding with SLO tracking on.

:class:`WindowCounts` is also the merge unit for cluster aggregation:
per-worker totals serialise with :meth:`WindowCounts.to_json`, ship over
the worker IPC, and merge by addition at the front into one fleet
scorecard.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Any, Callable, Iterable, Mapping

from ..obs.metrics import DEFAULT_LATENCY_BUCKETS

__all__ = [
    "BUCKET_BOUNDS",
    "DEFAULT_WINDOWS",
    "ClassWindows",
    "WindowCounts",
    "merge_counts",
]

#: Latency histogram bounds (seconds) — the registry's request buckets,
#: so ``subdex_slo_request_seconds`` and ``subdex_request_seconds`` are
#: directly comparable.
BUCKET_BOUNDS: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS

#: (label, slot_seconds, n_slots): 1m/5m/1h ring windows.
DEFAULT_WINDOWS: tuple[tuple[str, float, int], ...] = (
    ("1m", 1.0, 60),
    ("5m", 5.0, 60),
    ("1h", 60.0, 60),
)

#: The cumulative since-start pseudo-window's label.
TOTAL_WINDOW = "total"


class WindowCounts:
    """Raw counts of one window (or one ring slot): the merge unit."""

    __slots__ = (
        "count",
        "errors",
        "shed",
        "degraded",
        "within_budget",
        "sum_seconds",
        "buckets",
        "rungs",
    )

    def __init__(self) -> None:
        self.count = 0
        self.errors = 0
        self.shed = 0
        self.degraded = 0
        self.within_budget = 0
        self.sum_seconds = 0.0
        #: per-bucket (non-cumulative) latency counts; +Inf bucket last
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)
        self.rungs: dict[str, int] = {}

    def reset(self) -> None:
        self.count = 0
        self.errors = 0
        self.shed = 0
        self.degraded = 0
        self.within_budget = 0
        self.sum_seconds = 0.0
        for index in range(len(self.buckets)):
            self.buckets[index] = 0
        self.rungs.clear()

    def add_sample(
        self,
        seconds: float,
        bucket_index: int,
        error: bool,
        shed: bool,
        degraded: bool,
        within_budget: bool,
        rung: str | None,
    ) -> None:
        self.count += 1
        self.sum_seconds += seconds
        self.buckets[bucket_index] += 1
        if error:
            self.errors += 1
        if shed:
            self.shed += 1
        if degraded:
            self.degraded += 1
        if within_budget:
            self.within_budget += 1
        if rung is not None:
            self.rungs[rung] = self.rungs.get(rung, 0) + 1

    def merge(self, other: "WindowCounts") -> None:
        self.count += other.count
        self.errors += other.errors
        self.shed += other.shed
        self.degraded += other.degraded
        self.within_budget += other.within_budget
        self.sum_seconds += other.sum_seconds
        for index, value in enumerate(other.buckets):
            self.buckets[index] += value
        for rung, value in other.rungs.items():
            self.rungs[rung] = self.rungs.get(rung, 0) + value

    def to_json(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "errors": self.errors,
            "shed": self.shed,
            "degraded": self.degraded,
            "within_budget": self.within_budget,
            "sum_seconds": self.sum_seconds,
            "buckets": list(self.buckets),
            "rungs": dict(sorted(self.rungs.items())),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "WindowCounts":
        counts = cls()
        counts.count = int(data.get("count", 0))
        counts.errors = int(data.get("errors", 0))
        counts.shed = int(data.get("shed", 0))
        counts.degraded = int(data.get("degraded", 0))
        counts.within_budget = int(data.get("within_budget", 0))
        counts.sum_seconds = float(data.get("sum_seconds", 0.0))
        raw_buckets = list(data.get("buckets") or ())
        for index in range(min(len(raw_buckets), len(counts.buckets))):
            counts.buckets[index] = int(raw_buckets[index])
        counts.rungs = {
            str(k): int(v) for k, v in (data.get("rungs") or {}).items()
        }
        return counts


def merge_counts(parts: Iterable[Mapping[str, Any]]) -> WindowCounts:
    """Merge JSON-form counts (per-worker scrapes) by addition."""
    merged = WindowCounts()
    for part in parts:
        merged.merge(WindowCounts.from_json(part))
    return merged


class _SlotRing:
    """A fixed ring of epoch-stamped slots; staleness handled lazily."""

    __slots__ = ("slot_seconds", "n_slots", "slots", "epochs")

    def __init__(self, slot_seconds: float, n_slots: int) -> None:
        self.slot_seconds = slot_seconds
        self.n_slots = n_slots
        self.slots = [WindowCounts() for _ in range(n_slots)]
        self.epochs = [-1] * n_slots

    def slot(self, now: float) -> WindowCounts:
        """The live slot for ``now``, reset if a stale epoch occupied it."""
        epoch = int(now // self.slot_seconds)
        position = epoch % self.n_slots
        if self.epochs[position] != epoch:
            self.slots[position].reset()
            self.epochs[position] = epoch
        return self.slots[position]

    def totals(self, now: float) -> WindowCounts:
        """Sum of every slot still inside the window ending at ``now``."""
        epoch = int(now // self.slot_seconds)
        oldest = epoch - self.n_slots + 1
        merged = WindowCounts()
        for position in range(self.n_slots):
            if oldest <= self.epochs[position] <= epoch:
                merged.merge(self.slots[position])
        return merged


class ClassWindows:
    """One endpoint class's rolling windows + cumulative total."""

    def __init__(
        self,
        windows: tuple[tuple[str, float, int], ...] = DEFAULT_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._rings = {
            label: _SlotRing(slot_seconds, n_slots)
            for label, slot_seconds, n_slots in windows
        }
        self._total = WindowCounts()

    def ingest(
        self,
        seconds: float,
        error: bool,
        shed: bool,
        degraded: bool,
        within_budget: bool,
        rung: str | None = None,
    ) -> None:
        """Record one finished request (a few adds behind one lock)."""
        bucket_index = bisect_left(BUCKET_BOUNDS, seconds)
        now = self._clock()
        with self._lock:
            for ring in self._rings.values():
                ring.slot(now).add_sample(
                    seconds,
                    bucket_index,
                    error,
                    shed,
                    degraded,
                    within_budget,
                    rung,
                )
            self._total.add_sample(
                seconds, bucket_index, error, shed, degraded,
                within_budget, rung,
            )

    def window_counts(self, now: float | None = None) -> dict[str, WindowCounts]:
        """Per-window totals (rolling windows + the cumulative total)."""
        if now is None:
            now = self._clock()
        with self._lock:
            counts = {
                label: ring.totals(now)
                for label, ring in self._rings.items()
            }
            total = WindowCounts()
            total.merge(self._total)
        counts[TOTAL_WINDOW] = total
        return counts

    def totals_json(self, now: float | None = None) -> dict[str, Any]:
        """JSON form of :meth:`window_counts` (the cluster scrape payload)."""
        return {
            label: counts.to_json()
            for label, counts in self.window_counts(now).items()
        }
