"""The live SLO tracker: ingest → rolling windows → scorecard/metrics.

:class:`SLOTracker` sits on the request envelope path (one
:meth:`ingest` per finished request, next to ``ServerMetrics.observe``)
and turns the raw stream into:

* ``GET /slo`` — a JSON scorecard per endpoint class and window, with
  error-budget consumption and fast (5m) / slow (1h) burn rates;
* ``subdex_slo_*`` Prometheus families, **including** a cumulative
  ``subdex_slo_request_seconds`` histogram with ``_bucket`` lines so
  external burn-rate math (recording rules over ``rate()``) works;
* threshold-crossing events: burn-rate state transitions are logged at
  WARNING through ``repro.slo`` and surfaced to an ``on_event`` callback
  (the server counts them into ``/metrics``), throttled to at most one
  evaluation per second per tracker.

:func:`scorecard_from_totals` is deliberately a module function over the
JSON count form: the same code scores this process's own windows and the
cluster front's merged per-worker scrape, so a fleet scorecard cannot
drift from a single-process one.
"""

from __future__ import annotations

import logging
import threading
import time
from bisect import bisect_left
from collections import deque
from typing import Any, Callable, Iterable, Mapping

from ..obs.metrics import Exemplar, MetricFamily
from .spec import SLOConfig, default_slo_config, evaluate_counts
from .windows import (
    BUCKET_BOUNDS,
    TOTAL_WINDOW,
    ClassWindows,
    merge_counts,
)

__all__ = ["SLOTracker", "merge_worker_totals", "scorecard_from_totals"]

_log = logging.getLogger("repro.slo")

#: Burn-rate states, in increasing severity.
_STATES = ("ok", "slow_burn", "fast_burn")

#: How many threshold-crossing events the tracker remembers.
_EVENT_CAPACITY = 64

#: Minimum seconds between burn-rate evaluations (ingest-driven).
_EVAL_INTERVAL = 1.0

#: How many notable (error / over-budget) trace ids to remember per class
#: for burn-rate event exemplars.
_NOTABLE_CAPACITY = 8


def scorecard_from_totals(
    config: SLOConfig, totals: Mapping[str, Mapping[str, Mapping[str, Any]]]
) -> dict[str, Any]:
    """Score per-class per-window JSON counts against ``config``.

    ``totals`` maps class → window label → counts (the
    :meth:`~repro.slo.windows.ClassWindows.totals_json` form).  Used for
    the local scorecard *and* the cluster fleet aggregate.
    """
    classes: dict[str, Any] = {}
    for cls in sorted(config.classes):
        objective = config.objective(cls)
        windows = totals.get(cls, {})
        evaluated = {
            label: evaluate_counts(objective, counts)
            for label, counts in windows.items()
        }
        fast = evaluated.get("5m", evaluate_counts(objective, {}))
        slow = evaluated.get("1h", evaluate_counts(objective, {}))
        total = evaluated.get(TOTAL_WINDOW, evaluate_counts(objective, {}))
        fast_burn = fast["burn_rates"]["max"]
        slow_burn = slow["burn_rates"]["max"]
        if fast_burn >= config.fast_burn_threshold:
            state = "fast_burn"
        elif slow_burn >= config.slow_burn_threshold:
            state = "slow_burn"
        else:
            state = "ok"
        budget = {
            name: max(0.0, 1.0 - total["burn_rates"][name])
            for name in ("availability", "latency", "degraded")
        }
        classes[cls] = {
            "objectives": objective.to_json(),
            "windows": evaluated,
            "burn": {
                "fast_5m": fast_burn,
                "slow_1h": slow_burn,
                "fast_threshold": config.fast_burn_threshold,
                "slow_threshold": config.slow_burn_threshold,
            },
            "budget_remaining": budget,
            "rungs": dict(
                windows.get(TOTAL_WINDOW, {}).get("rungs", {}) or {}
            ),
            "state": state,
        }
    worst = max(
        (c["state"] for c in classes.values()),
        key=_STATES.index,
        default="ok",
    )
    return {"classes": classes, "state": worst}


def merge_worker_totals(
    parts: Iterable[Mapping[str, Mapping[str, Mapping[str, Any]]]],
) -> dict[str, dict[str, dict[str, Any]]]:
    """Merge per-worker ``totals()`` payloads by addition (fleet view)."""
    grouped: dict[str, dict[str, list[Mapping[str, Any]]]] = {}
    for part in parts:
        for cls, windows in part.items():
            by_window = grouped.setdefault(cls, {})
            for label, counts in windows.items():
                by_window.setdefault(label, []).append(counts)
    return {
        cls: {
            label: merge_counts(parts_list).to_json()
            for label, parts_list in windows.items()
        }
        for cls, windows in grouped.items()
    }


def _bucket_exemplar(
    entry: tuple[str, float, float] | None,
) -> Exemplar | None:
    if entry is None:
        return None
    trace_id, seconds, wall_time = entry
    return Exemplar({"trace_id": trace_id}, seconds, wall_time)


class SLOTracker:
    """Multi-window SLO accounting behind one ingest call per request."""

    def __init__(
        self,
        config: SLOConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        on_event: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        self.config = config or default_slo_config()
        self._clock = clock
        self._on_event = on_event
        self._classes = {
            cls: ClassWindows(clock=clock) for cls in self.config.classes
        }
        self._alert_lock = threading.Lock()
        self._alert_states = {cls: "ok" for cls in self.config.classes}
        self._alert_counts: dict[tuple[str, str], int] = {}
        self._next_eval = clock()
        self._events: deque[dict[str, Any]] = deque(maxlen=_EVENT_CAPACITY)
        self.started_monotonic = clock()
        # OpenMetrics exemplars: per-class last traced observation per
        # latency bucket, and recent notable (error / over-budget) trace
        # ids attached to burn-rate alert events
        self._exemplar_lock = threading.Lock()
        self._bucket_exemplars: dict[
            str, list[tuple[str, float, float] | None]
        ] = {}
        self._notable: dict[str, deque[str]] = {}

    # -- hot path -------------------------------------------------------------
    def ingest(
        self,
        route: str,
        status: int,
        seconds: float,
        shed: bool = False,
        degraded: bool = False,
        rung: str | None = None,
        op: bool = False,
        trace_id: str | None = None,
    ) -> None:
        """Record one finished request (HTTP route, or worker op if ``op``)."""
        cls = (
            self.config.classify_op(route)
            if op
            else self.config.classify(route)
        )
        windows = self._classes.get(cls)
        if windows is None:  # pragma: no cover - classify() guarantees hit
            return
        objective = self.config.objective(cls)
        within_budget = seconds * 1000.0 <= objective.latency_ms
        windows.ingest(
            seconds,
            error=status >= 500,
            shed=shed,
            degraded=degraded,
            within_budget=within_budget,
            rung=rung,
        )
        if trace_id is not None:
            index = bisect_left(BUCKET_BOUNDS, seconds)
            with self._exemplar_lock:
                exemplars = self._bucket_exemplars.get(cls)
                if exemplars is None:
                    exemplars = self._bucket_exemplars[cls] = [None] * (
                        len(BUCKET_BOUNDS) + 1
                    )
                exemplars[index] = (trace_id, seconds, time.time())
                if status >= 500 or shed or not within_budget:
                    notable = self._notable.get(cls)
                    if notable is None:
                        notable = self._notable[cls] = deque(
                            maxlen=_NOTABLE_CAPACITY
                        )
                    notable.append(trace_id)
        now = self._clock()
        if now >= self._next_eval:
            self._evaluate(now)

    # -- burn-rate events -----------------------------------------------------
    def _evaluate(self, now: float) -> None:
        """Re-derive per-class burn states; raise events on transitions."""
        with self._alert_lock:
            if now < self._next_eval:
                return
            self._next_eval = now + _EVAL_INTERVAL
        for cls, windows in self._classes.items():
            objective = self.config.objective(cls)
            counts = windows.window_counts(now)
            fast = evaluate_counts(objective, counts["5m"].to_json())
            slow = evaluate_counts(objective, counts["1h"].to_json())
            fast_burn = fast["burn_rates"]["max"]
            slow_burn = slow["burn_rates"]["max"]
            if fast_burn >= self.config.fast_burn_threshold:
                state = "fast_burn"
            elif slow_burn >= self.config.slow_burn_threshold:
                state = "slow_burn"
            else:
                state = "ok"
            with self._alert_lock:
                previous = self._alert_states[cls]
                if state == previous:
                    continue
                self._alert_states[cls] = state
                key = (cls, state)
                self._alert_counts[key] = self._alert_counts.get(key, 0) + 1
                with self._exemplar_lock:
                    exemplar_ids = list(self._notable.get(cls, ()))
                event = {
                    "class": cls,
                    "from": previous,
                    "to": state,
                    "burn_5m": fast_burn,
                    "burn_1h": slow_burn,
                    "at_wall": time.time(),
                    # recent notable trace ids — resolve them via
                    # GET /debug/traces/<trace_id>
                    "exemplars": exemplar_ids,
                }
                self._events.append(event)
            level = (
                logging.INFO if state == "ok" else logging.WARNING
            )
            _log.log(
                level,
                "SLO class %r: %s -> %s (burn 5m=%.2f 1h=%.2f, "
                "thresholds fast=%.1f slow=%.1f)",
                cls,
                previous,
                state,
                fast_burn,
                slow_burn,
                self.config.fast_burn_threshold,
                self.config.slow_burn_threshold,
            )
            if self._on_event is not None:
                try:
                    self._on_event(event)
                except Exception:  # noqa: BLE001 - observers must not
                    pass  # take the request path down

    # -- read side ------------------------------------------------------------
    def totals(self, now: float | None = None) -> dict[str, Any]:
        """Per-class per-window JSON counts (the cluster scrape payload)."""
        return {
            cls: windows.totals_json(now)
            for cls, windows in self._classes.items()
        }

    def scorecard(self, now: float | None = None) -> dict[str, Any]:
        """The ``GET /slo`` payload for this process's own traffic."""
        if now is None:
            now = self._clock()
        card = scorecard_from_totals(self.config, self.totals(now))
        with self._alert_lock:
            card["recent_events"] = list(self._events)
        card["uptime_seconds"] = now - self.started_monotonic
        return card

    def recent_events(self) -> list[dict[str, Any]]:
        with self._alert_lock:
            return list(self._events)

    # -- Prometheus -----------------------------------------------------------
    def collect(self) -> list[MetricFamily]:
        """Registry collector: ``subdex_slo_*`` families at scrape time."""
        now = self._clock()
        totals = self.totals(now)

        requests = MetricFamily(
            "subdex_slo_requests_total",
            "counter",
            "Requests by SLO endpoint class.",
        )
        errors = MetricFamily(
            "subdex_slo_errors_total",
            "counter",
            "5xx (budget-burning) requests by SLO endpoint class.",
        )
        shed = MetricFamily(
            "subdex_slo_shed_total",
            "counter",
            "Load-shed (503 overloaded) requests by SLO endpoint class.",
        )
        degraded = MetricFamily(
            "subdex_slo_degraded_total",
            "counter",
            "Degraded (anytime-ladder) responses by SLO endpoint class.",
        )
        within = MetricFamily(
            "subdex_slo_within_budget_total",
            "counter",
            "Requests inside their class latency budget.",
        )
        rungs = MetricFamily(
            "subdex_slo_rung_total",
            "counter",
            "Responses by SLO endpoint class and anytime quality rung.",
        )
        seconds = MetricFamily(
            "subdex_slo_request_seconds",
            "histogram",
            "Request latency by SLO endpoint class "
            "(cumulative buckets; external burn-rate math welcome).",
        )
        objective_family = MetricFamily(
            "subdex_slo_objective",
            "gauge",
            "Configured objective values by class and objective.",
        )
        attainment = MetricFamily(
            "subdex_slo_attainment",
            "gauge",
            "Attainment by class, window and objective (absent when the "
            "window is empty).",
        )
        burn = MetricFamily(
            "subdex_slo_burn_rate",
            "gauge",
            "Error-budget burn rate by class, window and objective "
            "(1.0 = burning exactly at budget).",
        )
        budget = MetricFamily(
            "subdex_slo_budget_remaining",
            "gauge",
            "Fraction of the since-start error budget left, by class and "
            "objective (clamped at 0).",
        )
        alerts = MetricFamily(
            "subdex_slo_alerts_total",
            "counter",
            "Burn-rate state transitions by class and entered state.",
        )

        for cls in sorted(self.config.classes):
            objective = self.config.objective(cls)
            windows = totals.get(cls, {})
            total = windows.get(TOTAL_WINDOW, {})
            requests.add(total.get("count", 0), **{"class": cls})
            errors.add(total.get("errors", 0), **{"class": cls})
            shed.add(total.get("shed", 0), **{"class": cls})
            degraded.add(total.get("degraded", 0), **{"class": cls})
            within.add(total.get("within_budget", 0), **{"class": cls})
            for rung, value in (total.get("rungs") or {}).items():
                rungs.add(value, **{"class": cls, "rung": rung})

            raw_buckets = list(
                total.get("buckets") or [0] * (len(BUCKET_BOUNDS) + 1)
            )
            with self._exemplar_lock:
                exemplars = list(
                    self._bucket_exemplars.get(cls)
                    or [None] * (len(BUCKET_BOUNDS) + 1)
                )
            running = 0
            for index, (bound, value) in enumerate(
                zip(BUCKET_BOUNDS, raw_buckets)
            ):
                running += value
                seconds.add(
                    running,
                    suffix="_bucket",
                    exemplar=_bucket_exemplar(exemplars[index]),
                    **{"class": cls, "le": f"{bound:g}"},
                )
            seconds.add(
                running + raw_buckets[-1],
                suffix="_bucket",
                exemplar=_bucket_exemplar(exemplars[-1]),
                **{"class": cls, "le": "+Inf"},
            )
            seconds.add(
                total.get("sum_seconds", 0.0), suffix="_sum",
                **{"class": cls},
            )
            seconds.add(
                total.get("count", 0), suffix="_count", **{"class": cls}
            )

            objective_family.add(
                objective.latency_ms / 1000.0,
                **{"class": cls, "objective": "latency_seconds"},
            )
            objective_family.add(
                objective.latency_target,
                **{"class": cls, "objective": "latency_target"},
            )
            objective_family.add(
                objective.availability_target,
                **{"class": cls, "objective": "availability"},
            )
            objective_family.add(
                objective.max_degraded_rate,
                **{"class": cls, "objective": "max_degraded_rate"},
            )

            for label, counts in windows.items():
                report = evaluate_counts(objective, counts)
                for name, key in (
                    ("availability", "availability"),
                    ("latency", "latency_attainment"),
                ):
                    value = report[key]
                    if value is not None:
                        attainment.add(
                            value,
                            **{
                                "class": cls,
                                "window": label,
                                "objective": name,
                            },
                        )
                for name in ("availability", "latency", "degraded"):
                    burn.add(
                        report["burn_rates"][name],
                        **{"class": cls, "window": label, "objective": name},
                    )

            total_report = evaluate_counts(objective, total)
            for name in ("availability", "latency", "degraded"):
                budget.add(
                    max(0.0, 1.0 - total_report["burn_rates"][name]),
                    **{"class": cls, "objective": name},
                )

        with self._alert_lock:
            alert_counts = dict(self._alert_counts)
        for (cls, state), value in sorted(alert_counts.items()):
            alerts.add(value, **{"class": cls, "state": state})

        return [
            requests,
            errors,
            shed,
            degraded,
            within,
            rungs,
            seconds,
            objective_family,
            attainment,
            burn,
            budget,
            alerts,
        ]
