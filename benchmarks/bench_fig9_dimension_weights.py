"""Figure 9 — rating maps per dimension with / without dimension weights.

Fully-Automated Yelp paths are generated with the DW utility of Eq. (1)
enabled and disabled; the number of displayed maps per rating dimension is
counted.  Paper claim: the weights balance the dimensions — without them a
single dimension can dominate the display.
"""

from dataclasses import replace
from collections import Counter

import numpy as np

from repro.bench import Metric, bench_database, bench_recommender_config, format_table, report
from repro.core.engine import SubDEx, SubDExConfig
from repro.core.generator import GeneratorConfig
from repro.core.modes import run_fully_automated
from repro.core.utility import UtilityConfig

_N_STEPS = 7


def _dimension_counts(use_weights: bool) -> Counter:
    database = bench_database("yelp")
    config = SubDExConfig(
        generator=replace(
            GeneratorConfig(),
            utility=UtilityConfig(use_dimension_weights=use_weights),
        ),
        recommender=bench_recommender_config(),
    )
    path = run_fully_automated(SubDEx(database, config).session(), _N_STEPS)
    counts: Counter = Counter()
    for step in path.steps:
        counts.update(step.result.selected_dimensions())
    return counts


def test_fig9_dimension_weights(benchmark):
    def run():
        return _dimension_counts(True), _dimension_counts(False)

    with_dw, without_dw = benchmark.pedantic(run, rounds=1, iterations=1)
    dims = bench_database("yelp").dimensions
    rows = [
        [dim, with_dw.get(dim, 0), without_dw.get(dim, 0)] for dim in dims
    ]
    spread_with = np.std([with_dw.get(d, 0) for d in dims])
    spread_without = np.std([without_dw.get(d, 0) for d in dims])
    text = (
        "== Figure 9: # maps per rating dimension (Yelp, 7-step FA path) ==\n"
        + format_table(["dimension", "with DW", "without DW"], rows)
        + f"\nper-dimension spread (std): with DW = {spread_with:.2f}, "
        f"without DW = {spread_without:.2f}\n"
        "paper: weights balance the dimensions; without them one dimension "
        "can dominate."
    )
    report(
        "fig9_dimension_weights",
        text,
        metrics={
            "spread_with_dw": Metric(
                float(spread_with), unit="std",
                higher_is_better=None, portable=True,
            ),
            "spread_without_dw": Metric(
                float(spread_without), unit="std",
                higher_is_better=None, portable=True,
            ),
        },
        config={"n_steps": _N_STEPS, "dataset": "yelp"},
    )
    # with weights every dimension appears at least once over 21 maps
    assert all(with_dw.get(d, 0) >= 1 for d in dims)
    # and the display is at least as balanced as without weights
    assert spread_with <= spread_without + 1e-9
