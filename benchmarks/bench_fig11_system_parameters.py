"""Figure 11 — running time as a function of system parameters (paper §5.3).

(a) the number of displayed rating maps k — flat, since the fixed
    pruning-diversity factor means the same k × l pool is examined;
(b) the number of recommendations o — flat with parallelism, linear for
    the No-Parallelism / Naive variants;
(c) the pruning-diversity factor l — a strong effect for the pruning
    variants (larger l ⇒ fewer maps pruned).

Recommendation scoring runs the full phased pipeline so the pruning
configuration is actually exercised (as in the paper's timings).
"""

from dataclasses import replace

from repro.baselines import all_variants
from repro.bench import Metric, Sweep, bench_database, report, time_call
from repro.core.engine import SubDEx, SubDExConfig


def _sweep_metrics(sweep: Sweep, variants) -> dict[str, Metric | float]:
    metrics: dict[str, Metric | float] = {}
    for variant in variants:
        series = sweep.series(variant)
        key = variant.lower().replace(" ", "_").replace("-", "_")
        metrics[f"{key}_first_s"] = series[0]
        metrics[f"{key}_last_s"] = series[-1]
        metrics[f"{key}_growth"] = Metric(
            series[-1] / max(series[0], 1e-9), unit="x",
            higher_is_better=None, portable=True,
        )
    return metrics


def _engine(database, variant: str, **tweaks) -> SubDEx:
    config = all_variants()[variant]
    generator = replace(
        config.generator, **tweaks.get("generator", {})
    )
    recommender = replace(
        config.recommender,
        max_values_per_attribute=4,
        preview_uses_full_pipeline=True,
        **tweaks.get("recommender", {}),
    )
    return SubDEx(database, SubDExConfig(generator=generator, recommender=recommender))


def _step_seconds(engine: SubDEx, with_recommendations: bool = True) -> float:
    session = engine.session()
    __, seconds = time_call(
        lambda: session.step(with_recommendations=with_recommendations)
    )
    return seconds


def test_fig11a_number_of_rating_maps(benchmark):
    def run() -> Sweep:
        database = bench_database("yelp")
        sweep = Sweep("k")
        for k in (1, 2, 3, 4, 5):
            for variant in ("SubDEx", "No-Pruning"):
                engine = _engine(database, variant, generator={"k": k})
                # maps-only step: Fig 11(a) isolates the RM-set generation
                sweep.record(
                    variant,
                    k,
                    _step_seconds(engine, with_recommendations=False),
                )
        return sweep

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "== Figure 11(a): step runtime (s) vs # rating maps k ==\n"
        + sweep.format()
        + "\npaper: almost no change — the pruning-diversity factor is "
        "fixed, so the same overall number of maps is examined."
    )
    report("fig11a_num_maps", text,
           metrics=_sweep_metrics(sweep, ("SubDEx", "No-Pruning")),
           config={"figure": "11a", "k_values": [1, 2, 3, 4, 5]})
    for variant in ("SubDEx", "No-Pruning"):
        series = sweep.series(variant)
        assert max(series) < 4 * max(min(series), 1e-3)


def test_fig11b_number_of_recommendations(benchmark):
    def run() -> Sweep:
        database = bench_database("yelp")
        sweep = Sweep("o")
        for o in (1, 3, 5):
            for variant in ("SubDEx", "No Parallelism"):
                engine = _engine(
                    database, variant, recommender={"o": o}
                )
                sweep.record(variant, o, _step_seconds(engine))
        return sweep

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "== Figure 11(b): step runtime (s) vs # recommendations o ==\n"
        + sweep.format()
        + "\npaper: flat for parallel variants, linear growth for "
        "No-Parallelism / Naive.\n"
        "note: o only selects the top of the already-scored candidate set; "
        "the dominant cost (scoring all candidates) is what parallelism "
        "spreads across cores."
    )
    report("fig11b_num_recos", text,
           metrics=_sweep_metrics(sweep, ("SubDEx", "No Parallelism")),
           config={"figure": "11b", "o_values": [1, 3, 5]})
    # o changes which top slice is returned — runtime must stay flat-ish
    subdex = sweep.series("SubDEx")
    assert max(subdex) < 3 * max(min(subdex), 1e-3)


def test_fig11c_pruning_diversity_factor(benchmark):
    def run() -> Sweep:
        database = bench_database("yelp")
        sweep = Sweep("l")
        for l_factor in (1, 2, 3, 5):
            for variant in ("SubDEx", "CI Pruning", "MAB Pruning", "No-Pruning"):
                engine = _engine(
                    database,
                    variant,
                    generator={"pruning_diversity_factor": l_factor},
                )
                sweep.record(
                    variant,
                    l_factor,
                    _step_seconds(engine, with_recommendations=False),
                )
        return sweep

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "== Figure 11(c): step runtime (s) vs pruning-diversity factor l ==\n"
        + sweep.format()
        + "\npaper: strong effect on all pruning baselines (larger l ⇒ "
        "fewer maps pruned); No-Pruning is flat."
    )
    report("fig11c_pruning_factor", text,
           metrics=_sweep_metrics(
               sweep, ("SubDEx", "CI Pruning", "MAB Pruning", "No-Pruning")
           ),
           config={"figure": "11c", "l_values": [1, 2, 3, 5]})
    no_pruning = sweep.series("No-Pruning")
    assert max(no_pruning) < 3 * max(min(no_pruning), 1e-3)
