"""Figure 10 — running time as a function of data properties (paper §5.3).

One exploration step's cost (rating maps + next-step recommendations) is
measured while varying (a) database size by reviewer sampling, (b) the
number of attributes, and (c) the number of attribute values.  The paper's
claims: (a) size has little effect because the number of candidate maps and
operations depends on attributes/values, not rows; (b) and (c) grow
near-linearly.

Recommendation scoring here runs the *full* phased pipeline
(``preview_uses_full_pipeline=True``) so the timings exercise exactly what
the paper timed.  Variants: full SubDEx and the Naive baseline.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines import all_variants
from repro.bench import (
    Metric,
    Sweep,
    bench_database,
    report,
    restrict_attribute_count,
    restrict_value_count,
    time_call,
)
from repro.core.engine import SubDEx
from repro.model import SelectionCriteria

_VARIANTS = ("SubDEx", "Naive")


def _engine(database, variant: str) -> SubDEx:
    config = all_variants()[variant]
    config = replace(
        config,
        recommender=replace(
            config.recommender,
            max_values_per_attribute=4,
            preview_uses_full_pipeline=True,
        ),
    )
    return SubDEx(database, config)


def _sweep_metrics(sweep: Sweep) -> dict[str, Metric | float]:
    """Endpoint timings plus the growth ratio over the sweep, per variant."""
    metrics: dict[str, Metric | float] = {}
    for variant in _VARIANTS:
        series = sweep.series(variant)
        key = variant.lower()
        metrics[f"{key}_first_s"] = series[0]
        metrics[f"{key}_last_s"] = series[-1]
        metrics[f"{key}_growth"] = Metric(
            series[-1] / max(series[0], 1e-9), unit="x",
            higher_is_better=None, portable=True,
        )
    return metrics


def _step_seconds(engine: SubDEx) -> float:
    """One full exploration step: k maps + o recommendations."""
    session = engine.session()
    __, seconds = time_call(
        lambda: session.step(with_recommendations=True), repeats=1
    )
    return seconds


def test_fig10a_database_size(benchmark):
    def run() -> Sweep:
        base = bench_database("yelp")
        sweep = Sweep("reviewer fraction")
        for fraction in (0.2, 0.4, 0.6, 0.8, 1.0):
            database = (
                base if fraction == 1.0 else base.sample_reviewers(fraction, seed=1)
            )
            for variant in _VARIANTS:
                sweep.record(
                    variant, fraction, _step_seconds(_engine(database, variant))
                )
        return sweep

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "== Figure 10(a): step runtime (s) vs database size ==\n"
        + sweep.format()
        + "\npaper: all variants < 1 s on their server; size has little "
        "effect (candidate maps / operations depend on attributes, not rows)."
    )
    report("fig10a_db_size", text, metrics=_sweep_metrics(sweep),
           config={"figure": "10a", "dataset": "yelp"})
    for variant in _VARIANTS:
        series = sweep.series(variant)
        # little effect: 5× more data should cost well under 5× more time
        assert series[-1] < 5 * max(series[0], 1e-3)


def test_fig10b_number_of_attributes(benchmark):
    def run() -> Sweep:
        base = bench_database("yelp")
        sweep = Sweep("# attributes")
        for n_attrs in (6, 12, 18, 24):
            database = restrict_attribute_count(base, n_attrs, seed=2)
            for variant in _VARIANTS:
                sweep.record(
                    variant, n_attrs, _step_seconds(_engine(database, variant))
                )
        return sweep

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "== Figure 10(b): step runtime (s) vs # attributes ==\n"
        + sweep.format()
        + "\npaper: near-linear growth for all baselines."
    )
    report("fig10b_num_attributes", text, metrics=_sweep_metrics(sweep),
           config={"figure": "10b", "dataset": "yelp"})
    for variant in _VARIANTS:
        series = sweep.series(variant)
        assert series[-1] > series[0]  # growing
        # polynomial, not exploding: 4× attributes within ~20× time
        # (attributes drive both candidate operations and maps per
        # operation, so the joint growth is mildly super-linear)
        assert series[-1] < 20 * max(series[0], 1e-3)


def test_fig10c_number_of_values(benchmark):
    def run() -> Sweep:
        base = bench_database("yelp")
        sweep = Sweep("# values/attribute")
        for max_values in (3, 6, 9, 13):
            database = restrict_value_count(base, max_values)
            for variant in _VARIANTS:
                sweep.record(
                    variant, max_values, _step_seconds(_engine(database, variant))
                )
        return sweep

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "== Figure 10(c): step runtime (s) vs # attribute values ==\n"
        + sweep.format()
        + "\npaper: near-linear growth (values ≈ candidate operations)."
    )
    report("fig10c_num_values", text, metrics=_sweep_metrics(sweep),
           config={"figure": "10c", "dataset": "yelp"})
    for variant in _VARIANTS:
        series = sweep.series(variant)
        assert series[-1] > 0.5 * series[0]  # monotone-ish growth
