"""The SDE benchmark suite in action (paper §1/§5's proposed benchmark).

Generates a graded task suite over the Yelp-like dataset and scores the
three exploration modes on it: per-task recall = fraction of ground-truth
targets the mode's path *exposes* within the task's step budget.  This is
the engine-vs-engine comparison surface the paper says SDE needs.
"""

from repro.bench import (
    Metric,
    bench_database,
    bench_recommender_config,
    format_table,
    generate_suite,
    report,
)
from repro.bench.sde_benchmark import BenchmarkTask
from repro.core.engine import SubDEx, SubDExConfig
from repro.core.modes import ExplorationMode
from repro.userstudy import sample_path


def _recall(task: BenchmarkTask, mode: ExplorationMode) -> float:
    engine = SubDEx(
        task.task.database,
        SubDExConfig(recommender=bench_recommender_config()),
    )
    path = sample_path(
        engine, task.task, mode, "high", task.step_budget, seed=11
    )
    exposed = task.task.exposed_in_path(path)
    return len(exposed) / task.task.max_score


def test_sde_suite_scores_modes(benchmark):
    def run():
        suite = generate_suite(
            bench_database("yelp"), n_anomaly_tasks=2, n_insight_tasks=1, seed=9
        )
        scores = {
            mode: suite.score_explorer(lambda t, m=mode: _recall(t, m))
            for mode in ExplorationMode
        }
        return suite, scores

    suite, scores = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [mode.short, values.get("overall", 0.0)]
        + [values.get(grade, float("nan")) for grade in ("easy", "medium", "hard")]
        for mode, values in scores.items()
    ]
    text = (
        "== SDE benchmark suite: per-mode exposure recall ==\n"
        + suite.describe()
        + "\n\n"
        + format_table(
            ["mode", "overall", "easy", "medium", "hard"], rows, "{:.2f}"
        )
        + "\nguided modes should not trail the unguided one overall."
    )
    report(
        "sde_suite",
        text,
        metrics={
            f"{mode.short.lower()}_overall_recall": Metric(
                float(values.get("overall", 0.0)), unit="recall",
                higher_is_better=None, portable=True,
            )
            for mode, values in scores.items()
        },
        config={"dataset": "yelp", "n_anomaly_tasks": 2, "n_insight_tasks": 1},
    )
    rp = scores[ExplorationMode.RECOMMENDATION_POWERED]["overall"]
    ud = scores[ExplorationMode.USER_DRIVEN]["overall"]
    assert rp >= ud - 0.25
