"""Ablation — the sharing optimization (paper §4.2.1, "Combining Multiple
Aggregates").

Rating maps that group by the same attribute share one scan in SubDEx: the
grouping codes are fetched once per attribute and every rating dimension's
histogram accumulates against them.  The unshared alternative re-slices the
codes and re-accumulates per (attribute, dimension) pair.  This bench
measures exactly that primitive (the phased framework's inner loop) on the
Yelp-like dataset — with 4 rating dimensions the shared plan touches each
attribute's codes once instead of four times.
"""

import numpy as np

from repro.bench import Metric, format_table, report, time_call
from repro.datasets import yelp
from repro.db.groupby import Grouping, SharedGroupByScan, group_histograms
from repro.model import RatingGroup, SelectionCriteria


def _shared_pass(database, group) -> int:
    """One shared scan per grouping attribute, all dimensions at once."""
    total = 0
    rows = np.arange(len(group), dtype=np.int64)
    for side, attribute in database.grouping_attributes():
        codes = group.subgroup_codes(side, attribute)
        labels = group.subgroup_labels(side, attribute)
        scan = SharedGroupByScan(
            Grouping(attribute, codes, labels),
            {dim: group.scores(dim) for dim in database.dimensions},
            database.scale,
        )
        scan.update(rows)
        total += sum(
            int(scan.accumulator(dim).counts.sum())
            for dim in database.dimensions
        )
    return total


def _unshared_pass(database, group) -> int:
    """One independent GROUP BY per (attribute, dimension) pair.

    This is SeeDB's un-shared plan: every view issues its own grouping
    query, so the dictionary encoding and the record alignment are redone
    per view rather than once per attribute.
    """
    from repro.db.groupby import build_grouping

    total = 0
    for side, attribute in database.grouping_attributes():
        for dim in database.dimensions:
            entity_grouping = build_grouping(
                database.entity_table(side), attribute
            )
            codes = entity_grouping.codes[
                database.entity_rows_for_ratings(side)
            ][group.rows]
            counts = group_histograms(
                codes,
                entity_grouping.n_groups,
                group.scores(dim),
                database.scale,
            )
            total += int(counts.sum())
    return total


def test_ablation_sharing(benchmark):
    def run():
        # scan-dominated regime: sharing saves per-attribute code slicing,
        # which only matters once the group is large
        database = yelp(seed=3, scale_factor=0.25)
        group = RatingGroup(database, SelectionCriteria.root())
        shared_total, shared_seconds = time_call(
            lambda: _shared_pass(database, group), repeats=5
        )
        unshared_total, unshared_seconds = time_call(
            lambda: _unshared_pass(database, group), repeats=5
        )
        assert shared_total == unshared_total  # identical histograms
        return shared_seconds, unshared_seconds

    shared_seconds, unshared_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = unshared_seconds / max(shared_seconds, 1e-9)
    text = (
        "== Ablation: sharing optimization (Combining Multiple Aggregates) ==\n"
        + format_table(
            ["plan", "seconds"],
            [
                ["shared scans (SubDEx)", shared_seconds],
                ["one scan per (attribute, dimension)", unshared_seconds],
            ],
            "{:.4f}",
        )
        + f"\nspeedup from sharing: {speedup:.2f}× "
        "(paper §4.2.1: maps with the same grouping attribute are combined "
        "into a single multi-aggregate query)."
    )
    report(
        "ablation_sharing",
        text,
        metrics={
            "shared_seconds": shared_seconds,
            "unshared_seconds": unshared_seconds,
            "sharing_speedup": Metric(
                speedup, unit="x", higher_is_better=True, portable=True
            ),
        },
        config={"dataset": "yelp", "scale_factor": 0.25},
    )
    # sharing must not lose; with 4 dimensions it should clearly win
    assert shared_seconds <= unshared_seconds * 1.1
