"""Figure 3 — example rating maps and their interestingness scores.

The paper's Figure 3 shows two rating maps over the rating group "young
reviewers × NYC restaurants" (GroupBy neighborhood / food and GroupBy
gender / ambiance) and their raw interestingness scores (conciseness 16.6
and 33.3, agreement 0.74 / 0.76, self peculiarity 0.21 / 0.27).  This bench
rebuilds the figure's two maps from the paper's literal histograms and
checks our measures land on the same raw values, then generates the same
two maps organically from a Yelp-like rating group.
"""

import numpy as np

from repro.bench import Metric, bench_database, paper_vs_measured, report
from repro.core import RatingDistribution
from repro.core.interestingness import InterestingnessScorer
from repro.core.rating_maps import build_rating_map, RatingMapSpec
from repro.model import RatingGroup, SelectionCriteria, Side

# the exact histograms of Figure 3
_RM_NEIGHBORHOOD = {
    "Williamsburg": {1: 1, 2: 2, 3: 1, 4: 5, 5: 7},
    "SoHo": {1: 3, 2: 3, 3: 2, 4: 5, 5: 7},
    "Kips Bay": {1: 2, 2: 2, 3: 2, 4: 1, 5: 5},
    "Tribeca": {1: 3, 2: 1, 3: 2, 4: 1, 5: 5},
    "Chelsea": {1: 3, 2: 1, 3: 9, 4: 5, 5: 2},
    "Midtown": {1: 3, 2: 3, 3: 9, 4: 3, 5: 2},
}
_RM_GENDER = {
    "Male": {1: 5, 2: 6, 3: 4, 4: 9, 5: 11},
    "Unspecified": {1: 5, 2: 8, 3: 7, 4: 5, 5: 5},
    "Female": {1: 14, 2: 10, 3: 5, 4: 5, 5: 1},
}


def _counts(table: dict) -> np.ndarray:
    return np.array(
        [RatingDistribution.from_mapping(row, 5).counts for row in table.values()]
    )


def _inverse_sigma_agreement(scorer: InterestingnessScorer, counts: np.ndarray) -> float:
    """Agreement as 1/σ̃ — the form that reproduces Figure 3's 0.74 / 0.76."""
    bounded = scorer.agreement(counts)  # = 1 / (1 + σ̃)
    sigma = 1.0 / bounded - 1.0
    return 1.0 / sigma


def _figure3_scores() -> dict[str, float]:
    scorer = InterestingnessScorer(min_support=1)
    rm = _counts(_RM_NEIGHBORHOOD)
    rm2 = _counts(_RM_GENDER)
    return {
        "rm conciseness": scorer.conciseness(rm, int(rm.sum())),
        "rm' conciseness": scorer.conciseness(rm2, int(rm2.sum())),
        "rm agreement (1/σ̃)": _inverse_sigma_agreement(scorer, rm),
        "rm' agreement (1/σ̃)": _inverse_sigma_agreement(scorer, rm2),
        "rm self peculiarity": scorer.self_peculiarity(rm),
        "rm' self peculiarity": scorer.self_peculiarity(rm2),
        "rm avg(Williamsburg)": RatingDistribution.from_mapping(
            _RM_NEIGHBORHOOD["Williamsburg"], 5
        ).mean(),
        "rm' avg(Female)": RatingDistribution.from_mapping(
            _RM_GENDER["Female"], 5
        ).mean(),
    }


def test_fig3_example_maps(benchmark):
    measured = benchmark.pedantic(_figure3_scores, rounds=1, iterations=1)
    paper = {
        "rm conciseness": 16.6,
        "rm' conciseness": 33.3,
        "rm agreement (1/σ̃)": 0.74,
        "rm' agreement (1/σ̃)": 0.76,
        "rm self peculiarity": 0.21,
        "rm' self peculiarity": 0.27,
        "rm avg(Williamsburg)": 3.9,
        "rm' avg(Female)": 2.1,
    }
    text = paper_vs_measured(
        "Figure 3 — interestingness of the example maps",
        paper,
        measured,
        note=(
            "conciseness, averages and 1/σ̃ agreement reproduce the figure "
            "exactly; the figure's peculiarity values (0.21 / 0.27) do not "
            "follow from its own histograms under max-subgroup TVD (ours: "
            "0.275 / 0.211) — they appear illustrative. The library keeps "
            "the bounded 1/(1+σ̃) agreement so all criteria share [0, 1]."
        ),
    )
    report(
        "fig3_example_maps",
        text,
        metrics={
            "rm_conciseness": Metric(
                measured["rm conciseness"], unit="score",
                higher_is_better=None, portable=True,
            ),
            "rm2_conciseness": Metric(
                measured["rm' conciseness"], unit="score",
                higher_is_better=None, portable=True,
            ),
            "rm_agreement": Metric(
                measured["rm agreement (1/σ̃)"], unit="score",
                higher_is_better=None, portable=True,
            ),
            "rm2_agreement": Metric(
                measured["rm' agreement (1/σ̃)"], unit="score",
                higher_is_better=None, portable=True,
            ),
        },
        config={"figure": "3"},
    )
    # conciseness is a pure count ratio — must match exactly
    assert abs(measured["rm conciseness"] - 16.6) < 0.1
    assert abs(measured["rm' conciseness"] - 33.3) < 0.1
    # agreement as 1/σ̃ reproduces the figure to two decimals
    assert abs(measured["rm agreement (1/σ̃)"] - 0.74) < 0.02
    assert abs(measured["rm' agreement (1/σ̃)"] - 0.76) < 0.02
    # average scores match the figure
    assert abs(measured["rm avg(Williamsburg)"] - 3.9) < 0.05
    assert abs(measured["rm' avg(Female)"] - 2.1) < 0.05


def test_fig3_maps_arise_organically(benchmark):
    """The same two map shapes can be generated from a real rating group."""

    def build():
        database = bench_database("yelp")
        group = RatingGroup(
            database, SelectionCriteria.of(reviewer={"age_group": "young"})
        )
        by_neigh = build_rating_map(
            group, RatingMapSpec(Side.ITEM, "neighborhood", "food")
        )
        by_gender = build_rating_map(
            group, RatingMapSpec(Side.REVIEWER, "gender", "ambiance")
        )
        return by_neigh, by_gender

    by_neigh, by_gender = benchmark.pedantic(build, rounds=1, iterations=1)
    assert by_neigh.is_informative and by_gender.is_informative
    report(
        "fig3_organic_maps",
        "Figure 3 analogue generated from the Yelp-like dataset:\n\n"
        + by_neigh.render()
        + "\n\n"
        + by_gender.render(),
        metrics={
            "informative_maps": Metric(
                float(by_neigh.is_informative) + float(by_gender.is_informative),
                unit="maps", higher_is_better=True, portable=True,
            ),
        },
        config={"figure": "3", "dataset": "yelp"},
    )
