"""Table 4 — quality of next-action recommendations (paper §5.2.2).

Fully-Automated Scenario-I exploration paths are generated three times per
dataset, differing only in where next-action operations come from: SubDEx's
Recommendation Builder, Smart Drill-Down [35], or Qagview [58].  The rating
maps displayed at each step are always SubDEx's (the paper fixes them across
baselines).  Simulated subjects score each path.

Paper: SubDEx 0.9 / 0.8 (Movielens / Yelp) beats SDD 0.6 / 0.4 and Qagview
0.7 / 0.5, because both baselines only drill down and identifying the second
irregular group needs a roll-up.
"""

import numpy as np

from repro.baselines import Qagview, QagviewConfig, SDDConfig, SmartDrillDown
from repro.bench import (
    Metric,
    bench_recommender_config,
    bench_subjects,
    format_table,
    report,
)
from repro.bench.workloads import bench_database
from repro.core.engine import SubDEx, SubDExConfig
from repro.userstudy import make_scenario1_task, run_recommendation_quality

_PAPER = {
    "movielens": {"SubDEx": 0.9, "SDD": 0.6, "Qagview": 0.7},
    "yelp": {"SubDEx": 0.8, "SDD": 0.4, "Qagview": 0.5},
}
_N_INSTANCES = 3


def _run_dataset(name: str) -> dict[str, float]:
    sdd = SmartDrillDown(SDDConfig(k=3))
    qagview = Qagview(QagviewConfig(k=3))
    recommenders = {
        "SubDEx": None,  # the engine's own Recommendation Builder (FA mode)
        "SDD": sdd.recommend,
        "Qagview": qagview.recommend,
    }
    totals: dict[str, list[float]] = {k: [] for k in recommenders}
    for instance in range(_N_INSTANCES):
        task = make_scenario1_task(bench_database(name), seed=11 + instance)
        engine = SubDEx(
            task.database,
            SubDExConfig(recommender=bench_recommender_config()),
        )
        scores = run_recommendation_quality(
            engine,
            task,
            recommenders,
            n_steps=7,
            n_subjects=bench_subjects(),
            seed=instance,
        )
        for key, value in scores.items():
            totals[key].append(value)
    return {k: float(np.mean(v)) for k, v in totals.items()}


def test_table4_recommendation_quality(benchmark):
    def run():
        return {name: _run_dataset(name) for name in ("movielens", "yelp")}

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name in ("movielens", "yelp"):
        for baseline in ("SubDEx", "SDD", "Qagview"):
            rows.append(
                [
                    name,
                    baseline,
                    measured[name][baseline],
                    _PAPER[name][baseline],
                ]
            )
    text = (
        "== Table 4: avg # identified irregular groups per recommender ==\n"
        + format_table(["dataset", "baseline", "measured", "paper"], rows)
        + "\nshape: SubDEx ≥ both baselines on both datasets (drill-down-"
        "only recommenders cannot roll up to reach the second group)."
    )
    report(
        "table4_reco_quality",
        text,
        metrics={
            f"{name}_{baseline.lower()}_score": Metric(
                measured[name][baseline], unit="score",
                higher_is_better=None, portable=True,
            )
            for name in ("movielens", "yelp")
            for baseline in ("SubDEx", "SDD", "Qagview")
        },
        config={"n_instances": _N_INSTANCES, "n_steps": 7},
    )
    for name in ("movielens", "yelp"):
        assert measured[name]["SubDEx"] >= measured[name]["SDD"] - 1e-9
        assert measured[name]["SubDEx"] >= measured[name]["Qagview"] - 1e-9
