"""Resilience chaos bench: availability and latency under a fault storm.

Drives 8 concurrent simulated users against ONE in-process server while a
seeded :class:`~repro.resilience.FaultPlan` injects a 10% handler-exception
rate and a 10% slow-engine-call rate.  Asserts the resilience layer's
acceptance bar:

* every request — including the deliberately failed ones — answers with a
  well-formed JSON envelope (no resets, no HTML error pages);
* availability stays high because idempotent reads retry with jittered
  backoff and mutations are only replayed when the injected fault fired
  *before* the handler ran (so the retry is safe by construction);
* deadline-bound requests answer within ``deadline + 250ms`` — expired
  budgets cancel cooperatively instead of hogging a worker;
* after a kill/restart, every checkpointed session is restored with an
  identical history export;
* the storm leaves zero hung threads: the admission gate drains to zero
  and the process thread count returns to its pre-storm level.
"""

from __future__ import annotations

import random
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.bench import (
    Metric,
    bench_database,
    bench_recommender_config,
    format_table,
    latency_summary,
    report,
)
from repro.core.engine import SubDEx, SubDExConfig
from repro.resilience import FaultPlan
from repro.server import (
    RetryPolicy,
    ServerConfig,
    ServerError,
    ServerUnavailable,
    SubDExClient,
    build_server,
)

N_CLIENTS = 8
STEPS_PER_CLIENT = 2
HANDLER_ERROR_RATE = 0.10
SLOW_ENGINE_RATE = 0.10
FAULT_SEED = 11
DEADLINE_MS = 400
DEADLINE_SLACK_SECONDS = 0.25
DEADLINE_PROBES = 10


def _factory():
    database = bench_database("yelp")
    return SubDEx(database, SubDExConfig(recommender=bench_recommender_config()))


def _client(url: str, seed: int, retries: int = 4) -> SubDExClient:
    return SubDExClient(
        url,
        timeout=30.0,
        retry=RetryPolicy(
            max_attempts=retries,
            base_seconds=0.02,
            cap_seconds=0.25,
            rng=random.Random(seed),
        ),
    )


class Outcomes:
    """Thread-safe tally of every logical request's fate."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.latencies: list[float] = []
        self.ok = 0
        self.handled_errors = 0  # well-formed JSON error envelopes
        self.malformed = 0  # non-JSON or connection-level failures

    def record(self, seconds: float, ok: bool, well_formed: bool) -> None:
        with self._lock:
            self.latencies.append(seconds)
            if ok:
                self.ok += 1
            elif well_formed:
                self.handled_errors += 1
            else:
                self.malformed += 1

    @property
    def total(self) -> int:
        return len(self.latencies)


def _well_formed(error: BaseException) -> bool:
    if isinstance(error, ServerUnavailable):
        return _well_formed(error.last_error)
    return isinstance(error, ServerError) and error.code != "invalid_response"


def _attempt(outcomes: Outcomes, fn):
    """One logical request; returns its payload or None on a handled error."""
    started = time.perf_counter()
    try:
        result = fn()
    except (ServerError, OSError) as error:
        outcomes.record(
            time.perf_counter() - started, False, _well_formed(error)
        )
        return None
    outcomes.record(time.perf_counter() - started, True, True)
    return result


def _mutate(outcomes: Outcomes, fn, attempts: int = 4):
    """A mutation, retried only on faults injected *before* the handler ran.

    The ``"handler"`` chaos site fires before dispatch, so an
    ``injected_fault`` error proves the step never happened — replaying it
    is safe.  Any other failure surfaces untouched.
    """
    for remaining in range(attempts, 0, -1):
        started = time.perf_counter()
        try:
            result = fn()
        except ServerError as error:
            ok_to_retry = error.code == "injected_fault" and remaining > 1
            outcomes.record(
                time.perf_counter() - started, False, _well_formed(error)
            )
            if ok_to_retry:
                continue
            return None
        outcomes.record(time.perf_counter() - started, True, True)
        return result
    return None


def _run_chaos():
    checkpoint_dir = tempfile.mkdtemp(prefix="subdex-resilience-")
    plan = FaultPlan(
        seed=FAULT_SEED,
        error_rates={"handler": HANDLER_ERROR_RATE},
        latency_rates={"pool.get": SLOW_ENGINE_RATE},
        latency_seconds=0.05,
    )
    config = ServerConfig(
        max_sessions=N_CLIENTS * 2,
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval_seconds=3600.0,  # mutation checkpoints only
        drain_seconds=15.0,
    )
    threads_before = threading.active_count()
    server = build_server({"yelp": _factory}, port=0, config=config, fault_plan=plan)
    serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
    serve_thread.start()

    outcomes = Outcomes()
    session_ids: list[str] = []
    ids_lock = threading.Lock()

    def user(user_id: int) -> None:
        with _client(server.url, seed=user_id) as client:
            session = _mutate(
                outcomes, lambda: client.create_session(dataset="yelp")
            )
            if session is None:
                return
            with ids_lock:
                session_ids.append(session.id)
            for _ in range(STEPS_PER_CLIENT):
                recommendations = _attempt(outcomes, session.recommendations)
                if recommendations:
                    _mutate(outcomes, lambda: session.apply_recommendation(1))
                _attempt(outcomes, session.maps)
            _attempt(outcomes, session.history)

    storm_started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
        for future in [pool.submit(user, u) for u in range(N_CLIENTS)]:
            future.result()
    storm_elapsed = time.perf_counter() - storm_started

    # -- deadline phase: bounded answers even mid-chaos ----------------------
    deadline_durations: list[float] = []
    deadline_statuses: dict[str, int] = {}
    with SubDExClient(
        server.url, retry=RetryPolicy(max_attempts=1)
    ) as probe_client:
        for _ in range(DEADLINE_PROBES):
            started = time.perf_counter()
            try:
                probe_client.request(
                    "POST", "/sessions", {}, deadline_ms=DEADLINE_MS
                )
                key = "completed"
            except ServerError as error:
                key = error.code
            deadline_durations.append(time.perf_counter() - started)
            deadline_statuses[key] = deadline_statuses.get(key, 0) + 1

    # -- kill/restart phase --------------------------------------------------
    histories: dict[str, dict] = {}
    with _client(server.url, seed=999) as client:
        for session_id in session_ids:
            payload = _attempt(
                outcomes,
                lambda sid=session_id: client.request(
                    "GET", f"/sessions/{sid}/history"
                ),
            )
            assert payload is not None, "history read must survive the storm"
            histories[session_id] = payload

    drained = server.graceful_shutdown()
    serve_thread.join(10.0)

    # the restarted server gets a clean fault plan: restore must be exact
    reborn = build_server({"yelp": _factory}, port=0, config=config)
    reborn_thread = threading.Thread(target=reborn.serve_forever, daemon=True)
    reborn_thread.start()
    restored_identical = 0
    with SubDExClient(reborn.url) as client:
        for session_id, before in histories.items():
            after = client.request("GET", f"/sessions/{session_id}/history")
            if after == before:
                restored_identical += 1
    reborn.graceful_shutdown()
    reborn_thread.join(10.0)

    # -- zero hung threads ---------------------------------------------------
    give_up = time.monotonic() + 10.0
    while threading.active_count() > threads_before and time.monotonic() < give_up:
        time.sleep(0.05)

    return {
        "outcomes": outcomes,
        "storm_elapsed": storm_elapsed,
        "faults": plan.counters(),
        "deadline_durations": deadline_durations,
        "deadline_statuses": deadline_statuses,
        "drained": drained,
        "gate_inflight": server.gate.inflight,
        "sessions": len(session_ids),
        "restored_identical": restored_identical,
        "checkpoint_dir": checkpoint_dir,
        "threads_before": threads_before,
        "threads_after": threading.active_count(),
    }


def _report(results: dict) -> str:
    outcomes: Outcomes = results["outcomes"]
    summary = latency_summary(outcomes.latencies)
    handler_faults = results["faults"].get("handler", {}).get("errors", 0)
    stalls = results["faults"].get("pool.get", {}).get("stalls", 0)
    deadline_bound = DEADLINE_MS / 1000.0 + DEADLINE_SLACK_SECONDS
    rows = [
        ["concurrent clients", float(N_CLIENTS)],
        ["logical requests", float(outcomes.total)],
        ["succeeded", float(outcomes.ok)],
        ["handled JSON errors", float(outcomes.handled_errors)],
        ["malformed responses", float(outcomes.malformed)],
        ["injected handler faults", float(handler_faults)],
        ["injected engine stalls", float(stalls)],
        ["storm wall seconds", results["storm_elapsed"]],
        ["throughput (req/s)", outcomes.total / results["storm_elapsed"]],
        ["latency p50 (s)", summary["p50"]],
        ["latency p95 (s)", summary["p95"]],
        ["deadline probes", float(len(results["deadline_durations"]))],
        ["deadline bound (s)", deadline_bound],
        ["deadline worst (s)", max(results["deadline_durations"])],
        ["sessions checkpointed", float(results["sessions"])],
        ["restored identical", float(results["restored_identical"])],
        ["drained cleanly", float(results["drained"])],
    ]
    statuses = ", ".join(
        f"{k}={v}" for k, v in sorted(results["deadline_statuses"].items())
    )
    return (
        f"== Resilience: {N_CLIENTS} clients under a "
        f"{HANDLER_ERROR_RATE:.0%} fault / {SLOW_ENGINE_RATE:.0%} stall storm ==\n"
        + format_table(["quantity", "value"], rows, "{:.4f}")
        + f"\ndeadline probe outcomes: {statuses}"
    )


def test_resilience_chaos(benchmark):
    results = benchmark.pedantic(_run_chaos, rounds=1, iterations=1)
    text = _report(results)
    summary = latency_summary(results["outcomes"].latencies)
    report(
        "resilience",
        text,
        metrics={
            "throughput_rps": Metric(
                results["outcomes"].total / results["storm_elapsed"],
                unit="req/s", higher_is_better=True,
            ),
            "latency_p95_s": summary["p95"],
            "availability": Metric(
                results["outcomes"].ok / results["outcomes"].total
                if results["outcomes"].total else 0.0,
                unit="ratio", higher_is_better=True, portable=True,
            ),
            "deadline_worst_s": max(results["deadline_durations"]),
            "restored_identical": Metric(
                float(results["restored_identical"]), unit="sessions",
                higher_is_better=None, portable=True,
            ),
        },
        config={
            "n_clients": N_CLIENTS,
            "handler_error_rate": HANDLER_ERROR_RATE,
            "slow_engine_rate": SLOW_ENGINE_RATE,
        },
    )
    outcomes: Outcomes = results["outcomes"]

    # every request answered with well-formed JSON — even the injected 500s
    assert outcomes.malformed == 0
    assert outcomes.total > 0
    # the storm really stormed…
    assert results["faults"].get("handler", {}).get("errors", 0) > 0
    # …yet retries kept availability high
    assert outcomes.ok / outcomes.total >= 0.90

    # deadline-bound requests answered within deadline + 250ms
    bound = DEADLINE_MS / 1000.0 + DEADLINE_SLACK_SECONDS
    assert max(results["deadline_durations"]) <= bound

    # kill/restart restored every checkpointed session, histories identical
    assert results["sessions"] == N_CLIENTS
    assert results["restored_identical"] == results["sessions"]

    # zero hung threads: the gate drained and the thread count recovered
    assert results["drained"] is True
    assert results["gate_inflight"] == 0
    assert results["threads_after"] <= results["threads_before"] + 1


if __name__ == "__main__":
    print(_report(_run_chaos()))
