"""Ablation — sampled rating maps ([36]-style, paper §2 related work).

Measures, across sample fractions, the speedup of building a rating map
from a sample and how well the subgroup score *ordering* (what a user
reads) is preserved — the property Kim et al. optimise for.
"""

import numpy as np

from repro.bench import Metric, format_table, report, time_call
from repro.core.rating_maps import RatingMapSpec, build_rating_map
from repro.core.sampling import approximate_rating_map, ordering_agreement
from repro.datasets import yelp
from repro.model import RatingGroup, SelectionCriteria, Side

_FRACTIONS = (0.05, 0.1, 0.25, 0.5, 1.0)


def _run() -> list[list[float]]:
    database = yelp(seed=6, scale_factor=0.2)
    group = RatingGroup(database, SelectionCriteria.root())
    spec = RatingMapSpec(Side.ITEM, "neighborhood", "food")
    exact, exact_seconds = time_call(
        lambda: build_rating_map(group, spec), repeats=3
    )
    rows = []
    for fraction in _FRACTIONS:
        agreements = []
        approx = None
        __, seconds = time_call(
            lambda: approximate_rating_map(group, spec, fraction, seed=1),
            repeats=3,
        )
        for seed in range(5):
            approx = approximate_rating_map(group, spec, fraction, seed=seed)
            agreements.append(ordering_agreement(exact, approx.rating_map))
        rows.append(
            [
                fraction,
                seconds,
                exact_seconds / max(seconds, 1e-9),
                float(np.mean(agreements)),
                approx.mean_epsilon,
            ]
        )
    return rows


def test_ablation_sampling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = (
        "== Ablation: sampled rating maps (ordering preservation, [36]) ==\n"
        + format_table(
            [
                "fraction",
                "seconds",
                "speedup",
                "ordering agreement",
                "worst mean ±ε",
            ],
            rows,
            "{:.4f}",
        )
        + "\nsampling keeps the subgroup ordering users read off the chart "
        "with a bounded mean error; note that on this in-memory substrate a "
        "full numpy scan is already so cheap that the wall-clock speedup "
        "only materialises at much larger group sizes — the ordering-"
        "preservation property (the point of [36]) is what this bench "
        "verifies."
    )
    by_fraction = {row[0]: row for row in rows}
    report(
        "ablation_sampling",
        text,
        metrics={
            "sample_10pct_seconds": by_fraction[0.1][1],
            "sample_10pct_agreement": Metric(
                by_fraction[0.1][3], unit="ratio",
                higher_is_better=True, portable=True,
            ),
            "sample_50pct_agreement": Metric(
                by_fraction[0.5][3], unit="ratio",
                higher_is_better=True, portable=True,
            ),
        },
        config={"fractions": list(_FRACTIONS)},
    )
    # ordering agreement grows with the fraction and is exact at 1.0
    assert by_fraction[1.0][3] == 1.0
    assert by_fraction[0.5][3] >= by_fraction[0.05][3] - 0.05
    # a 10% sample keeps at least ~80% of the pairwise ordering
    assert by_fraction[0.1][3] >= 0.8