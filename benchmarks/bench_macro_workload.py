"""IDEBench-style macro-workload bench reporting against the live SLOs.

Simulates a user population (Poisson session arrivals, think time, the
paper's three exploration modes, anytime ``budget_ms`` callers) against
an in-process server, then answers the question the micro-benches
can't: **is the system fast *enough*, as deployed, under realistic
load?**  Reported per deployment shape (single-process and
``--workers 2`` cluster):

* time-to-insight p50/p95 — wall seconds until a simulated user has
  applied ``insight_steps`` recommendations;
* SLO attainment straight from ``GET /slo`` (availability, latency
  attainment, shed/degraded rates per endpoint class);
* ``slo_match`` — the acceptance cross-check: the server's scorecard
  recomputed offline from the driver's own request log (same
  evaluation math, independent tally) must agree within 1%.

Environment knobs (the CI quick profile keeps wall time small):

* ``REPRO_MACRO_DURATION`` — arrival window seconds (default 4);
* ``REPRO_MACRO_WORKERS`` — deployment shapes (default ``0,2``);
* ``REPRO_MACRO_RATE`` — session arrivals per second (default 3).
"""

from __future__ import annotations

import argparse
import os
import threading

from repro.bench import (
    Metric,
    bench_database,
    bench_recommender_config,
    format_table,
    report,
)
from repro.core.engine import SubDEx, SubDExConfig
from repro.server import ServerConfig, SubDExClient, build_server
from repro.slo import load_slo_config
from repro.workload import (
    MacroWorkloadDriver,
    WorkloadProfile,
    compare_scorecards,
    time_to_insight_summary,
)


def _duration() -> float:
    return float(os.environ.get("REPRO_MACRO_DURATION", "4"))


def _rate() -> float:
    return float(os.environ.get("REPRO_MACRO_RATE", "3"))


def _worker_counts() -> list[int]:
    raw = os.environ.get("REPRO_MACRO_WORKERS", "0,2")
    return [int(part) for part in raw.replace(" ", ",").split(",") if part]


def _profile() -> WorkloadProfile:
    return WorkloadProfile(
        duration_seconds=_duration(),
        arrival_rate_per_second=_rate(),
        mean_think_seconds=0.02,
        seed=11,
    )


def _run_population(workers: int) -> dict:
    """One deployment shape: server up, population through, scorecards."""
    database = bench_database("yelp")
    factory = lambda: SubDEx(  # noqa: E731
        database, SubDExConfig(recommender=bench_recommender_config())
    )
    server = build_server(
        {"yelp": factory},
        port=0,
        config=ServerConfig(max_sessions=64, workers=workers),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        driver = MacroWorkloadDriver(server.url, _profile())
        result = driver.run()
        with SubDExClient(server.url) as client:
            scorecard = client.slo()
    finally:
        if workers:
            server.graceful_shutdown(drain_seconds=10.0)
        else:
            server.shutdown()
            server.server_close()
    comparison = compare_scorecards(
        load_slo_config(None), scorecard, result.records
    )
    return {
        "workers": workers,
        "result": result,
        "scorecard": scorecard,
        "comparison": comparison,
        "insight": time_to_insight_summary(result.outcomes),
    }


def _overall_rates(records) -> dict:
    observed = [r for r in records if r.observed]
    total = len(observed)
    if not total:
        return {"availability": 0.0, "shed_rate": 0.0, "degraded_rate": 0.0}
    return {
        "availability": sum(1 for r in observed if r.status < 500) / total,
        "shed_rate": sum(1 for r in observed if r.shed) / total,
        "degraded_rate": sum(1 for r in observed if r.degraded) / total,
    }


def _report(runs: list[dict]) -> tuple[str, dict, dict]:
    rows = []
    metrics: dict[str, object] = {}
    for run in runs:
        n = run["workers"]
        records = run["result"].records
        rates = _overall_rates(records)
        insight = run["insight"]
        comparison = run["comparison"]
        match = 1.0 if comparison["match"] else 0.0
        rows.append(
            [
                f"workers={n}",
                float(len(records)),
                rates["availability"],
                insight["p50_seconds"] or float("nan"),
                insight["p95_seconds"] or float("nan"),
                rates["shed_rate"],
                rates["degraded_rate"],
                match,
            ]
        )
        prefix = f"w{n}_"
        metrics[prefix + "requests_total"] = Metric(
            len(records), unit="requests", higher_is_better=None
        )
        metrics[prefix + "availability"] = Metric(
            rates["availability"],
            unit="ratio",
            higher_is_better=True,
            portable=True,
        )
        metrics[prefix + "slo_match"] = Metric(
            match, unit="ratio", higher_is_better=True, portable=True
        )
        metrics[prefix + "shed_rate"] = Metric(
            rates["shed_rate"], unit="ratio", higher_is_better=None
        )
        metrics[prefix + "degraded_rate"] = Metric(
            rates["degraded_rate"], unit="ratio", higher_is_better=None
        )
        if insight["p50_seconds"] is not None:
            metrics[prefix + "tti_p50_s"] = Metric(
                insight["p50_seconds"], unit="s", higher_is_better=False
            )
        if insight["p95_seconds"] is not None:
            metrics[prefix + "tti_p95_s"] = Metric(
                insight["p95_seconds"], unit="s", higher_is_better=False
            )
    text = (
        "== Macro workload: simulated population vs. live SLOs ==\n"
        + format_table(
            [
                "deployment",
                "requests",
                "availability",
                "tti p50 (s)",
                "tti p95 (s)",
                "shed",
                "degraded",
                "slo match",
            ],
            rows,
            "{:.4f}",
        )
    )
    config = {
        "duration_seconds": _duration(),
        "arrival_rate_per_second": _rate(),
        "workers": [run["workers"] for run in runs],
        "cpu_count": os.cpu_count(),
    }
    return text, metrics, config


def _check(runs: list[dict]) -> None:
    for run in runs:
        comparison = run["comparison"]
        assert comparison["match"], (
            f"workers={run['workers']}: server /slo disagrees with the "
            f"offline recomputation: {comparison['mismatches'][:3]} "
            f"(max delta {comparison['max_delta']:.4f})"
        )
        assert comparison["checked"] >= 1, "no traffic class was compared"
        assert run["result"].unobserved == 0, (
            f"{run['result'].unobserved} requests got no HTTP response"
        )
        if run["workers"]:
            cluster = run["scorecard"].get("cluster") or {}
            assert cluster.get("workers"), "cluster run reported no workers"
            fleet = (cluster.get("fleet") or {}).get("classes") or {}
            assert fleet, "cluster run reported an empty fleet scorecard"


def test_macro_workload(benchmark):
    counts = _worker_counts()
    runs = benchmark.pedantic(
        lambda: [_run_population(n) for n in counts], rounds=1, iterations=1
    )
    text, metrics, config = _report(runs)
    report("macro_workload", text, metrics=metrics, config=config)
    _check(runs)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="*",
        default=None,
        help="deployment shapes to drive (default from REPRO_MACRO_WORKERS)",
    )
    arguments = parser.parse_args()
    counts = arguments.workers or _worker_counts()
    runs = [_run_population(n) for n in counts]
    text, metrics, config = _report(runs)
    report("macro_workload", text, metrics=metrics, config=config)
    _check(runs)


if __name__ == "__main__":
    main()
