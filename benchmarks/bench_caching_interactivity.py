"""Caching / interactivity bench (paper §2 related work: [18], [57]).

An interactive session retraces its own steps (roll-up, drill back down);
the caching layer should make revisits effectively free while returning
identical results.  Reports cold vs warm step latency and the hit rate
over a realistic retracing workload.
"""

from repro.bench import Metric, bench_database, bench_recommender_config, format_table, report, time_call
from repro.core.caching import CachingEngine
from repro.core.engine import SubDEx, SubDExConfig
from repro.core.utility import SeenMaps
from repro.model import SelectionCriteria


def _workload(database) -> list[SelectionCriteria]:
    """A retracing exploration: out and back through nested selections."""
    young = SelectionCriteria.of(reviewer={"age_group": "young"})
    young_f = SelectionCriteria.of(
        reviewer={"age_group": "young", "gender": "F"}
    )
    root = SelectionCriteria.root()
    return [root, young, young_f, young, root, young_f, young, root]


def test_caching_interactivity(benchmark):
    def run():
        database = bench_database("yelp")
        engine = SubDEx(
            database, SubDExConfig(recommender=bench_recommender_config())
        )
        caching = CachingEngine(engine)
        seen = SeenMaps(
            database.dimensions,
            n_attributes=len(database.grouping_attributes()),
        )
        latencies = []
        for criteria in _workload(database):
            __, seconds = time_call(
                lambda c=criteria: caching.rating_maps(c, seen)
            )
            latencies.append(seconds)
        return latencies, caching.result_stats

    latencies, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    cold = latencies[:3]
    warm = latencies[3:]
    text = (
        "== Caching: cold vs warm step latency (retracing workload) ==\n"
        + format_table(
            ["phase", "mean seconds"],
            [
                ["cold (first visits)", sum(cold) / len(cold)],
                ["warm (revisits)", sum(warm) / len(warm)],
            ],
            "{:.5f}",
        )
        + f"\nresult cache: {stats.describe()}"
    )
    cold_mean = sum(cold) / len(cold)
    warm_mean = sum(warm) / len(warm)
    report(
        "caching_interactivity",
        text,
        metrics={
            "cold_step_s": cold_mean,
            "warm_step_s": warm_mean,
            "warm_vs_cold": Metric(
                warm_mean / cold_mean if cold_mean else 0.0,
                unit="x", higher_is_better=False, portable=True,
            ),
            "hit_rate": Metric(
                stats.hit_rate, unit="ratio",
                higher_is_better=True, portable=True,
            ),
        },
        config={"workload_steps": len(latencies)},
    )
    assert stats.hits >= 4  # every revisit under the same seen-state hits
    assert sum(warm) / len(warm) <= sum(cold) / len(cold)
