"""Tracing overhead — the observability layer must be ~free.

The same exploration workload (fresh engine, opening step + two applied
recommendations on the Fig. 10 synthetic Yelp database) is timed under
three configurations of the module-level tracer the engine layers report
into:

* ``off`` — tracing disabled: every ``span(...)`` call site takes the
  no-op fast path (one contextvar read, one flag check);
* ``on`` — tracing enabled with an in-memory ring-buffer sink (the
  server's default configuration);
* ``on+jsonl`` — tracing enabled with the ring buffer *and* a JSONL
  file sink flushing every finished trace to disk;
* ``profiled`` — tracing disabled but the sampling profiler
  (:mod:`repro.perf.profiler`) actively snapshotting every thread stack
  at its default 5 ms interval, as during ``GET /debug/profile``.

Rounds are interleaved (off, on, on+jsonl, profiled, off, ...) so clock
drift and cache warmth hit all variants equally.  The acceptance bar is
the issue's: enabled tracing — and an in-flight profile — stay within 5%
of the disabled baseline (plus a small absolute allowance for timer noise
on short runs).  When no profile is being taken the profiler has no
thread and no hooks, so its steady-state idle overhead is structurally
zero; the bar here bounds the worst case, sampling *on*.
"""

from __future__ import annotations

import os
import tempfile

import threading

from repro.bench import Metric, format_table, report, time_call
from repro.core.engine import SubDEx, SubDExConfig
from repro.datasets import yelp
from repro.obs import JsonlTraceSink, TraceRingBuffer, configure, get_tracer
from repro.perf import SamplingProfiler, filter_stacks, merge_profiles
from repro.server import ServerConfig, SubDExClient, build_server

_ROUNDS = int(os.environ.get("REPRO_OBS_BENCH_ROUNDS", "3"))
_RELATIVE_SLACK = 1.05  # the ≤5% overhead acceptance bar
_ABSOLUTE_SLACK_S = 0.05  # timer noise allowance on short CI runs


def _scale_factor() -> float:
    return float(os.environ.get("REPRO_OBS_BENCH_SF", "0.5"))


def _workload(database):
    """One exploration: opening step + two applied recommendations."""
    engine = SubDEx(database, SubDExConfig(use_index=True))
    session = engine.session()
    record = session.step(with_recommendations=True)
    for __ in range(2):
        if not record.recommendations:
            break
        record = session.step(
            record.recommendations[0].operation, with_recommendations=True
        )
    return record


def _collect_overhead(database):
    """Fleet trace collection cost on a live 2-worker server.

    The same client workload (session step + maps + one scatter scan) is
    timed with fleet collection off vs on — tail sampling at 5%, so the
    measured cost is fragment shipping + reassembly + sampling, not
    record storage.  Returns (samples, stitched, counters).
    """
    server = build_server(
        {"yelp": lambda: SubDEx(database, SubDExConfig(use_index=True))},
        config=ServerConfig(workers=2, shards=4, trace_sample_rate=0.05),
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    collector = server.collector

    def set_collect(enabled: bool) -> None:
        server.cluster.collect_traces = enabled
        server.tracer.remove_sink(collector)
        if enabled:
            server.tracer.add_sink(collector)

    try:
        with SubDExClient(server.url) as client:

            def client_workload():
                session = client.create_session()
                client.request("GET", f"/sessions/{session.id}/maps")
                client.cluster_maps()
                session.close()

            client_workload()  # warm workers, sockets, caches
            samples = {"collect-off": [], "collect-on": []}
            for __ in range(_ROUNDS):  # interleaved, like the engine runs
                for name, enabled in (
                    ("collect-off", False),
                    ("collect-on", True),
                ):
                    set_collect(enabled)
                    samples[name].append(
                        time_call(client_workload)[1]
                    )
            # one burn-pinned workload proves end-to-end assembly: its
            # traces bypass the 5% sampling and must stitch completely
            set_collect(True)
            server.trace_sampler.pin_burn("bench")
            client_workload()
            stitched = [r for r in collector.search() if r["workers"]]
            counters = collector.counters()
    finally:
        server.graceful_shutdown(drain_seconds=5.0)
    return samples, stitched, counters


def test_obs_overhead(benchmark, tmp_path_factory):
    database = yelp(seed=0, scale_factor=_scale_factor())
    tracer = get_tracer()
    ring = TraceRingBuffer(capacity=64)
    jsonl_path = os.path.join(
        tempfile.mkdtemp(prefix="obs-bench-"), "traces.jsonl"
    )
    jsonl = JsonlTraceSink(jsonl_path)

    def run_off():
        configure(False)
        tracer.clear_sinks()
        return time_call(lambda: _workload(database))[1]

    def run_on():
        configure(True)
        tracer.clear_sinks()
        tracer.add_sink(ring)
        try:
            return time_call(lambda: _workload(database))[1]
        finally:
            configure(False)
            tracer.clear_sinks()

    def run_on_jsonl():
        configure(True)
        tracer.clear_sinks()
        tracer.add_sink(ring)
        tracer.add_sink(jsonl)
        try:
            return time_call(lambda: _workload(database))[1]
        finally:
            configure(False)
            tracer.clear_sinks()

    profiles = []

    def run_profiled():
        configure(False)
        tracer.clear_sinks()
        profiler = SamplingProfiler(interval=0.005)
        profiler.start()
        try:
            return time_call(lambda: _workload(database))[1]
        finally:
            profiles.append(profiler.stop())

    variants = (
        ("off", run_off),
        ("on", run_on),
        ("on+jsonl", run_on_jsonl),
        ("profiled", run_profiled),
    )

    def run():
        samples = {name: [] for name, __ in variants}
        _workload(database)  # warm the dataset caches outside timing
        for __ in range(_ROUNDS):  # interleaved: drift hits all variants
            for name, fn in variants:
                samples[name].append(fn())
        return samples

    samples = benchmark.pedantic(run, rounds=1, iterations=1)
    collect_samples, stitched, collect_counters = _collect_overhead(database)
    means = {
        name: sum(times) / len(times) for name, times in samples.items()
    }
    # the per-variant minimum estimates the noise floor: co-scheduling
    # spikes inflate the mean but cannot make a run *faster*, so the
    # overhead gate and the portable ratios compare bests
    bests = {name: min(times) for name, times in samples.items()}
    spans_recorded = sum(
        t["n_spans"] for t in ring.snapshot()
    )
    jsonl.close()

    off = bests["off"]
    rows = [
        (
            name,
            f"{means[name] * 1000.0:.1f}",
            f"{bests[name] * 1000.0:.1f}",
            f"{bests[name] / off:.3f}x" if off else "n/a",
        )
        for name, __ in variants
    ]
    merged = merge_profiles(profiles)
    collect_bests = {
        name: min(times) for name, times in collect_samples.items()
    }
    collect_off = collect_bests["collect-off"]
    collect_rows = [
        (
            name,
            f"{sum(times) / len(times) * 1000.0:.1f}",
            f"{collect_bests[name] * 1000.0:.1f}",
            f"{collect_bests[name] / collect_off:.3f}x"
            if collect_off
            else "n/a",
        )
        for name, times in collect_samples.items()
    ]
    text = (
        "== Observability overhead: tracer off/on/on+jsonl, profiler on ==\n"
        + format_table(("variant", "mean (ms)", "best (ms)", "vs off"), rows)
        + f"\nrounds per variant: {_ROUNDS} (REPRO_OBS_BENCH_ROUNDS)"
        + f"\nscale factor: {_scale_factor()} (REPRO_OBS_BENCH_SF)"
        + f"\nspans recorded while enabled: {spans_recorded}"
        + f"\nprofiler samples: {merged.n_samples} over {len(merged)} stacks"
        + f"\nacceptance: enabled/profiled within"
        + f" {(_RELATIVE_SLACK - 1) * 100:.0f}% of disabled"
        + f" (+{_ABSOLUTE_SLACK_S * 1000:.0f}ms noise allowance)"
        + "\n\n== Fleet collection overhead: 2 workers, 5% tail sampling ==\n"
        + format_table(
            ("variant", "mean (ms)", "best (ms)", "vs off"), collect_rows
        )
        + f"\nfragments received: {collect_counters['fragments_received']}"
        + f"\ntraces kept/dropped: {collect_counters['kept']}"
        + f"/{collect_counters['dropped']}"
        + f"\nstitched traces (burn-pinned probe): {len(stitched)}"
    )
    metrics = {
        name: bests[name] for name in ("off", "on", "profiled")
    }
    metrics["on_jsonl"] = bests["on+jsonl"]
    if off:
        for name, key in (
            ("on", "on_vs_off"),
            ("on+jsonl", "jsonl_vs_off"),
            ("profiled", "profiled_vs_off"),
        ):
            metrics[key] = Metric(
                bests[name] / off, unit="x",
                higher_is_better=False, portable=True,
            )
    metrics["spans_recorded"] = Metric(
        float(spans_recorded), unit="spans",
        higher_is_better=None, portable=True,
    )
    metrics["collect_off"] = collect_off
    metrics["collect_on"] = collect_bests["collect-on"]
    if collect_off:
        metrics["collect_vs_off"] = Metric(
            collect_bests["collect-on"] / collect_off, unit="x",
            higher_is_better=False, portable=True,
        )
    report(
        "obs_overhead",
        text,
        metrics=metrics,
        config={"rounds": _ROUNDS, "scale_factor": _scale_factor()},
    )

    assert spans_recorded > 0, "enabled runs recorded no spans"
    assert merged.n_samples > 0, "the profiler took no samples"
    # sampling during real engine work must see the engine on the stacks
    assert filter_stacks(merged, "repro."), (
        "profiled workload shows no repro frames in any sampled stack"
    )
    import threading as _threading

    assert not any(
        "profiler" in thread.name for thread in _threading.enumerate()
    ), "a profiler thread outlived its stop()"
    budget = off * _RELATIVE_SLACK + _ABSOLUTE_SLACK_S
    for name in ("on", "on+jsonl", "profiled"):
        assert bests[name] <= budget, (
            f"{name} overhead too high: best {bests[name]:.3f}s vs "
            f"off={off:.3f}s (budget {budget:.3f}s)"
        )
    # fleet collection: fragments shipped from both workers, at least one
    # fully stitched tree, and the same ≤5% overhead bar
    assert collect_counters["fragments_received"] > 0, (
        "collect-on rounds shipped no worker fragments"
    )
    assert stitched, "burn-pinned probe left no stitched trace"
    scatters = [r for r in stitched if r["route"] == "POST /cluster/maps"]
    assert scatters, "no stitched scatter trace collected"
    probe = scatters[0]
    assert probe["partial"] is False
    assert sorted(w["worker"] for w in probe["workers"]) == [0, 1]
    collect_budget = collect_off * _RELATIVE_SLACK + _ABSOLUTE_SLACK_S
    assert collect_bests["collect-on"] <= collect_budget, (
        f"fleet collection overhead too high: best "
        f"{collect_bests['collect-on']:.3f}s vs off={collect_off:.3f}s "
        f"(budget {collect_budget:.3f}s)"
    )
