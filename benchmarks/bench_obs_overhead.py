"""Tracing overhead — the observability layer must be ~free.

The same exploration workload (fresh engine, opening step + two applied
recommendations on the Fig. 10 synthetic Yelp database) is timed under
three configurations of the module-level tracer the engine layers report
into:

* ``off`` — tracing disabled: every ``span(...)`` call site takes the
  no-op fast path (one contextvar read, one flag check);
* ``on`` — tracing enabled with an in-memory ring-buffer sink (the
  server's default configuration);
* ``on+jsonl`` — tracing enabled with the ring buffer *and* a JSONL
  file sink flushing every finished trace to disk.

Rounds are interleaved (off, on, on+jsonl, off, ...) so clock drift and
cache warmth hit all variants equally.  The acceptance bar is the issue's:
enabled tracing stays within 5% of the disabled baseline (plus a small
absolute allowance for timer noise on short runs).
"""

from __future__ import annotations

import os
import tempfile

from repro.bench import format_table, report, time_call
from repro.core.engine import SubDEx, SubDExConfig
from repro.datasets import yelp
from repro.obs import JsonlTraceSink, TraceRingBuffer, configure, get_tracer

_ROUNDS = int(os.environ.get("REPRO_OBS_BENCH_ROUNDS", "3"))
_RELATIVE_SLACK = 1.05  # the ≤5% overhead acceptance bar
_ABSOLUTE_SLACK_S = 0.05  # timer noise allowance on short CI runs


def _scale_factor() -> float:
    return float(os.environ.get("REPRO_OBS_BENCH_SF", "0.5"))


def _workload(database):
    """One exploration: opening step + two applied recommendations."""
    engine = SubDEx(database, SubDExConfig(use_index=True))
    session = engine.session()
    record = session.step(with_recommendations=True)
    for __ in range(2):
        if not record.recommendations:
            break
        record = session.step(
            record.recommendations[0].operation, with_recommendations=True
        )
    return record


def test_obs_overhead(benchmark, tmp_path_factory):
    database = yelp(seed=0, scale_factor=_scale_factor())
    tracer = get_tracer()
    ring = TraceRingBuffer(capacity=64)
    jsonl_path = os.path.join(
        tempfile.mkdtemp(prefix="obs-bench-"), "traces.jsonl"
    )
    jsonl = JsonlTraceSink(jsonl_path)

    def run_off():
        configure(False)
        tracer.clear_sinks()
        return time_call(lambda: _workload(database))[1]

    def run_on():
        configure(True)
        tracer.clear_sinks()
        tracer.add_sink(ring)
        try:
            return time_call(lambda: _workload(database))[1]
        finally:
            configure(False)
            tracer.clear_sinks()

    def run_on_jsonl():
        configure(True)
        tracer.clear_sinks()
        tracer.add_sink(ring)
        tracer.add_sink(jsonl)
        try:
            return time_call(lambda: _workload(database))[1]
        finally:
            configure(False)
            tracer.clear_sinks()

    variants = (("off", run_off), ("on", run_on), ("on+jsonl", run_on_jsonl))

    def run():
        samples = {name: [] for name, __ in variants}
        _workload(database)  # warm the dataset caches outside timing
        for __ in range(_ROUNDS):  # interleaved: drift hits all variants
            for name, fn in variants:
                samples[name].append(fn())
        return {
            name: sum(times) / len(times) for name, times in samples.items()
        }

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    spans_recorded = sum(
        t["n_spans"] for t in ring.snapshot()
    )
    jsonl.close()

    off = means["off"]
    rows = [
        (
            name,
            f"{means[name] * 1000.0:.1f}",
            f"{means[name] / off:.3f}x" if off else "n/a",
        )
        for name, __ in variants
    ]
    text = (
        "== Tracing overhead: exploration workload, tracer off/on/on+jsonl ==\n"
        + format_table(("variant", "mean (ms)", "vs off"), rows)
        + f"\nrounds per variant: {_ROUNDS} (REPRO_OBS_BENCH_ROUNDS)"
        + f"\nscale factor: {_scale_factor()} (REPRO_OBS_BENCH_SF)"
        + f"\nspans recorded while enabled: {spans_recorded}"
        + f"\nacceptance: enabled within {(_RELATIVE_SLACK - 1) * 100:.0f}%"
        + f" of disabled (+{_ABSOLUTE_SLACK_S * 1000:.0f}ms noise allowance)"
    )
    report("obs_overhead", text)

    assert spans_recorded > 0, "enabled runs recorded no spans"
    budget = off * _RELATIVE_SLACK + _ABSOLUTE_SLACK_S
    assert means["on"] <= budget, (
        f"tracing overhead too high: on={means['on']:.3f}s vs "
        f"off={off:.3f}s (budget {budget:.3f}s)"
    )
    assert means["on+jsonl"] <= budget, (
        f"jsonl tracing overhead too high: {means['on+jsonl']:.3f}s vs "
        f"off={off:.3f}s (budget {budget:.3f}s)"
    )
