"""Serving-layer throughput bench (ISSUE 1: the concurrent exploration
service).

Drives N concurrent simulated users against ONE in-process server: each
user creates a session, reads maps and recommendations, applies
recommendations, fetches the history and closes.  Reports end-to-end
request throughput and p50/p95 latency, and verifies via ``/metrics`` that
the traffic was observed and the shared per-dataset cache amortised work
across users.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.bench import (
    Metric,
    bench_database,
    bench_recommender_config,
    format_table,
    latency_summary,
    report,
)
from repro.core.engine import SubDEx, SubDExConfig
from repro.server import ServerConfig, SubDExClient, build_server

N_USERS = 8
STEPS_PER_USER = 2  # recommendations applied after the opening step


def _run_load(n_users: int = N_USERS, steps_per_user: int = STEPS_PER_USER):
    database = bench_database("yelp")
    factory = lambda: SubDEx(  # noqa: E731
        database, SubDExConfig(recommender=bench_recommender_config())
    )
    server = build_server(
        {"yelp": factory},
        port=0,
        config=ServerConfig(max_sessions=n_users * 2),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    latencies: list[float] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_users)

    def timed(fn, *args, **kwargs):
        started = time.perf_counter()
        result = fn(*args, **kwargs)
        with lock:
            latencies.append(time.perf_counter() - started)
        return result

    def user(user_id: int) -> int:
        with SubDExClient(server.url) as client:
            barrier.wait()
            session = timed(client.create_session)
            timed(session.maps)
            for __ in range(steps_per_user):
                recommendations = timed(session.recommendations)
                if recommendations:
                    timed(session.apply_recommendation, 1)
            timed(session.history)
            timed(session.close)
        return user_id

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=n_users) as pool:
        for future in [pool.submit(user, u) for u in range(n_users)]:
            future.result()
    elapsed = time.perf_counter() - started

    with SubDExClient(server.url) as client:
        metrics = client.metrics()
    server.shutdown()
    server.server_close()
    return latencies, elapsed, metrics


def _report(latencies, elapsed, metrics) -> str:
    summary = latency_summary(latencies)
    throughput = len(latencies) / elapsed
    result_cache = metrics["caches"]["yelp"]["result"]
    rows = [
        ["concurrent users", float(N_USERS)],
        ["requests", float(len(latencies))],
        ["wall seconds", elapsed],
        ["throughput (req/s)", throughput],
        ["latency p50 (s)", summary["p50"]],
        ["latency p95 (s)", summary["p95"]],
        ["latency mean (s)", summary["mean"]],
        ["result-cache hit rate", result_cache["hit_rate"]],
    ]
    return (
        f"== Server throughput: {N_USERS} concurrent simulated users ==\n"
        + format_table(["quantity", "value"], rows, "{:.4f}")
    )


def test_server_throughput(benchmark):
    latencies, elapsed, metrics = benchmark.pedantic(
        _run_load, rounds=1, iterations=1
    )
    text = _report(latencies, elapsed, metrics)
    summary = latency_summary(latencies)
    report(
        "server_throughput",
        text,
        metrics={
            "throughput_rps": Metric(
                len(latencies) / elapsed, unit="req/s", higher_is_better=True
            ),
            "latency_p50_s": summary["p50"],
            "latency_p95_s": summary["p95"],
            "latency_mean_s": summary["mean"],
            "result_cache_hit_rate": Metric(
                metrics["caches"]["yelp"]["result"]["hit_rate"],
                unit="ratio", higher_is_better=True, portable=True,
            ),
        },
        config={"n_users": N_USERS, "steps_per_user": STEPS_PER_USER},
    )
    # /metrics saw the traffic…
    assert metrics["requests"]["total"] >= len(latencies)
    assert metrics["requests"]["by_endpoint"]["POST /sessions"]["count"] == N_USERS
    assert metrics["sessions"]["created"] == N_USERS
    # …and the shared cache amortised the identical opening steps
    assert metrics["caches"]["yelp"]["result"]["hits"] > 0
    assert len(latencies) / elapsed > 0


if __name__ == "__main__":
    results = _run_load()
    print(_report(*results))
