"""Serving-layer throughput bench (ISSUE 1: the concurrent exploration
service; ISSUE 6: the sharded cluster front).

Drives N concurrent simulated users against ONE in-process server: each
user creates a session, reads maps and recommendations, applies
recommendations, fetches the history and closes.  Reports end-to-end
request throughput and p50/p95 latency, and verifies via ``/metrics`` that
the traffic was observed and the shared per-dataset cache amortised work
across users.

The sharded variant (``--workers 1 2 4`` from the CLI, or the
``server_throughput_sharded`` pytest bench) repeats the same workload
against ``repro.cluster`` deployments with increasing worker counts and
reports per-count throughput, the workers=2 scaling ratio, and a
portable consistency metric asserting the sharded scatter/gather answers
are byte-identical with the single-process server's.
"""

from __future__ import annotations

import argparse
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.bench import (
    Metric,
    bench_database,
    bench_recommender_config,
    format_table,
    latency_summary,
    report,
)
from repro.core.engine import SubDEx, SubDExConfig
from repro.server import ServerConfig, SubDExClient, build_server

N_USERS = 8
STEPS_PER_USER = 2  # recommendations applied after the opening step


def _run_load(
    n_users: int = N_USERS,
    steps_per_user: int = STEPS_PER_USER,
    workers: int = 0,
):
    database = bench_database("yelp")
    factory = lambda: SubDEx(  # noqa: E731
        database, SubDExConfig(recommender=bench_recommender_config())
    )
    server = build_server(
        {"yelp": factory},
        port=0,
        config=ServerConfig(max_sessions=n_users * 2, workers=workers),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    latencies: list[float] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_users)

    def timed(fn, *args, **kwargs):
        started = time.perf_counter()
        result = fn(*args, **kwargs)
        with lock:
            latencies.append(time.perf_counter() - started)
        return result

    def user(user_id: int) -> int:
        with SubDExClient(server.url) as client:
            barrier.wait()
            session = timed(client.create_session)
            timed(session.maps)
            for __ in range(steps_per_user):
                recommendations = timed(session.recommendations)
                if recommendations:
                    timed(session.apply_recommendation, 1)
            timed(session.history)
            timed(session.close)
        return user_id

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=n_users) as pool:
        for future in [pool.submit(user, u) for u in range(n_users)]:
            future.result()
    elapsed = time.perf_counter() - started

    with SubDExClient(server.url) as client:
        metrics = client.metrics()
        # the consistency probe: a full scatter/gather scan whose maps
        # and group size must not depend on the deployment shape
        probe = client.cluster_maps()
    snapshot = {"maps": probe["maps"], "group_size": probe["group_size"]}
    if workers:
        server.graceful_shutdown(drain_seconds=10.0)
    else:
        server.shutdown()
        server.server_close()
    return latencies, elapsed, metrics, snapshot


def _report(latencies, elapsed, metrics) -> str:
    summary = latency_summary(latencies)
    throughput = len(latencies) / elapsed
    result_cache = metrics["caches"]["yelp"]["result"]
    rows = [
        ["concurrent users", float(N_USERS)],
        ["requests", float(len(latencies))],
        ["wall seconds", elapsed],
        ["throughput (req/s)", throughput],
        ["latency p50 (s)", summary["p50"]],
        ["latency p95 (s)", summary["p95"]],
        ["latency mean (s)", summary["mean"]],
        ["result-cache hit rate", result_cache["hit_rate"]],
    ]
    return (
        f"== Server throughput: {N_USERS} concurrent simulated users ==\n"
        + format_table(["quantity", "value"], rows, "{:.4f}")
    )


def test_server_throughput(benchmark):
    latencies, elapsed, metrics, __ = benchmark.pedantic(
        _run_load, rounds=1, iterations=1
    )
    text = _report(latencies, elapsed, metrics)
    summary = latency_summary(latencies)
    report(
        "server_throughput",
        text,
        metrics={
            "throughput_rps": Metric(
                len(latencies) / elapsed, unit="req/s", higher_is_better=True
            ),
            "latency_p50_s": summary["p50"],
            "latency_p95_s": summary["p95"],
            "latency_mean_s": summary["mean"],
            "result_cache_hit_rate": Metric(
                metrics["caches"]["yelp"]["result"]["hit_rate"],
                unit="ratio", higher_is_better=True, portable=True,
            ),
        },
        config={"n_users": N_USERS, "steps_per_user": STEPS_PER_USER},
    )
    # /metrics saw the traffic…
    assert metrics["requests"]["total"] >= len(latencies)
    assert metrics["requests"]["by_endpoint"]["POST /sessions"]["count"] == N_USERS
    assert metrics["sessions"]["created"] == N_USERS
    # …and the shared cache amortised the identical opening steps
    assert metrics["caches"]["yelp"]["result"]["hits"] > 0
    assert len(latencies) / elapsed > 0


def _worker_counts() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_WORKERS", "1,2,4")
    return [int(part) for part in raw.replace(" ", ",").split(",") if part]


def _run_sweep(worker_counts: list[int]):
    """The sharded sweep: single-process reference, then each worker count.

    Returns ``(reference_run, {workers: run})`` where each run is the
    ``_run_load`` tuple.  The reference (workers=0, the in-process scan
    path) defines the bytes every sharded deployment must reproduce.
    """
    reference = _run_load(workers=0)
    runs = {count: _run_load(workers=count) for count in worker_counts}
    return reference, runs


def _sweep_report(reference, runs) -> tuple[str, dict, dict]:
    __, ref_elapsed, __, ref_snapshot = reference
    rows = [["workers=0 (in-process)", len(reference[0]) / ref_elapsed, 1.0]]
    metrics: dict[str, object] = {}
    consistent = 1.0
    throughput = {}
    for count, (latencies, elapsed, __, snapshot) in sorted(runs.items()):
        rps = len(latencies) / elapsed
        throughput[count] = rps
        if snapshot != ref_snapshot:
            consistent = 0.0
        rows.append([f"workers={count}", rps, 1.0 if snapshot == ref_snapshot else 0.0])
        metrics[f"throughput_w{count}_rps"] = Metric(
            rps, unit="req/s", higher_is_better=True
        )
    if 1 in throughput and 2 in throughput:
        metrics["scaling_w2_vs_w1"] = Metric(
            throughput[2] / throughput[1],
            unit="x",
            higher_is_better=True,
            portable=False,  # 1-CPU baseline boxes cannot scale
        )
    metrics["sharded_consistency"] = Metric(
        consistent, unit="ratio", higher_is_better=True, portable=True
    )
    text = (
        f"== Sharded server throughput: {N_USERS} users x "
        f"workers {sorted(runs)} ==\n"
        + format_table(
            ["deployment", "throughput (req/s)", "consistent"],
            rows,
            "{:.4f}",
        )
    )
    config = {
        "n_users": N_USERS,
        "steps_per_user": STEPS_PER_USER,
        "workers": sorted(runs),
        "cpu_count": os.cpu_count(),
    }
    return text, metrics, config


def _check_sweep(metrics) -> None:
    # scatter/gather must reproduce the single-process bytes exactly
    assert metrics["sharded_consistency"].value == 1.0
    # acceptance: >=1.8x at --workers 2 on a machine that can actually
    # run two scans at once; single-CPU boxes report the ratio only
    scaling = metrics.get("scaling_w2_vs_w1")
    if scaling is not None and (os.cpu_count() or 1) >= 2:
        assert scaling.value >= 1.8, (
            f"workers=2 scaled only {scaling.value:.2f}x over workers=1"
        )


def test_server_throughput_sharded(benchmark):
    counts = _worker_counts()
    reference, runs = benchmark.pedantic(
        lambda: _run_sweep(counts), rounds=1, iterations=1
    )
    text, metrics, config = _sweep_report(reference, runs)
    report("server_throughput_sharded", text, metrics=metrics, config=config)
    _check_sweep(metrics)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="*",
        default=None,
        help="worker counts to sweep (e.g. --workers 1 2 4); "
        "omit for the single-process bench only",
    )
    arguments = parser.parse_args()
    if arguments.workers:
        swept_reference, swept = _run_sweep(arguments.workers)
        sweep_text, sweep_metrics, sweep_config = _sweep_report(
            swept_reference, swept
        )
        report(
            "server_throughput_sharded",
            sweep_text,
            metrics=sweep_metrics,
            config=sweep_config,
        )
        _check_sweep(sweep_metrics)
    else:
        latencies, elapsed, metrics, __ = _run_load()
        print(_report(latencies, elapsed, metrics))
