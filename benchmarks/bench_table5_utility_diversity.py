"""Table 5 — utility vs. diversity as the pruning-diversity factor l varies.

Fully-Automated paths of 7 steps (k = 3 maps per step) are generated with
l ∈ {1 (utility-only), 2, 3} plus a diversity-only configuration (l large
enough that the pool is every candidate map).  Reported per configuration,
as in the paper: the number of distinct grouping attributes shown, the
summed utility of all shown maps, and the average per-step diversity.

Paper shape: as l grows, #attributes and diversity increase while utility
falls — l = 3 balances both.
"""

from dataclasses import replace

from repro.bench import (
    Metric,
    bench_database,
    bench_recommender_config,
    format_table,
    report,
)
from repro.core.engine import SubDEx, SubDExConfig
from repro.core.generator import GeneratorConfig
from repro.core.modes import ExplorationPath, run_fully_automated
from repro.core.utility import UtilityConfig

_N_STEPS = 7
_CONFIGS: tuple[tuple[str, int], ...] = (
    ("Utility-Only (l=1)", 1),
    ("l = 2", 2),
    ("l = 3", 3),
    ("Diversity-Only", None),
)

#: Table 5, Yelp column (movielens in the paper is similar)
_PAPER_YELP = {
    "Utility-Only (l=1)": (6, 26.1, 0.03),
    "l = 2": (10, 23.4, 0.06),
    "l = 3": (15, 20.1, 0.09),
    "Diversity-Only": (19, 15.5, 0.11),
}


def _metrics(path: ExplorationPath) -> tuple[int, float, float]:
    attributes = set()
    utility = 0.0
    diversity = 0.0
    for step in path.steps:
        attributes.update(step.result.selected_attributes())
        utility += step.result.total_utility()
        diversity += step.result.diversity
    return len(attributes), utility, diversity / max(1, len(path.steps))


def _run_dataset(name: str) -> dict[str, tuple[int, float, float]]:
    database = bench_database(name)
    out = {}
    # attribute weights are switched off here: they rotate grouping
    # attributes at every l (our Eq.-1 extension), masking exactly the
    # l-driven attribute-spread effect this table isolates
    utility = UtilityConfig(use_attribute_weights=False)
    for label, l_factor in _CONFIGS:
        if l_factor is None:
            generator = replace(
                GeneratorConfig(), diversity_only=True, utility=utility
            )
        else:
            generator = replace(
                GeneratorConfig(),
                pruning_diversity_factor=l_factor,
                utility=utility,
            )
        config = SubDExConfig(
            generator=generator,
            recommender=bench_recommender_config(),
        )
        path = run_fully_automated(SubDEx(database, config).session(), _N_STEPS)
        out[label] = _metrics(path)
    return out


def test_table5_utility_vs_diversity(benchmark):
    measured = benchmark.pedantic(_run_dataset, args=("yelp",), rounds=1, iterations=1)
    rows = []
    for label, __ in _CONFIGS:
        attrs, utility, diversity = measured[label]
        p_attrs, p_utility, p_div = _PAPER_YELP[label]
        rows.append(
            [label, attrs, p_attrs, utility, p_utility, diversity, p_div]
        )
    text = (
        "== Table 5 (Yelp): utility / diversity vs l ==\n"
        + format_table(
            [
                "config",
                "attrs",
                "attrs(paper)",
                "utility",
                "utility(paper)",
                "diversity",
                "div(paper)",
            ],
            rows,
        )
        + "\nrobust shape: within-step diversity div(RM') grows with l "
        "(≈0.05 → ≈0.12 here vs the paper's 0.03 → 0.09).\n"
        "note: the paper's attribute-count spread (6 → 19) does not "
        "reproduce — our multi-step diversity machinery (min-aggregated "
        "global peculiarity) already rotates grouping attributes at l = 1, "
        "absorbing the effect the paper attributes to l; absolute utilities "
        "differ because our normalisation is absolute, the paper's min–max."
    )
    def _key(label: str) -> str:
        return (
            label.lower()
            .replace(" ", "")
            .replace("(l=1)", "")
            .replace("-", "_")
            .replace("=", "")
        )

    bench_metrics: dict[str, Metric] = {}
    for label, __ in _CONFIGS:
        attrs, utility, diversity = measured[label]
        key = _key(label)
        bench_metrics[f"{key}_attrs"] = Metric(
            float(attrs), unit="attrs", higher_is_better=None, portable=True
        )
        bench_metrics[f"{key}_diversity"] = Metric(
            diversity, unit="div", higher_is_better=None, portable=True
        )
    report(
        "table5_utility_diversity",
        text,
        metrics=bench_metrics,
        config={"dataset": "yelp", "n_steps": _N_STEPS},
    )

    diversity_by_label = {label: measured[label][2] for label, __ in _CONFIGS}
    # the l trade-off the formulation guarantees: larger pools ⇒ the GMM
    # can pick more mutually distant maps each step
    assert diversity_by_label["l = 3"] > diversity_by_label["Utility-Only (l=1)"]
    assert diversity_by_label["l = 2"] >= diversity_by_label["Utility-Only (l=1)"]
