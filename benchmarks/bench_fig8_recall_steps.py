"""Figure 8 — recall as a function of exploration steps (paper §5.2.1).

Subjects explore Movielens without a step limit (here: up to 12 steps);
per-mode recall (fraction of targets identified within the first s steps)
is reported per step.  Paper: Recommendation-Powered reaches the highest
recall at every step count, for both scenarios.
"""

import numpy as np

from repro.bench import Metric, bench_database, bench_recommender_config, bench_subjects, report
from repro.core.engine import SubDEx, SubDExConfig
from repro.core.modes import ExplorationMode
from repro.userstudy import (
    make_scenario1_task,
    recall_series_table,
    run_recall_vs_steps,
)

_MAX_STEPS = 10


def test_fig8_recall_vs_steps(benchmark):
    def run():
        # average over two task instances: a single instance can be
        # uniformly easy for every mode and mask the mode differences
        accumulated: dict[ExplorationMode, np.ndarray] = {}
        for instance, seed in enumerate((17, 18)):
            task = make_scenario1_task(bench_database("movielens"), seed=seed)
            engine = SubDEx(
                task.database,
                SubDExConfig(recommender=bench_recommender_config()),
            )
            series = run_recall_vs_steps(
                engine,
                task,
                max_steps=_MAX_STEPS,
                n_subjects=bench_subjects(),
                n_path_samples=2,
                seed=5 + instance,
            )
            for mode, values in series.items():
                accumulated[mode] = accumulated.get(
                    mode, np.zeros(_MAX_STEPS)
                ) + np.asarray(values)
        return {
            mode: list(values / 2) for mode, values in accumulated.items()
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "== Figure 8: recall vs # exploration steps (Movielens, Scenario I) ==\n"
        + recall_series_table(series)
        + "\npaper: RP dominates at every step count; recall is "
        "non-decreasing in steps for every mode."
    )
    report(
        "fig8_recall_steps",
        text,
        metrics={
            f"{mode.short.lower()}_final_recall": Metric(
                float(values[-1]), unit="recall",
                higher_is_better=None, portable=True,
            )
            for mode, values in series.items()
        },
        config={"max_steps": _MAX_STEPS, "dataset": "movielens"},
    )

    for mode, values in series.items():
        # recall is cumulative → non-decreasing
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:])), mode
    rp_final = series[ExplorationMode.RECOMMENDATION_POWERED][-1]
    ud_final = series[ExplorationMode.USER_DRIVEN][-1]
    assert rp_final >= ud_final - 1e-9
