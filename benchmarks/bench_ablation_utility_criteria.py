"""§5.2.3 "Utility criteria" ablation (text-only experiment in the paper).

Fully-Automated Scenario-I paths are generated with utility variants:
each single criterion alone, the average aggregation, and the full
max-of-4.  Paper finding: every single-criterion variant is inferior, and
avg is inferior to max.
"""

import numpy as np
from dataclasses import replace

from repro.bench import (
    Metric,
    bench_database,
    bench_recommender_config,
    bench_subjects,
    format_table,
    report,
)
from repro.core.engine import SubDEx, SubDExConfig
from repro.core.generator import GeneratorConfig
from repro.core.interestingness import Criterion
from repro.core.modes import run_fully_automated
from repro.core.utility import UtilityAggregation, UtilityConfig
from repro.userstudy import (
    SimulatedSubject,
    SubjectProfile,
    make_scenario1_task,
    simulate_subject_score,
)

_N_INSTANCES = 3

_VARIANTS: dict[str, UtilityConfig] = {
    "max-of-4 (SubDEx)": UtilityConfig(),
    "avg-of-4": UtilityConfig(aggregation=UtilityAggregation.AVG),
    "conciseness only": UtilityConfig(criteria=(Criterion.CONCISENESS,)),
    "agreement only": UtilityConfig(criteria=(Criterion.AGREEMENT,)),
    "pec_self only": UtilityConfig(criteria=(Criterion.PECULIARITY_SELF,)),
    "pec_global only": UtilityConfig(criteria=(Criterion.PECULIARITY_GLOBAL,)),
}


def _score_variant(utility: UtilityConfig) -> float:
    n_subjects = bench_subjects()
    means = []
    for instance in range(_N_INSTANCES):
        task = make_scenario1_task(bench_database("yelp"), seed=41 + instance)
        config = SubDExConfig(
            generator=replace(GeneratorConfig(), utility=utility),
            recommender=bench_recommender_config(),
        )
        path = run_fully_automated(
            SubDEx(task.database, config).session(), n_steps=7
        )
        scores = [
            simulate_subject_score(
                SimulatedSubject(
                    SubjectProfile("high", "high"), seed=9000 + 100 * instance + i
                ),
                task,
                path,
            )
            for i in range(n_subjects)
        ]
        means.append(float(np.mean(scores)))
    return float(np.mean(means))


def test_ablation_utility_criteria(benchmark):
    def run():
        return {name: _score_variant(cfg) for name, cfg in _VARIANTS.items()}

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = sorted(measured.items(), key=lambda kv: -kv[1])
    text = (
        "== §5.2.3 utility-criteria ablation "
        "(avg # identified irregular groups, Yelp FA paths) ==\n"
        + format_table(["utility variant", "score"], rows, "{:.2f}")
        + "\npaper: single-criterion variants and avg aggregation are "
        "inferior to max-of-4 (measured over both scenarios).\n"
        "note: on the pure anomaly-hunting scenario alone, peculiarity-only "
        "can beat the combination — planted all-1 blocks are *by "
        "construction* peculiarity signals; the combination's value is that "
        "it also serves agreement/conciseness-driven tasks (Scenario II), "
        "which a peculiarity-only utility ignores."
    )
    def _key(name: str) -> str:
        return (
            name.replace(" (SubDEx)", "")
            .replace("-", "_")
            .replace(" ", "_")
        )

    report(
        "ablation_utility_criteria",
        text,
        metrics={
            f"{_key(name)}_score": Metric(
                score, unit="score", higher_is_better=None, portable=True
            )
            for name, score in measured.items()
        },
        config={"dataset": "yelp", "n_instances": _N_INSTANCES},
    )

    full = measured["max-of-4 (SubDEx)"]
    # max-of-4 must beat every non-peculiarity single criterion ...
    for name in ("conciseness only", "agreement only", "pec_global only"):
        assert full >= measured[name] - 0.1, name
    # ... and must not lose to the average aggregation by a wide margin
    assert full >= measured["avg-of-4"] - 0.25
