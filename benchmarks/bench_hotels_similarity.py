"""Hotel Reviews — the paper's third dataset (§5.1).

The paper reports that Hotel Reviews "demonstrated similar trends to Yelp"
and omits its numbers to save space.  This bench runs the Table-6-style
utility-only vs diversity-only comparison on the hotels dataset and checks
the same trend holds (utility-only paths find more irregular groups).
"""

from dataclasses import replace

import numpy as np

from repro.bench import Metric, bench_scale, bench_subjects, format_table, report
from repro.core.engine import SubDEx, SubDExConfig
from repro.core.generator import GeneratorConfig
from repro.core.modes import run_fully_automated
from repro.core.recommend import RecommenderConfig
from repro.datasets import hotels
from repro.userstudy import (
    SimulatedSubject,
    SubjectProfile,
    make_scenario1_task,
    simulate_subject_score,
)

_CONFIGS = {"Utility-only": 1, "Diversity-only": None}


def _run() -> dict[str, float]:
    n_subjects = bench_subjects()
    out: dict[str, list[float]] = {k: [] for k in _CONFIGS}
    for instance in range(2):
        database = hotels(
            seed=2 + instance, scale_factor=max(bench_scale(), 0.1)
        )
        task = make_scenario1_task(database, seed=7 + instance)
        for label, l_factor in _CONFIGS.items():
            if l_factor is None:
                generator = replace(GeneratorConfig(), diversity_only=True)
            else:
                generator = replace(
                    GeneratorConfig(), pruning_diversity_factor=l_factor
                )
            config = SubDExConfig(
                generator=generator,
                recommender=RecommenderConfig(max_values_per_attribute=5),
            )
            engine = SubDEx(task.database, config)
            path = run_fully_automated(engine.session(), n_steps=7)
            scores = [
                simulate_subject_score(
                    SimulatedSubject(
                        SubjectProfile("high", "high"),
                        seed=500 * instance + i,
                    ),
                    task,
                    path,
                )
                for i in range(n_subjects)
            ]
            out[label].append(float(np.mean(scores)))
    return {k: float(np.mean(v)) for k, v in out.items()}


def test_hotels_shows_same_trend_as_yelp(benchmark):
    measured = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = (
        "== Hotel Reviews: utility-only vs diversity-only "
        "(the paper's 'similar trends to Yelp' claim) ==\n"
        + format_table(
            ["path type", "avg # identified irregular groups"],
            list(measured.items()),
            "{:.2f}",
        )
    )
    report(
        "hotels_similarity",
        text,
        metrics={
            "utility_only_score": Metric(
                measured["Utility-only"], unit="score",
                higher_is_better=None, portable=True,
            ),
            "diversity_only_score": Metric(
                measured["Diversity-only"], unit="score",
                higher_is_better=None, portable=True,
            ),
        },
        config={"dataset": "hotels", "n_subjects": bench_subjects()},
    )
    assert (
        measured["Utility-only"] >= measured["Diversity-only"] - 0.15
    )
