"""Anytime bench: the quality-vs-budget curve and the bounded-answer gate.

Drives one in-process server with budgeted recommendation requests and
measures the contract the anytime subsystem sells:

* a generous budget reproduces the unbudgeted answer exactly
  (``unbudgeted_equivalence`` must be 1.0);
* budgeted requests answer within ``budget + 250ms`` — the soft cut
  lands at a chunk boundary instead of overrunning
  (``within_budget_rate``);
* tighter budgets trade answer quality (sum of top-o utilities against
  the full run) for latency — the ``quality_ratio_b*`` curve;
* a partial answer's refinement token polls through to the full-quality
  result (``refinement_completed``).

The rates and ratios are portable (machine-independent) and gate CI via
``scripts/check_regression.py --only anytime --portable-only``.
"""

from __future__ import annotations

import threading
import time

from repro.bench import (
    Metric,
    bench_database,
    bench_recommender_config,
    format_table,
    latency_summary,
    report,
)
from repro.core.engine import SubDEx, SubDExConfig
from repro.server import ServerConfig, SubDExClient, build_server

BUDGETS_MS = (50, 150, 500)
PROBES_PER_BUDGET = 4
GATE_BUDGET_MS = 500
ALLOWANCE_SECONDS = 0.25
TOP_O = 5


def _factory():
    database = bench_database("yelp")
    return SubDEx(database, SubDExConfig(recommender=bench_recommender_config()))


def _numbers(recommendations) -> list[tuple[str, float]]:
    return [(r["description"], r["utility"]) for r in recommendations]


def _utility_sum(recommendations) -> float:
    return sum(r["utility"] for r in recommendations)


def _run():
    # a sky-high latency target pins the controller to FULL: this bench
    # isolates the budget axis (the rung controller has its own tests)
    config = ServerConfig(anytime_latency_target_ms=1e9)
    server = build_server({"yelp": _factory}, port=0, config=config)
    serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
    serve_thread.start()

    curve: dict[int, dict[str, float]] = {}
    latencies: list[float] = []
    try:
        with SubDExClient(server.url, timeout=60.0) as client:
            session = client.create_session(dataset="yelp")

            # the unbudgeted path serves the stored step answer; a generous
            # budget at the same (default) o must reproduce it exactly
            plain = session.recommendations()
            generous_default = session.recommend(budget_ms=600_000)
            equivalent = (
                generous_default["quality"]["complete"]
                and _numbers(generous_default["recommendations"])
                == _numbers(plain)
            )

            # the full-quality top-o is the oracle the curve compares against
            generous = session.recommend(o=TOP_O, budget_ms=600_000)
            assert generous["quality"]["complete"], "oracle run must finish"
            full_sum = _utility_sum(generous["recommendations"])

            for budget_ms in BUDGETS_MS:
                bound = budget_ms / 1000.0 + ALLOWANCE_SECONDS
                ratios: list[float] = []
                within = 0
                worst = 0.0
                for _ in range(PROBES_PER_BUDGET):
                    started = time.perf_counter()
                    payload = session.recommend(o=TOP_O, budget_ms=budget_ms)
                    elapsed = time.perf_counter() - started
                    latencies.append(elapsed)
                    worst = max(worst, elapsed)
                    if elapsed <= bound:
                        within += 1
                    ratios.append(
                        _utility_sum(payload["recommendations"]) / full_sum
                        if full_sum
                        else 1.0
                    )
                    # drain this probe's background refinement so it does
                    # not steal CPU from the next timed probe
                    if payload["refinement"] is not None:
                        session.wait_for_refinement(
                            payload["refinement"]["token"], timeout=120.0
                        )
                curve[budget_ms] = {
                    "quality_ratio": sum(ratios) / len(ratios),
                    "within_rate": within / PROBES_PER_BUDGET,
                    "worst_s": worst,
                }

            # a starved budget forces a partial; its token must refine
            # through to the full answer
            starved = session.recommend(o=TOP_O, budget_ms=1)
            if starved["refinement"] is None:
                refinement_completed = 1.0  # finished inside 1ms: nothing to do
            else:
                refined = session.wait_for_refinement(
                    starved["refinement"]["token"], timeout=120.0
                )
                refinement_completed = float(
                    refined["status"] == "done"
                    and refined["quality"]["complete"] is True
                )
            session.close()
    finally:
        server.graceful_shutdown()
        serve_thread.join(10.0)

    return {
        "curve": curve,
        "latencies": latencies,
        "equivalence": 1.0 if equivalent else 0.0,
        # the gated bound: every probe at the gate budget answered within
        # budget + allowance (tighter budgets stay informational — their
        # first chunk can dominate a tiny budget on a slow machine)
        "within_budget_rate": curve[GATE_BUDGET_MS]["within_rate"],
        "refinement_completed": refinement_completed,
    }


def _report_text(results: dict) -> str:
    rows = [
        [
            f"budget {budget_ms}ms",
            entry["quality_ratio"],
            entry["within_rate"],
            entry["worst_s"],
        ]
        for budget_ms, entry in sorted(results["curve"].items())
    ]
    summary = latency_summary(results["latencies"])
    return (
        f"== Anytime: quality vs budget over {PROBES_PER_BUDGET} probes/budget "
        f"(top-{TOP_O}, +{ALLOWANCE_SECONDS * 1000:.0f}ms allowance) ==\n"
        + format_table(
            ["budget", "quality ratio", "within rate", "worst (s)"],
            rows,
            "{:.4f}",
        )
        + f"\nunbudgeted equivalence: {results['equivalence']:.0f}"
        + f"\nrefinement completed:   {results['refinement_completed']:.0f}"
        + f"\nlatency p50/p95 (s):    {summary['p50']:.4f} / {summary['p95']:.4f}"
    )


def test_anytime_budget_curve(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = _report_text(results)
    summary = latency_summary(results["latencies"])
    metrics: dict[str, object] = {
        "within_budget_rate": Metric(
            results["within_budget_rate"],
            unit="ratio",
            higher_is_better=True,
            portable=True,
        ),
        "unbudgeted_equivalence": Metric(
            results["equivalence"],
            unit="ratio",
            higher_is_better=True,
            portable=True,
        ),
        "refinement_completed": Metric(
            results["refinement_completed"],
            unit="ratio",
            higher_is_better=True,
            portable=True,
        ),
        "latency_p95_s": summary["p95"],
    }
    for budget_ms, entry in sorted(results["curve"].items()):
        metrics[f"quality_ratio_b{budget_ms}"] = Metric(
            entry["quality_ratio"],
            unit="ratio",
            higher_is_better=None,  # informational: the shape of the curve
            portable=True,
        )
    report(
        "anytime",
        text,
        metrics=metrics,
        config={
            "budgets_ms": list(BUDGETS_MS),
            "probes_per_budget": PROBES_PER_BUDGET,
            "allowance_seconds": ALLOWANCE_SECONDS,
            "top_o": TOP_O,
        },
    )

    # the acceptance bar, asserted at bench time
    assert results["equivalence"] == 1.0
    assert results["refinement_completed"] == 1.0
    # the generous budget never overruns its bound
    assert results["curve"][GATE_BUDGET_MS]["within_rate"] == 1.0
    for budget_ms, entry in results["curve"].items():
        assert 0.0 <= entry["quality_ratio"] <= 1.0 + 1e-9, budget_ms


if __name__ == "__main__":
    print(_report_text(_run()))
