"""Ablation — pruning accuracy: do CI / MAB keep the true top-k×l maps?

The paper's pruning schemes claim to retain the highest-DW-utility maps
w.h.p.  We measure, over several rating groups, the overlap between each
pruned variant's k×l pool and the exact (no-pruning) pool, and whether the
exact top-1 map survives.
"""

import numpy as np

from repro.bench import Metric, bench_database, format_table, report
from repro.core.generator import GeneratorConfig, RMSetGenerator
from repro.core.pruning import PruningStrategy
from repro.core.utility import SeenMaps
from repro.model import RatingGroup, SelectionCriteria

_GROUPS = (
    SelectionCriteria.root(),
    SelectionCriteria.of(reviewer={"gender": "F"}),
    SelectionCriteria.of(reviewer={"age_group": "young"}),
    SelectionCriteria.of(item={"price_range": "$$"}),
)
_STRATEGIES = (
    PruningStrategy.CONFIDENCE_INTERVAL,
    PruningStrategy.MAB,
    PruningStrategy.COMBINED,
)


def _accuracy() -> dict[PruningStrategy, tuple[float, float]]:
    database = bench_database("yelp")
    exact_gen = RMSetGenerator(GeneratorConfig(pruning=PruningStrategy.NONE))
    out: dict[PruningStrategy, tuple[list[float], list[float]]] = {
        s: ([], []) for s in _STRATEGIES
    }
    for criteria in _GROUPS:
        group = RatingGroup(database, criteria)
        exact = exact_gen.generate(group, SeenMaps(database.dimensions))
        exact_specs = [rm.spec for rm in exact.pool]
        if not exact_specs:
            continue
        for strategy in _STRATEGIES:
            generator = RMSetGenerator(GeneratorConfig(pruning=strategy))
            pruned = generator.generate(group, SeenMaps(database.dimensions))
            pruned_specs = {rm.spec for rm in pruned.pool}
            overlap = len(set(exact_specs) & pruned_specs) / len(exact_specs)
            top1 = float(exact_specs[0] in pruned_specs)
            out[strategy][0].append(overlap)
            out[strategy][1].append(top1)
    return {
        s: (float(np.mean(ov)), float(np.mean(t1)))
        for s, (ov, t1) in out.items()
    }


def test_ablation_pruning_accuracy(benchmark):
    measured = benchmark.pedantic(_accuracy, rounds=1, iterations=1)
    rows = [
        [s.value, overlap, top1] for s, (overlap, top1) in measured.items()
    ]
    text = (
        "== Ablation: pruning accuracy vs exact top-k×l (Yelp) ==\n"
        + format_table(
            ["strategy", "pool overlap", "top-1 survival"], rows, "{:.2f}"
        )
        + "\nthe paper's w.h.p. guarantee: pruned pools should largely "
        "agree with the exact ranking, and the best map should survive."
    )
    report(
        "ablation_pruning_accuracy",
        text,
        metrics={
            f"{s.value}_pool_overlap": Metric(
                overlap, unit="ratio", higher_is_better=True, portable=True
            )
            for s, (overlap, __) in measured.items()
        },
        config={"dataset": "yelp", "n_groups": len(_GROUPS)},
    )
    for strategy, (overlap, top1) in measured.items():
        assert overlap >= 0.5, f"{strategy}: pool overlap {overlap:.2f}"
        assert top1 >= 0.75, f"{strategy}: top-1 survival {top1:.2f}"
