"""Table 6 — irregular groups found on utility-only vs diversity-only paths.

Fully-Automated Scenario-I paths are generated with l = 1 (utility-only)
and with a diversity-only pool; simulated subjects score both.  Paper:
utility-only wins for anomaly hunting (Movielens 1.4 vs 0.6, Yelp 1.3 vs
0.6) — high-utility maps are the ones that reveal irregular patterns.
"""

from dataclasses import replace

import numpy as np

from repro.bench import (
    Metric,
    bench_database,
    bench_recommender_config,
    bench_subjects,
    format_table,
    report,
)
from repro.core.engine import SubDEx, SubDExConfig
from repro.core.generator import GeneratorConfig
from repro.core.modes import run_fully_automated
from repro.userstudy import (
    SimulatedSubject,
    SubjectProfile,
    make_scenario1_task,
    simulate_subject_score,
)

_PAPER = {
    "movielens": {"Utility-only": 1.4, "Diversity-only": 0.6},
    "yelp": {"Utility-only": 1.3, "Diversity-only": 0.6},
}
_N_INSTANCES = 3
_CONFIGS = {"Utility-only": 1, "Diversity-only": None}


def _run_dataset(name: str) -> dict[str, float]:
    n_subjects = bench_subjects()
    out: dict[str, list[float]] = {k: [] for k in _CONFIGS}
    for instance in range(_N_INSTANCES):
        task = make_scenario1_task(bench_database(name), seed=23 + instance)
        for label, l_factor in _CONFIGS.items():
            if l_factor is None:
                generator = replace(GeneratorConfig(), diversity_only=True)
            else:
                generator = replace(
                    GeneratorConfig(), pruning_diversity_factor=l_factor
                )
            config = SubDExConfig(
                generator=generator,
                recommender=bench_recommender_config(),
            )
            engine = SubDEx(task.database, config)
            path = run_fully_automated(engine.session(), n_steps=7)
            scores = [
                simulate_subject_score(
                    SimulatedSubject(
                        SubjectProfile("high", "high"), seed=1000 * instance + i
                    ),
                    task,
                    path,
                )
                for i in range(n_subjects)
            ]
            out[label].append(float(np.mean(scores)))
    return {k: float(np.mean(v)) for k, v in out.items()}


def test_table6_utility_only_beats_diversity_only(benchmark):
    def run():
        return {name: _run_dataset(name) for name in ("movielens", "yelp")}

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name in ("movielens", "yelp"):
        for label in _CONFIGS:
            rows.append(
                [name, label, measured[name][label], _PAPER[name][label]]
            )
    text = (
        "== Table 6: avg # identified irregular groups, "
        "utility-only vs diversity-only FA paths ==\n"
        + format_table(["dataset", "path type", "measured", "paper"], rows)
        + "\nshape: utility-only ≥ diversity-only on both datasets."
    )
    report(
        "table6_utility_vs_diversity",
        text,
        metrics={
            f"{name}_{label.lower().replace('-', '_')}_score": Metric(
                measured[name][label], unit="score",
                higher_is_better=None, portable=True,
            )
            for name in ("movielens", "yelp")
            for label in _CONFIGS
        },
        config={"n_instances": _N_INSTANCES, "n_steps": 7},
    )
    for name in ("movielens", "yelp"):
        assert (
            measured[name]["Utility-only"]
            >= measured[name]["Diversity-only"] - 0.15
        )
