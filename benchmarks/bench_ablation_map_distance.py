"""Ablation — map-distance liftings (DESIGN.md §2 design choice).

The paper defines d(rm, rm') as "EMD between rating distributions" without
fixing how a *set* of subgroup distributions becomes one distribution.  We
compare the three liftings (pooled / profile / nested) on the attribute
diversity they induce along a Fully-Automated path, plus their cost.

Expected: PROFILE and NESTED surface at least as many distinct grouping
attributes as POOLED (which cannot tell two partitions of the same
distribution apart), with PROFILE far cheaper than NESTED.
"""

from dataclasses import replace

from repro.bench import (
    Metric,
    bench_database,
    bench_recommender_config,
    format_table,
    report,
    time_call,
)
from repro.core.distance import MapDistanceMethod
from repro.core.engine import SubDEx, SubDExConfig
from repro.core.generator import GeneratorConfig
from repro.core.modes import run_fully_automated

_N_STEPS = 5


def _run_method(method: MapDistanceMethod) -> tuple[int, float, float]:
    database = bench_database("yelp")
    config = SubDExConfig(
        generator=replace(GeneratorConfig(), distance_method=method),
        recommender=bench_recommender_config(),
    )
    engine = SubDEx(database, config)
    path, seconds = time_call(
        lambda: run_fully_automated(engine.session(), _N_STEPS)
    )
    attributes = set()
    diversity = 0.0
    for step in path.steps:
        attributes.update(step.result.selected_attributes())
        diversity += step.result.diversity
    return len(attributes), diversity / len(path.steps), seconds


def test_ablation_map_distance(benchmark):
    def run():
        return {m: _run_method(m) for m in MapDistanceMethod}

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [m.value, attrs, div, secs]
        for m, (attrs, div, secs) in measured.items()
    ]
    text = (
        "== Ablation: map-distance lifting "
        f"(Yelp, {_N_STEPS}-step FA path) ==\n"
        + format_table(
            ["method", "# distinct attributes", "avg diversity", "seconds"],
            rows,
        )
        + "\nPROFILE (default) distinguishes grouping attributes; POOLED "
        "cannot; NESTED is the exact reference but pays an LP per pair."
    )
    bench_metrics: dict[str, Metric | float] = {}
    for m, (attrs, div, secs) in measured.items():
        bench_metrics[f"{m.value}_seconds"] = secs
        bench_metrics[f"{m.value}_attrs"] = Metric(
            float(attrs), unit="attrs", higher_is_better=None, portable=True
        )
    report(
        "ablation_map_distance",
        text,
        metrics=bench_metrics,
        config={"dataset": "yelp", "n_steps": _N_STEPS},
    )

    pooled_attrs = measured[MapDistanceMethod.POOLED][0]
    profile_attrs = measured[MapDistanceMethod.PROFILE][0]
    assert profile_attrs >= pooled_attrs - 1
    # nested must be the most expensive lifting
    assert (
        measured[MapDistanceMethod.NESTED][2]
        >= measured[MapDistanceMethod.PROFILE][2] * 0.5
    )
