"""Figure 7 — the exploration-guidance user study (paper §5.2.1).

Simulated subjects (see DESIGN.md §2 for the substitution) perform both
scenarios on both datasets in their two assigned modes.  Reported per
treatment cell: the average number of identified irregular groups
(Scenario I, of 2) or extracted insights (Scenario II, of 5), plus the
paper's ANOVA checks (domain knowledge must not matter).

Paper bands — Scenario I: UD 0.6–0.8, RP 1.2–1.5, FA 0.7–0.9;
Scenario II: UD 2.2–2.4, RP 4.0–4.4, FA 3.1–3.4.  The headline ordering is
UD < RP and FA < RP regardless of expertise and domain knowledge.
"""

import numpy as np
import pytest

from repro.bench import Metric, bench_database, bench_recommender_config, bench_subjects, report
from repro.core.engine import SubDEx, SubDExConfig
from repro.core.modes import ExplorationMode
from repro.userstudy import (
    MODE_ASSIGNMENT,
    StudyConfig,
    format_guidance_table,
    make_scenario1_task,
    make_scenario2_task,
    run_guidance_study,
)

_N_INSTANCES = 3

_PAPER_BANDS = {
    # scenario: mode → (lo, hi) of the paper's cell means
    "I": {
        ExplorationMode.USER_DRIVEN: (0.6, 0.8),
        ExplorationMode.RECOMMENDATION_POWERED: (1.2, 1.5),
        ExplorationMode.FULLY_AUTOMATED: (0.7, 0.9),
    },
    "II": {
        ExplorationMode.USER_DRIVEN: (2.2, 2.4),
        ExplorationMode.RECOMMENDATION_POWERED: (4.0, 4.4),
        ExplorationMode.FULLY_AUTOMATED: (3.1, 3.4),
    },
}


def _instances(dataset: str, scenario: str):
    config = SubDExConfig(recommender=bench_recommender_config())
    out = []
    for i in range(_N_INSTANCES):
        if scenario == "I":
            task = make_scenario1_task(bench_database(dataset), seed=31 + i)
        else:
            task = make_scenario2_task(bench_database(dataset))
        out.append((SubDEx(task.database, config), task))
        if scenario == "II":
            break  # scenario II's ground truth is fixed per dataset
    return out


def _mode_means(result) -> dict[ExplorationMode, float]:
    sums: dict[ExplorationMode, list[float]] = {}
    for (cs, dk, mode), cell in result.scores.items():
        sums.setdefault(mode, []).extend(cell)
    return {mode: float(np.mean(cell)) for mode, cell in sums.items()}


@pytest.mark.parametrize(
    "dataset,scenario,n_steps",
    [("yelp", "I", 7), ("movielens", "II", 10)],
)
def test_fig7_guidance(benchmark, dataset, scenario, n_steps):
    def run():
        return run_guidance_study(
            _instances(dataset, scenario),
            scenario,
            StudyConfig(
                n_subjects_per_cell=bench_subjects(),
                n_path_samples=3,
                n_steps=n_steps,
                seed=3,
            ),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    means = _mode_means(result)
    bands = _PAPER_BANDS[scenario]
    lines = [format_guidance_table(result), "", "per-mode means vs paper bands:"]
    for mode, mean in means.items():
        lo, hi = bands[mode]
        lines.append(f"  {mode.short}: measured {mean:.2f}, paper {lo}–{hi}")
    report(
        f"fig7_guidance_{dataset}_scenario{scenario}",
        "\n".join(lines),
        metrics={
            f"{mode.short.lower()}_mean": Metric(
                mean, unit="score", higher_is_better=None, portable=True
            )
            for mode, mean in means.items()
        },
        config={
            "dataset": dataset,
            "scenario": scenario,
            "n_steps": n_steps,
            "n_subjects_per_cell": bench_subjects(),
        },
    )

    rp = means[ExplorationMode.RECOMMENDATION_POWERED]
    ud = means[ExplorationMode.USER_DRIVEN]
    fa = means[ExplorationMode.FULLY_AUTOMATED]
    # the paper's headline: guidance helps.  Scenario I separates the modes
    # cleanly; in Scenario II our simulated RP subject rides an already
    # near-optimal recommender, so RP ≈ FA and the RP-vs-UD gap is noisier
    # (see EXPERIMENTS.md) — the assertion is correspondingly tolerant.
    if scenario == "I":
        assert rp > ud, f"RP ({rp:.2f}) must beat UD ({ud:.2f})"
    else:
        assert rp >= ud - 0.6, f"RP ({rp:.2f}) vs UD ({ud:.2f})"
    assert rp >= fa - 0.6, f"RP ({rp:.2f}) vs FA ({fa:.2f})"
    # domain knowledge must not matter (ANOVA not significant)
    for key, anova in result.domain_knowledge_anova().items():
        assert not anova.significant, f"domain knowledge mattered for {key}"
