"""Candidate-count sweep — per-candidate amortized scoring cost.

Family batching turns candidate scoring from "one pipeline per candidate"
into "one kernel pass per family", so its win should *grow* with the
number of sibling candidates.  This sweep scores neighbourhoods of
``n ∈ {16, 64, 256, 1024}`` candidates — wide FILTER families over a
synthetic database whose attributes have hundreds of values — through the
per-candidate indexed path and the batched path, and reports the
amortized per-candidate cost of each.

The wide database is deliberately family-heavy (four 256-value single
-valued attributes): it isolates the per-candidate fixed overhead the
batch kernel removes, which the regular Yelp-shaped benches dilute with
residue candidates and preview materialisation.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Metric, format_table, report, time_call
from repro.core.engine import SubDEx, SubDExConfig
from repro.core.recommend import RecommenderConfig
from repro.core.utility import SeenMaps
from repro.db import Table
from repro.model.database import SubjectiveDatabase
from repro.model.groups import SelectionCriteria

_SWEEP = (16, 64, 256, 1024)


def _wide_db(
    seed: int = 0, n_values: int = 256, n_users: int = 6000,
    n_ratings: int = 48_000,
) -> SubjectiveDatabase:
    """Four single-valued user attributes × ``n_values`` values each."""
    rng = np.random.default_rng(seed)
    columns: dict[str, list] = {"user_id": list(range(n_users))}
    for a in range(4):
        columns[f"attr{a}"] = [
            f"v{rng.integers(n_values)}" for __ in range(n_users)
        ]
    users = Table.from_columns(columns, explorable={"user_id": False})
    n_items = 50
    items = Table.from_columns(
        {
            "item_id": list(range(n_items)),
            "kind": [f"k{rng.integers(8)}" for __ in range(n_items)],
        },
        explorable={"item_id": False},
    )
    ratings = Table.from_columns(
        {
            "user_id": rng.integers(0, n_users, n_ratings).tolist(),
            "item_id": rng.integers(0, n_items, n_ratings).tolist(),
            "overall": rng.integers(1, 6, n_ratings).tolist(),
        },
        explorable={"user_id": False, "item_id": False},
    )
    return SubjectiveDatabase(
        users, items, ratings, ("overall",), scale=5, name="wide"
    )


def test_candidate_count_sweep(benchmark):
    def run():
        database = _wide_db()

        def engine(batch: bool) -> SubDEx:
            return SubDEx(
                database,
                SubDExConfig(
                    use_index=True,
                    batch_scoring=batch,
                    recommender=RecommenderConfig(parallel=False),
                ),
            )

        unbatched, batched = engine(False), engine(True)
        operations = batched.recommender.candidate_operations(
            SelectionCriteria.root()
        )
        assert len(operations) >= _SWEEP[-1], len(operations)

        def seen(eng: SubDEx) -> SeenMaps:
            return SeenMaps(
                database.dimensions,
                n_attributes=len(database.grouping_attributes()),
            )

        rows = []
        outcomes = {}
        for n in _SWEEP:
            slice_ops = operations[:n]
            times = {}
            for label, eng in (("indexed", unbatched), ("batched", batched)):
                result, seconds = time_call(
                    lambda eng=eng: eng.recommender.recommend_anytime(
                        SelectionCriteria.root(),
                        seen(eng),
                        o=5,
                        candidates=list(slice_ops),
                    ),
                    repeats=1,
                )
                assert result.completeness.complete
                times[label] = seconds
            ratio = (
                times["indexed"] / times["batched"]
                if times["batched"]
                else float("inf")
            )
            outcomes[n] = (times["indexed"], times["batched"], ratio)
            rows.append(
                (
                    f"{n}",
                    f"{times['indexed'] * 1e3:.0f}",
                    f"{times['batched'] * 1e3:.0f}",
                    f"{times['indexed'] / n * 1e3:.3f}",
                    f"{times['batched'] / n * 1e3:.3f}",
                    f"{ratio:.2f}x",
                )
            )
        return rows, outcomes

    rows, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "== Candidate-count sweep: per-candidate amortized scoring cost ==\n"
        + format_table(
            (
                "candidates",
                "indexed (ms)",
                "batched (ms)",
                "indexed (ms/cand)",
                "batched (ms/cand)",
                "speedup",
            ),
            rows,
        )
        + "\nwide synthetic database: 4 single-valued attributes ×"
        " 256 values, 48k ratings."
    )
    metrics = {}
    for n, (indexed_s, batched_s, ratio) in outcomes.items():
        metrics[f"n{n}_indexed_ms_per_cand"] = Metric(
            indexed_s / n * 1e3, unit="ms"
        )
        metrics[f"n{n}_batched_ms_per_cand"] = Metric(
            batched_s / n * 1e3, unit="ms"
        )
        metrics[f"n{n}_speedup"] = Metric(
            ratio, unit="x", higher_is_better=True, portable=True
        )
    report(
        "batch_sweep",
        text,
        metrics=metrics,
        config={"sweep": list(_SWEEP)},
    )
    # the amortized batched cost must fall as families widen; at the
    # widest point batching must win outright
    widest = outcomes[_SWEEP[-1]]
    narrowest = outcomes[_SWEEP[0]]
    assert widest[1] / _SWEEP[-1] < narrowest[1] / _SWEEP[0], (
        "batched per-candidate cost did not amortize with family width"
    )
    assert widest[2] > 1.0, (
        f"batched slower than indexed at {_SWEEP[-1]} candidates"
    )
