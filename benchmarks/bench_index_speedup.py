"""Index speedup — naive scans vs the index layer vs family batching.

One recommendation step's neighbourhood scoring (Problem 2 at the root
selection) is timed on the Fig. 10 synthetic Yelp database at three scales,
in three engine configurations: the naive scan-everything oracle, the
per-candidate indexed path (``use_index`` on, ``batch_scoring`` off) and
the family-batched path (both on).  All variants run in the same process
and their answers are compared fingerprint-for-fingerprint — speedups are
only reported if the accelerated paths reproduced the naive oracle exactly.

Scales are multiples of ``REPRO_INDEX_BENCH_SF`` (default 1.0, the paper's
full synthetic size).  At full size the medium config must show the ≥3×
indexed speedup and the ≥8× batched speedup (ROADMAP target: 10×); at
reduced CI sizes (where fixed per-candidate statistical work dominates)
the bar is only that the accelerated paths are not slower.
"""

from __future__ import annotations

import os

from repro.bench import Metric, format_table, report, time_call
from repro.core.engine import SubDEx, SubDExConfig
from repro.datasets import yelp
from repro.index.verify import diff_recommendations

_SCALES = {"small": 0.25, "medium": 1.0, "large": 2.0}
_SPEEDUP_FLOOR = 3.0
_BATCH_SPEEDUP_FLOOR = 8.0


def _base_sf() -> float:
    return float(os.environ.get("REPRO_INDEX_BENCH_SF", "1.0"))


def test_index_speedup(benchmark):
    def run():
        rows = []
        outcomes = {}
        for name, multiplier in _SCALES.items():
            sf = multiplier * _base_sf()
            database = yelp(seed=0, scale_factor=sf)
            naive = SubDEx(database, SubDExConfig(use_index=False))
            indexed = SubDEx(
                database, SubDExConfig(use_index=True, batch_scoring=False)
            )
            batched = SubDEx(
                database, SubDExConfig(use_index=True, batch_scoring=True)
            )
            naive_result, naive_s = time_call(naive.recommend, repeats=1)
            indexed_result, indexed_s = time_call(indexed.recommend, repeats=1)
            batched_result, batched_s = time_call(batched.recommend, repeats=1)
            diffs = diff_recommendations(naive_result, indexed_result)
            batch_diffs = diff_recommendations(naive_result, batched_result)
            speedup = naive_s / indexed_s if indexed_s else float("inf")
            batch_speedup = naive_s / batched_s if batched_s else float("inf")
            outcomes[name] = (
                speedup, batch_speedup,
                naive_s, indexed_s, batched_s,
                diffs, batch_diffs,
            )
            stats = batched.index.stats()
            rows.append(
                (
                    name,
                    f"{database.n_ratings}",
                    f"{naive_s:.2f}",
                    f"{indexed_s:.2f}",
                    f"{batched_s:.2f}",
                    f"{speedup:.2f}x",
                    f"{batch_speedup:.2f}x",
                    "yes" if not (diffs or batch_diffs) else "NO",
                    f"{stats['candidates_cube']}/{stats['candidates_delta']}"
                    f"/{stats['candidates_direct']}",
                )
            )
        return rows, outcomes

    rows, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "== Index speedup: neighbourhood scoring, naive vs indexed vs"
        " batched ==\n"
        + format_table(
            (
                "config",
                "|R|",
                "naive (s)",
                "indexed (s)",
                "batched (s)",
                "indexed",
                "batched",
                "identical",
                "cube/delta/direct",
            ),
            rows,
        )
        + f"\nbase scale factor: {_base_sf()} (REPRO_INDEX_BENCH_SF)"
        + "\nidentical = indexed AND batched recommendations"
        " fingerprint-equal to the naive oracle in this same run."
    )
    metrics = {}
    for name, (
        speedup, batch_speedup, naive_s, indexed_s, batched_s, __, ___,
    ) in outcomes.items():
        metrics[f"{name}_naive_s"] = naive_s
        metrics[f"{name}_indexed_s"] = indexed_s
        metrics[f"{name}_batched_s"] = batched_s
        metrics[f"{name}_speedup"] = Metric(
            speedup, unit="x", higher_is_better=True, portable=True
        )
        metrics[f"{name}_batched_speedup"] = Metric(
            batch_speedup, unit="x", higher_is_better=True, portable=True
        )
    report(
        "index_speedup",
        text,
        metrics=metrics,
        config={"base_sf": _base_sf(), "scales": dict(_SCALES)},
    )

    for name, (
        __, ___, ____, _____, ______, diffs, batch_diffs,
    ) in outcomes.items():
        assert not diffs, f"{name}: indexed differs from naive: {diffs[:3]}"
        assert not batch_diffs, (
            f"{name}: batched differs from naive: {batch_diffs[:3]}"
        )
    speedup, batch_speedup, naive_s, indexed_s, batched_s, __, ___ = (
        outcomes["medium"]
    )
    # at any scale the accelerated paths must not lose to their fallback
    # (5% timer-noise margin)
    assert indexed_s <= naive_s * 1.05, (
        f"indexed slower than naive on medium: {indexed_s:.2f}s vs"
        f" {naive_s:.2f}s"
    )
    assert batched_s <= indexed_s * 1.05, (
        f"batched slower than indexed on medium: {batched_s:.2f}s vs"
        f" {indexed_s:.2f}s"
    )
    if _base_sf() >= 0.9:
        # full-size run: the headline claims
        assert speedup >= _SPEEDUP_FLOOR, (
            f"medium indexed speedup {speedup:.2f}x below {_SPEEDUP_FLOOR}x"
        )
        assert batch_speedup >= _BATCH_SPEEDUP_FLOOR, (
            f"medium batched speedup {batch_speedup:.2f}x below"
            f" {_BATCH_SPEEDUP_FLOOR}x"
        )
