"""Index speedup — naive scans vs the sufficient-statistic index layer.

One recommendation step's neighbourhood scoring (Problem 2 at the root
selection) is timed on the Fig. 10 synthetic Yelp database at three scales,
with ``use_index`` on and off.  Both variants run in the same process and
their answers are compared fingerprint-for-fingerprint — the speedup is
only reported if the indexed path reproduced the naive oracle exactly.

Scales are multiples of ``REPRO_INDEX_BENCH_SF`` (default 1.0, the paper's
full synthetic size).  At full size the medium config must show the ≥3×
speedup the index is built for; at reduced CI sizes (where fixed
per-candidate statistical work dominates both variants) the bar is only
that the indexed path is not slower.
"""

from __future__ import annotations

import os

from repro.bench import Metric, format_table, report, time_call
from repro.core.engine import SubDEx, SubDExConfig
from repro.datasets import yelp
from repro.index.verify import diff_recommendations

_SCALES = {"small": 0.25, "medium": 1.0, "large": 2.0}
_SPEEDUP_FLOOR = 3.0


def _base_sf() -> float:
    return float(os.environ.get("REPRO_INDEX_BENCH_SF", "1.0"))


def test_index_speedup(benchmark):
    def run():
        rows = []
        outcomes = {}
        for name, multiplier in _SCALES.items():
            sf = multiplier * _base_sf()
            database = yelp(seed=0, scale_factor=sf)
            fast = SubDEx(database, SubDExConfig(use_index=True))
            naive = SubDEx(database, SubDExConfig(use_index=False))
            naive_result, naive_s = time_call(naive.recommend, repeats=1)
            fast_result, fast_s = time_call(fast.recommend, repeats=1)
            diffs = diff_recommendations(naive_result, fast_result)
            speedup = naive_s / fast_s if fast_s else float("inf")
            outcomes[name] = (speedup, naive_s, fast_s, diffs)
            stats = fast.index.stats()
            rows.append(
                (
                    name,
                    f"{database.n_ratings}",
                    f"{naive_s:.2f}",
                    f"{fast_s:.2f}",
                    f"{speedup:.2f}x",
                    "yes" if not diffs else "NO",
                    f"{stats['candidates_cube']}/{stats['candidates_delta']}"
                    f"/{stats['candidates_direct']}",
                )
            )
        return rows, outcomes

    rows, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "== Index speedup: neighbourhood scoring, naive vs indexed ==\n"
        + format_table(
            (
                "config",
                "|R|",
                "naive (s)",
                "indexed (s)",
                "speedup",
                "identical",
                "cube/delta/direct",
            ),
            rows,
        )
        + f"\nbase scale factor: {_base_sf()} (REPRO_INDEX_BENCH_SF)"
        + "\nidentical = indexed recommendations fingerprint-equal to the"
        " naive oracle in this same run."
    )
    metrics = {}
    for name, (speedup, naive_s, fast_s, __) in outcomes.items():
        metrics[f"{name}_naive_s"] = naive_s
        metrics[f"{name}_indexed_s"] = fast_s
        metrics[f"{name}_speedup"] = Metric(
            speedup, unit="x", higher_is_better=True, portable=True
        )
    report(
        "index_speedup",
        text,
        metrics=metrics,
        config={"base_sf": _base_sf(), "scales": dict(_SCALES)},
    )

    for name, (speedup, naive_s, fast_s, diffs) in outcomes.items():
        assert not diffs, f"{name}: indexed differs from naive: {diffs[:3]}"
    speedup, naive_s, fast_s, __ = outcomes["medium"]
    # at any scale the index must not lose to naive (5% timer-noise margin)
    assert fast_s <= naive_s * 1.05, (
        f"indexed slower than naive on medium: {fast_s:.2f}s vs {naive_s:.2f}s"
    )
    if _base_sf() >= 0.9:
        # full-size run: the headline claim
        assert speedup >= _SPEEDUP_FLOOR, (
            f"medium speedup {speedup:.2f}x below {_SPEEDUP_FLOOR}x"
        )
