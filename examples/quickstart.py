"""Quickstart: rating maps and next-step recommendations in five minutes.

Run:  python examples/quickstart.py
"""

from repro import SelectionCriteria, SubDEx
from repro.datasets import movielens


def main() -> None:
    # a MovieLens-100K-like subjective database (scaled down for speed)
    database = movielens(seed=7, scale_factor=0.15)
    print(database)
    print()

    engine = SubDEx(database)

    # Problem 1: the k most useful & diverse rating maps for a selection
    criteria = SelectionCriteria.of(reviewer={"gender": "F"})
    result = engine.rating_maps(criteria)
    print(f"Rating maps for {criteria.describe()} "
          f"(diversity={result.diversity:.3f}):\n")
    for rating_map in result.selected:
        print(rating_map.render())
        print(f"  DW utility: {result.dw_utility(rating_map):.3f}\n")

    # Problem 2: the top-o next-step operations
    print("Recommended next steps:")
    for recommendation in engine.recommend(criteria):
        print(f"  {recommendation.describe()}")


if __name__ == "__main__":
    main()
