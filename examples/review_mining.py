"""Review-text mining: the paper's Yelp preprocessing pipeline end to end.

Synthesises review texts, extracts per-dimension ratings with the
phrase-window + sentiment procedure of §5.1 (the VADER-substitute), and
shows the recovered scores track the writers' intended opinions.

Run:  python examples/review_mining.py
"""

from repro.datasets import yelp
from repro.text import (
    DIMENSION_KEYWORDS,
    DimensionExtractor,
    ReviewGenerator,
    SentimentAnalyzer,
)


def main() -> None:
    dims = ("food", "service", "ambiance")
    generator = ReviewGenerator(dims, seed=5)
    extractor = DimensionExtractor({d: DIMENSION_KEYWORDS[d] for d in dims})

    print("Writer's intent  →  mined ratings")
    intents = [
        {"food": 5, "service": 1, "ambiance": 3},
        {"food": 2, "service": 4, "ambiance": 5},
        {"food": 1, "service": 1, "ambiance": 1},
    ]
    for intent in intents:
        review = generator.review(intent)
        mined = extractor.extract(review)
        print(f"\n  {review}")
        for d in dims:
            print(f"    {d}: intended {intent[d]}, mined {mined[d]}")

    analyzer = SentimentAnalyzer()
    print("\nSentiment scorer on raw phrases:")
    for phrase in (
        "the food was absolutely amazing!",
        "service was not good at all",
        "a truly terrible, filthy place",
    ):
        print(f"  {phrase!r}: {analyzer.score(phrase):+.2f}")

    # the same pipeline wired into the Yelp generator
    database = yelp(seed=5, scale_factor=0.002, via_text=True)
    print(f"\nDatabase built via the text pipeline: {database}")


if __name__ == "__main__":
    main()
