"""Personalised exploration from session logs (paper §6 future work).

Runs two automated sessions, logs them, mines a preference model from the
logs, and shows how the personalised Recommendation Builder re-ranks the
stock recommendations toward the user's demonstrated interests.

Run:  python examples/personalized_exploration.py
"""

from repro import SelectionCriteria, SubDEx, SubDExConfig
from repro.core.history import ExplorationLog
from repro.core.recommend import RecommenderConfig
from repro.core.utility import SeenMaps
from repro.datasets import yelp
from repro.extensions import PersonalizedRecommendationBuilder, PreferenceModel


def main() -> None:
    database = yelp(seed=13, scale_factor=0.03)
    engine = SubDEx(
        database,
        SubDExConfig(recommender=RecommenderConfig(max_values_per_attribute=5)),
    )

    # 1. accumulate exploration logs (here: two automated sessions)
    logs = []
    for run in range(2):
        path = engine.explore_automated(n_steps=4)
        logs.append(
            ExplorationLog.from_path(path, dataset=database.name, user="mary")
        )
    print(f"collected {len(logs)} session logs "
          f"({sum(len(l.steps) for l in logs)} steps)")

    # 2. mine Mary's preferences
    model = PreferenceModel.from_logs(logs)
    top_attrs = sorted(
        model.attribute_counts.items(), key=lambda kv: -kv[1]
    )[:3]
    print("most-viewed grouping attributes:",
          ", ".join(f"{a[1]} ({n}×)" for a, n in top_attrs))

    # 3. compare stock vs personalised recommendations
    criteria = SelectionCriteria.root()
    seen = SeenMaps(database.dimensions)
    stock = engine.recommender.recommend(criteria, seen, o=5)
    personalised = PersonalizedRecommendationBuilder(
        engine.recommender, model, alpha=0.6
    ).recommend(criteria, seen, o=5)

    print("\nstock recommendations:")
    for reco in stock:
        print(f"  {reco.describe()}")
    print("\npersonalised for mary:")
    for reco in personalised:
        print(f"  {reco.describe()}")


if __name__ == "__main__":
    main()
