"""Mary's three-step NYC restaurant exploration (paper Figure 1).

A social scientist examines reviewer ratings, drills into young reviewers,
then into young female reviewers — at each step SubDEx picks the most
useful and diverse rating maps and recommends next operations.

Run:  python examples/restaurant_exploration.py
"""

from repro import SelectionCriteria, SubDEx, SubDExConfig
from repro.core.recommend import RecommenderConfig
from repro.datasets import yelp


def show_step(record) -> None:
    print(f"--- Step {record.index}: {record.criteria.describe()} "
          f"({record.group_size} records) ---")
    for rating_map in record.result.selected:
        print(rating_map.render())
        print()
    for recommendation in record.recommendations:
        print(f"  suggestion: {recommendation.describe()}")
    print()


def main() -> None:
    database = yelp(seed=11, scale_factor=0.05)
    engine = SubDEx(
        database,
        SubDExConfig(recommender=RecommenderConfig(max_values_per_attribute=5)),
    )
    session = engine.session()

    # Step I — overall ratings of all reviewers (Figure 1, top)
    show_step(session.step(with_recommendations=True))

    # Step II — Mary, a young adult, dives into her own age group
    show_step(
        session.apply_criteria(
            SelectionCriteria.of(reviewer={"age_group": "young"}),
            with_recommendations=True,
        )
    )

    # Step III — deeper: young *female* reviewers
    show_step(
        session.apply_criteria(
            SelectionCriteria.of(reviewer={"age_group": "young", "gender": "F"}),
            with_recommendations=True,
        )
    )

    print(f"Dimensions shown so far: {session.seen.dimension_history()}")
    print(f"Dimension weights now: "
          f"{ {d: round(session.seen.weight(d), 2) for d in database.dimensions} }")


if __name__ == "__main__":
    main()
