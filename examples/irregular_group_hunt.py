"""Scenario I end to end: plant irregular groups, hunt them with SubDEx.

Injects one irregular reviewer group and one irregular item group (all
their scores on one dimension forced to 1), explores the database in
Recommendation-Powered mode with a simulated analyst, and reports which
groups were exposed and detected.

Run:  python examples/irregular_group_hunt.py
"""

from repro import SubDEx, SubDExConfig
from repro.core.modes import run_recommendation_powered
from repro.core.recommend import RecommenderConfig
from repro.datasets import yelp
from repro.userstudy import (
    SimulatedSubject,
    SubjectProfile,
    make_scenario1_task,
    simulate_subject_score,
)


def main() -> None:
    base = yelp(seed=21, scale_factor=0.03)
    task = make_scenario1_task(base, seed=4)
    print("Planted ground truth:")
    for group in task.targets:
        print(f"  {group.describe()}")
    print()

    engine = SubDEx(
        task.database,
        SubDExConfig(recommender=RecommenderConfig(max_values_per_attribute=5)),
    )
    analyst = SimulatedSubject(SubjectProfile("high", "high"), seed=42)
    path = run_recommendation_powered(
        engine.session(), analyst.choose_recommendation_powered, n_steps=7
    )

    print(f"Explored {len(path)} steps:")
    for step in path.steps:
        exposed = task.exposed_in_step(step)
        flag = f"  << exposes target(s) {sorted(exposed)}" if exposed else ""
        print(f"  step {step.index}: {step.criteria.describe()}{flag}")
    print()

    exposed_total = task.exposed_in_path(path)
    print(f"Targets exposed along the path: {sorted(exposed_total)} "
          f"of {list(range(task.max_score))}")
    scorer = SimulatedSubject(SubjectProfile("high", "high"), seed=7)
    print(f"A simulated subject identified "
          f"{simulate_subject_score(scorer, task, path)}/{task.max_score}")


if __name__ == "__main__":
    main()
