"""Fully-Automated exploration of MovieLens + insight verification.

Generates a fixed-length exploration path by applying the top-1
recommendation at every step (paper §3.3), then checks which of the
dataset's ground-truth insights the path exposed.

Run:  python examples/movie_trends.py
"""

from repro import SubDEx, SubDExConfig
from repro.core.recommend import RecommenderConfig
from repro.datasets import ground_truth_insights, movielens, verify_insight
from repro.userstudy import insight_exposed


def main() -> None:
    database = movielens(seed=3, scale_factor=0.15)
    engine = SubDEx(
        database,
        SubDExConfig(recommender=RecommenderConfig(max_values_per_attribute=5)),
    )

    path = engine.explore_automated(n_steps=7)
    print(path.describe())
    print()

    insights = ground_truth_insights("movielens")
    print("Ground-truth insights and whether the automated path exposed them:")
    for insight in insights:
        inside, outside = verify_insight(database, insight)
        exposed = any(
            insight_exposed(rating_map, insight)
            for rating_map in path.all_maps()
        )
        marker = "EXPOSED" if exposed else "missed"
        print(f"  [{marker:7}] {insight.describe()} "
              f"(group mean {inside:.2f} vs rest {outside:.2f})")


if __name__ == "__main__":
    main()
