"""Score your own exploration strategy on the SDE benchmark suite.

The paper calls for an SDE-specific benchmark (§1, §5); `repro.bench`
provides one.  This example generates a graded task suite over the
Yelp-like dataset and scores two explorers on it: the built-in
Fully-Automated mode and a trivial custom strategy (always drill into the
lowest-rated subgroup on screen).

Run:  python examples/benchmark_your_explorer.py
"""

from repro import SubDEx, SubDExConfig
from repro.bench import generate_suite
from repro.core.modes import run_user_driven
from repro.core.recommend import RecommenderConfig
from repro.datasets import yelp
from repro.userstudy import drill_into_subgroup, suspicious_subgroup


def lowest_subgroup_strategy(session, candidates):
    """A hand-rolled explorer: chase the worst-looking subgroup on screen."""
    if session.steps:
        hit = suspicious_subgroup(
            session.steps[-1].result.selected, threshold=5.0, min_support=5
        )
        if hit is not None:
            operation = drill_into_subgroup(session, *hit)
            if operation is not None:
                return operation
    return candidates[0] if candidates else None


def main() -> None:
    database = yelp(seed=19, scale_factor=0.03)
    suite = generate_suite(
        database, n_anomaly_tasks=2, n_insight_tasks=1, seed=4
    )
    print(suite.describe())
    config = SubDExConfig(
        recommender=RecommenderConfig(max_values_per_attribute=5)
    )

    def fully_automated(bench_task) -> float:
        engine = SubDEx(bench_task.task.database, config)
        path = engine.explore_automated(bench_task.step_budget)
        exposed = bench_task.task.exposed_in_path(path)
        return len(exposed) / bench_task.task.max_score

    def custom(bench_task) -> float:
        engine = SubDEx(bench_task.task.database, config)
        path = run_user_driven(
            engine.session(), lowest_subgroup_strategy, bench_task.step_budget
        )
        exposed = bench_task.task.exposed_in_path(path)
        return len(exposed) / bench_task.task.max_score

    print("\nFully-Automated:", suite.score_explorer(fully_automated))
    print("drill-the-worst:", suite.score_explorer(custom))


if __name__ == "__main__":
    main()
