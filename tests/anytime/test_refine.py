"""RefinementStore: bounded background jobs behind poll tokens."""

from __future__ import annotations

import threading
import time

import pytest

from repro.anytime import RefinementLostError, RefinementStore


def _wait(store: RefinementStore, token: str, timeout: float = 5.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        payload = store.poll(token)
        if payload["status"] in ("done", "failed"):
            return payload
        time.sleep(0.005)
    raise AssertionError(f"refinement {token} never finished")


def test_submit_poll_lifecycle():
    store = RefinementStore()
    store.submit("tok-a", lambda: {"answer": 42})
    payload = _wait(store, "tok-a")
    assert payload["status"] == "done"
    assert payload["token"] == "tok-a"
    assert payload["answer"] == 42  # job result merges into the poll payload
    counters = store.counters()
    assert counters["submitted"] == 1
    assert counters["completed"] == 1
    assert counters["failed"] == 0
    assert len(store) == 1


def test_poll_racing_submission_sees_pending():
    """The job is registered before its thread starts: no lost-token race."""
    store = RefinementStore()
    release = threading.Event()

    def job():
        release.wait(5.0)
        return {"ok": True}

    store.submit("tok-b", job)
    assert store.poll("tok-b")["status"] in ("pending", "running")
    release.set()
    assert _wait(store, "tok-b")["ok"] is True


def test_failure_is_captured_not_raised():
    store = RefinementStore()

    def job():
        raise ValueError("boom")

    store.submit("tok-c", job)
    payload = _wait(store, "tok-c")
    assert payload["status"] == "failed"
    assert "ValueError: boom" in payload["error"]
    assert store.counters()["failed"] == 1


def test_unknown_token_is_typed_loss():
    store = RefinementStore()
    with pytest.raises(RefinementLostError):
        store.poll("never-minted")
    assert store.counters()["lost_polls"] == 1


def test_finished_jobs_expire_after_ttl():
    now = [0.0]
    store = RefinementStore(ttl_seconds=10.0, clock=lambda: now[0])
    store.submit("tok-d", lambda: {"n": 1})
    _wait(store, "tok-d")
    now[0] = 5.0
    assert store.poll("tok-d")["status"] == "done"  # still within TTL
    now[0] = 11.0
    with pytest.raises(RefinementLostError):
        store.poll("tok-d")
    counters = store.counters()
    assert counters["expired"] == 1
    assert counters["lost_polls"] == 1
    assert len(store) == 0


def test_capacity_evicts_oldest_finished_first():
    now = [0.0]
    store = RefinementStore(capacity=3, ttl_seconds=10**6, clock=lambda: now[0])
    release = threading.Event()
    store.submit("old-done", lambda: {})
    _wait(store, "old-done")
    now[0] = 1.0
    store.submit("new-done", lambda: {})
    _wait(store, "new-done")
    now[0] = 2.0
    store.submit("in-flight", lambda: release.wait(5.0) and {} or {})
    # the store is at capacity; the next submit evicts the oldest *finished*
    # job, never the one still running
    now[0] = 3.0
    store.submit("fresh", lambda: {})
    with pytest.raises(RefinementLostError):
        store.poll("old-done")
    assert store.poll("new-done")["status"] == "done"
    assert store.poll("in-flight")["status"] in ("pending", "running")
    assert store.counters()["evicted"] == 1
    release.set()
    _wait(store, "in-flight")


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        RefinementStore(capacity=0)
