"""The anytime serving surface: budgets, envelopes, refinement, degrade-not-shed."""

from __future__ import annotations

import contextlib

import pytest

from repro.resilience.faults import FaultPlan
from repro.resilience.gate import Priority
from repro.server import ServerError


def _numbers(recommendations) -> list[tuple[str, float]]:
    return [(r["description"], r["utility"]) for r in recommendations]


# -- the off switch: no budget, no pressure -> the pre-anytime path ----------

def test_plain_request_payload_is_unchanged(make_server, no_retry_client):
    server = make_server()
    client = no_retry_client(server.url)
    session = client.create_session()
    payload = client.request(
        "GET", f"/sessions/{session.id}/recommendations"
    )
    # server_ms is client-side timing, not part of the wire payload
    assert set(payload) - {"server_ms"} == {"session_id", "recommendations"}
    assert payload["recommendations"]
    for entry in payload["recommendations"]:
        assert "quality" not in entry


def test_anytime_disabled_ignores_pressure(make_server, no_retry_client):
    server = make_server(anytime_enabled=False, max_inflight=64)
    client = no_retry_client(server.url)
    session = client.create_session()
    payload = client.request(
        "GET", f"/sessions/{session.id}/recommendations"
    )
    assert set(payload) - {"server_ms"} == {"session_id", "recommendations"}


# -- budgeted envelopes -------------------------------------------------------

def test_generous_budget_returns_complete_envelope(make_server, no_retry_client):
    server = make_server()
    client = no_retry_client(server.url)
    session = client.create_session()
    plain = session.recommendations()
    payload = session.recommend(budget_ms=60_000)
    assert payload["degraded"] is False
    assert payload["refinement"] is None
    quality = payload["quality"]
    assert quality["rung"] == "full"
    assert quality["complete"] is True
    assert quality["budget_ms"] == 60_000
    assert quality["budget_cut"] is False
    assert _numbers(payload["recommendations"]) == _numbers(plain)


def test_forced_cut_yields_partial_then_refines(make_server, no_retry_client):
    """Satellite 2: FaultPlan forces a deterministic budget expiry."""
    plan = FaultPlan(budget_cut_phases={"anytime.recommend": 1})
    server = make_server(fault_plan=plan)
    client = no_retry_client(server.url)
    session = client.create_session()
    full = session.recommendations()
    payload = session.recommend(budget_ms=60_000)
    quality = payload["quality"]
    assert payload["degraded"] is True
    assert quality["complete"] is False
    assert quality["budget_cut"] is True
    assert quality["snapshots"] == 1
    assert 0 < quality["candidates_scanned"] < quality["candidates_total"]
    assert plan.counters()["anytime.recommend"]["budget_cuts"] >= 1

    refinement = payload["refinement"]
    assert refinement is not None and refinement["token"]
    assert refinement["href"].endswith(refinement["token"])
    refined = session.wait_for_refinement(refinement["token"], timeout=30.0)
    assert refined["status"] == "done"
    assert refined["quality"]["complete"] is True
    assert _numbers(refined["recommendations"]) == _numbers(full)


def test_budget_versus_deadline_smaller_wins(make_server, no_retry_client):
    """Satellite 1 end-to-end: the hard deadline binds a bigger budget..."""
    server = make_server()
    client = no_retry_client(server.url)
    session = client.create_session()
    with pytest.raises(ServerError) as excinfo:
        session.recommend(budget_ms=60_000, deadline_ms=1)
    assert excinfo.value.status == 504
    assert excinfo.value.code == "deadline_exceeded"
    # ...and a small budget under a big deadline soft-cuts instead of 504ing
    payload = session.recommend(budget_ms=1, deadline_ms=60_000)
    assert payload["quality"]["complete"] is False
    assert payload["quality"]["budget_cut"] is True
    assert payload["refinement"] is not None


# -- overload: degrade through the ladder, never shed NORMAL reads -----------

def test_overload_serves_cached_instead_of_503(make_server, no_retry_client):
    server = make_server(max_inflight=2, soft_inflight=1)
    client = no_retry_client(server.url)
    session = client.create_session()
    session.recommendations()  # warm: the stored step is the cache source
    with contextlib.ExitStack() as stack:
        for _ in range(2):  # occupy the gate to its hard limit
            stack.enter_context(server.gate.admit(Priority.CRITICAL))
        # a non-degradable write is still shed...
        with pytest.raises(ServerError) as excinfo:
            client.create_session()
        assert excinfo.value.status == 503
        # ...but recommendation reads ride the ladder down to CACHED
        payload = session.recommend(budget_ms=60_000)
        assert payload["degraded"] is True
        assert payload["quality"]["rung"] == "cached"
        assert payload["quality"]["stale"] is True
        assert payload["recommendations"]  # the stored step's answer
        # even without a budget: pressure alone engages the anytime path
        unbudgeted = session.recommend()
        assert unbudgeted["quality"]["rung"] == "cached"
    gate = server.gate.counters()
    assert gate["degraded_overflow"] >= 1 or gate["inflight"] == 0


# -- protocol edges -----------------------------------------------------------

@pytest.mark.parametrize("raw", ["0", "-3", "nope", "2.5"])
def test_invalid_budget_is_rejected(make_server, no_retry_client, raw):
    server = make_server()
    client = no_retry_client(server.url)
    session = client.create_session()
    with pytest.raises(ServerError) as excinfo:
        client.request(
            "GET",
            f"/sessions/{session.id}/recommendations",
            query={"budget_ms": raw},
        )
    assert excinfo.value.status == 400
    assert excinfo.value.code == "invalid_request"


def test_unknown_refinement_token_is_410(make_server, no_retry_client):
    server = make_server()
    client = no_retry_client(server.url)
    session = client.create_session()
    with pytest.raises(ServerError) as excinfo:
        session.refine("0" * 32)
    assert excinfo.value.status == 410
    assert excinfo.value.code == "refinement_lost"


# -- observability ------------------------------------------------------------

def test_anytime_metrics_are_exposed(make_server, no_retry_client):
    plan = FaultPlan(budget_cut_phases={"anytime.recommend": 1})
    server = make_server(fault_plan=plan)
    client = no_retry_client(server.url)
    session = client.create_session()
    payload = session.recommend(budget_ms=60_000)
    session.wait_for_refinement(payload["refinement"]["token"])

    snapshot = client.metrics()["resilience"]
    anytime = snapshot["anytime"]
    assert anytime["rung_requests"].get("full") == 1
    assert anytime["partials"] == 1
    assert anytime["forced_cuts"] == 1
    assert snapshot["refinements"]["submitted"] == 1
    assert snapshot["refinements"]["completed"] == 1

    text = client.request(
        "GET", "/metrics", query={"format": "prometheus"}
    )["text"]
    assert 'subdex_anytime_requests_total{rung="full"}' in text
    assert "subdex_anytime_events_total" in text
    assert "subdex_anytime_latency_ewma_ms" in text
    assert "subdex_anytime_refinements_total" in text
