"""The quality ladder and the load-signal → rung controller."""

from __future__ import annotations

import contextlib

import pytest

from repro.anytime import AnytimeController, QualityLadder, QualityRung
from repro.resilience.gate import AdmissionGate, Priority


# -- rungs and plans ---------------------------------------------------------

def test_rung_labels_round_trip():
    for rung in QualityRung:
        assert QualityRung.from_label(rung.label) is rung
    with pytest.raises(ValueError):
        QualityRung.from_label("bogus")


def test_ladder_covers_every_rung():
    ladder = QualityLadder()
    assert ladder.rungs() == tuple(QualityRung)
    for rung in QualityRung:
        assert ladder.plan(rung).rung is rung


def test_plans_are_monotonically_cheaper():
    """Each rung spends no more candidates than the one above it."""
    ladder = QualityLadder()

    def spend(plan):
        if plan.use_cached:
            return 0
        cap = plan.candidate_cap if plan.candidate_cap is not None else 10**9
        return cap // plan.sample_stride

    spends = [spend(ladder.plan(rung)) for rung in QualityRung]
    assert spends == sorted(spends, reverse=True)
    assert ladder.plan(QualityRung.CACHED).use_cached is True
    assert ladder.plan(QualityRung.FULL).candidate_cap is None


def test_ladder_validates_caps():
    with pytest.raises(ValueError):
        QualityLadder(reduced_pool_cap=0)
    with pytest.raises(ValueError):
        QualityLadder(sample_stride=0)


# -- controller --------------------------------------------------------------

def test_unloaded_controller_selects_full():
    assert AnytimeController().select_rung() is QualityRung.FULL


def test_occupancy_steps_down_the_ladder():
    gate = AdmissionGate(hard_limit=4, soft_limit=2)
    controller = AnytimeController(gate=gate)
    with contextlib.ExitStack() as stack:
        for _ in range(3):  # past soft, below hard
            stack.enter_context(gate.admit(Priority.CRITICAL))
        assert controller.select_rung() is QualityRung.CI_ONLY
        stack.enter_context(gate.admit(Priority.CRITICAL))  # at hard
        assert controller.select_rung() is QualityRung.REDUCED_POOL
    assert controller.select_rung() is QualityRung.FULL  # pressure cleared


def test_overflow_admission_selects_cached():
    """Inflight past the hard limit = a degradable overflow in progress."""
    gate = AdmissionGate(hard_limit=2, soft_limit=1)
    controller = AnytimeController(gate=gate)
    with contextlib.ExitStack() as stack:
        for _ in range(2):
            stack.enter_context(gate.admit(Priority.CRITICAL))
        stack.enter_context(gate.admit(Priority.NORMAL, degradable=True))
        assert gate.counters()["inflight"] == 3
        assert controller.select_rung() is QualityRung.CACHED


def test_explicit_overload_flag_selects_cached():
    assert AnytimeController().select_rung(overloaded=True) is QualityRung.CACHED


def test_open_breaker_forces_cached():
    controller = AnytimeController(breaker_states=lambda: ["closed", "open"])
    assert controller.select_rung() is QualityRung.CACHED
    healthy = AnytimeController(breaker_states=lambda: ["closed", "half_open"])
    assert healthy.select_rung() is QualityRung.FULL


def test_slow_latency_ewma_costs_one_rung():
    controller = AnytimeController(latency_target_ms=100.0)
    controller.observe_latency(0.5)  # 500ms > 100ms target
    assert controller.latency_ewma_ms == pytest.approx(500.0)
    assert controller.select_rung() is QualityRung.CI_ONLY
    # EWMA decays back under the target -> full quality again
    for _ in range(40):
        controller.observe_latency(0.01)
    assert controller.select_rung() is QualityRung.FULL


def test_signals_accumulate_and_clamp():
    gate = AdmissionGate(hard_limit=2, soft_limit=1)
    controller = AnytimeController(gate=gate, latency_target_ms=1.0)
    controller.observe_latency(1.0)
    with contextlib.ExitStack() as stack:
        for _ in range(2):
            stack.enter_context(gate.admit(Priority.CRITICAL))
        # at-hard (+2) + slow EWMA (+1) = SAMPLED, clamped within the ladder
        assert controller.select_rung() is QualityRung.SAMPLED


def test_controller_counters_accumulate():
    controller = AnytimeController()
    controller.record(QualityRung.FULL, partial=False, snapshots=3)
    controller.record(QualityRung.SAMPLED, partial=True, snapshots=1, forced_cut=True)
    controller.record(QualityRung.CACHED, partial=True)
    counters = controller.counters()
    assert counters["rung_requests"] == {"full": 1, "sampled": 1, "cached": 1}
    assert counters["partials"] == 2
    assert counters["snapshots"] == 4
    assert counters["forced_cuts"] == 1
    assert counters["cache_serves"] == 1


def test_invalid_ewma_alpha_rejected():
    with pytest.raises(ValueError):
        AnytimeController(ewma_alpha=0.0)
