"""Progressive (anytime) recommendation semantics against the full oracle.

Satellite 4: for every ladder rung the returned RM-set is a subset of
the full-run oracle universe with a completeness descriptor that tells
the truth — across databases with missing values and empty groups.
"""

from __future__ import annotations

import time

import pytest

from repro import SubDEx, SubDExConfig
from repro.anytime import QualityLadder, QualityRung, budget_deadline
from repro.core.recommend import RecommenderConfig

EVERYTHING = 10**6  # an o larger than any candidate universe here


def _engine(db) -> SubDEx:
    return SubDEx(
        db,
        SubDExConfig(recommender=RecommenderConfig(max_values_per_attribute=3)),
    )


def _keys(scored) -> list[tuple[str, float]]:
    return [(s.describe(), s.utility) for s in scored]


def _targets(scored) -> set[str]:
    return {s.operation.target.describe() for s in scored}


def _check_invariants(completeness) -> None:
    assert 0 <= completeness.candidates_scored <= completeness.candidates_scanned
    assert completeness.candidates_scanned <= completeness.candidates_total
    assert 0.0 <= completeness.fraction_scanned <= 1.0
    assert 0.0 < completeness.pruning_confidence <= 1.0
    assert completeness.complete == (
        completeness.candidates_scanned == completeness.candidates_total
        and not completeness.budget_cut
    )


# -- unbudgeted equivalence ---------------------------------------------------

def test_unbudgeted_run_matches_plain_recommendations(tiny_engine):
    session = tiny_engine.session()
    session.step(with_recommendations=False)
    plain = session.recommendations()
    result = session.recommendations_anytime()
    assert not result.is_partial
    assert result.completeness.rung is QualityRung.FULL
    assert result.completeness.complete
    assert not result.completeness.budget_cut
    assert _keys(result.recommendations) == _keys(plain)
    _check_invariants(result.completeness)


def test_unbudgeted_run_matches_stored_step_recommendations(tiny_engine):
    """Refinement jobs rely on this: a full recompute == the stored answer."""
    session = tiny_engine.session()
    record = session.step(with_recommendations=True)
    result = session.recommendations_anytime()
    assert result.completeness.complete
    assert _keys(result.recommendations) == _keys(record.recommendations)


# -- budget cuts --------------------------------------------------------------

def test_forced_cut_yields_honest_partial(tiny_engine):
    session = tiny_engine.session()
    session.step()
    full = session.recommendations_anytime()
    cut = session.recommendations_anytime(force_cut_after=1)
    assert cut.is_partial
    assert cut.completeness.budget_cut
    assert cut.completeness.snapshots == 1
    assert 0 < cut.completeness.candidates_scanned
    assert cut.completeness.candidates_scanned < cut.completeness.candidates_total
    assert cut.completeness.candidates_total == full.completeness.candidates_total
    assert _targets(cut.recommendations) <= _targets(full.recommendations)
    _check_invariants(cut.completeness)


def test_cut_before_any_work_returns_empty_partial(tiny_engine):
    session = tiny_engine.session()
    session.step()
    result = session.recommendations_anytime(force_cut_after=0)
    assert result.is_partial
    assert result.completeness.budget_cut
    assert result.completeness.candidates_scanned == 0
    assert result.completeness.snapshots == 0
    assert len(result) == 0
    _check_invariants(result.completeness)


def test_expired_budget_cuts_at_first_boundary(tiny_engine):
    session = tiny_engine.session()
    session.step()
    budget = budget_deadline(1)
    time.sleep(0.005)  # the soft budget is already spent when the loop starts
    result = session.recommendations_anytime(budget=budget)
    assert result.is_partial
    assert result.completeness.budget_cut
    assert result.completeness.candidates_scanned == 0


def test_snapshots_stream_best_so_far(tiny_engine):
    session = tiny_engine.session()
    session.step()
    seen: list[list] = []
    result = session.recommender.recommend_anytime(
        session.criteria,
        session.seen,
        current_group=session.group,
        on_snapshot=lambda ranked: seen.append(list(ranked)),
    )
    assert len(seen) == result.completeness.snapshots >= 1
    # snapshot sizes only ever grow, and the last one is the final answer
    sizes = [len(snapshot) for snapshot in seen]
    assert sizes == sorted(sizes)
    assert _keys(seen[-1]) == _keys(result.recommendations)


# -- satellite 4: every rung stays inside the full-run oracle ----------------

@pytest.mark.parametrize("missing", [0.0, 0.3])
def test_every_rung_is_subset_of_oracle(db_factory, missing):
    engine = _engine(db_factory(seed=3, missing=missing, name=f"m{missing}"))
    session = engine.session()
    session.step()
    oracle = session.recommendations(o=EVERYTHING)
    universe = _targets(oracle)
    assert universe  # the oracle itself found candidates
    ladder = QualityLadder()
    for rung in QualityRung:
        plan = ladder.plan(rung)
        if plan.use_cached:
            continue
        result = session.recommendations_anytime(plan=plan, o=EVERYTHING)
        _check_invariants(result.completeness)
        assert result.completeness.rung is rung
        assert _targets(result.recommendations) <= universe, rung
        if plan.candidate_cap is not None:
            assert result.completeness.candidates_scanned <= plan.candidate_cap
        if rung is QualityRung.FULL:
            assert result.completeness.complete
            assert _keys(result.recommendations) == _keys(oracle)


def test_cached_rung_scores_nothing(tiny_engine):
    session = tiny_engine.session()
    session.step()
    plan = QualityLadder().plan(QualityRung.CACHED)
    result = session.recommendations_anytime(plan=plan)
    assert result.completeness.candidates_scanned == 0
    assert len(result) == 0
    assert result.is_partial


def test_sparse_database_still_answers(db_factory):
    """Missing values and empty groups never crash the anytime path."""
    engine = _engine(db_factory(seed=9, missing=0.6, name="sparse"))
    session = engine.session()
    session.step()
    result = session.recommendations_anytime()
    _check_invariants(result.completeness)
    assert result.completeness.complete
