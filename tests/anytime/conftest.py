"""Fixtures for the anytime suite: engines, servers, synthetic databases."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import SubDEx, SubDExConfig, SubjectiveDatabase
from repro.core.recommend import RecommenderConfig
from repro.db import Table
from repro.server import ServerConfig, SubDExClient, build_server
from repro.server.client import RetryPolicy


def make_db(
    seed: int = 0,
    n_users: int = 50,
    n_items: int = 20,
    n_ratings: int = 700,
    missing: float = 0.0,
    name: str = "synthetic",
) -> SubjectiveDatabase:
    """A deterministic database; ``missing`` drops values and rating scores."""
    rng = np.random.default_rng(seed)

    def drop(value):
        return None if missing and rng.random() < missing else value

    users = Table.from_columns(
        {
            "user_id": list(range(n_users)),
            "gender": [drop(str(rng.choice(["M", "F"]))) for __ in range(n_users)],
            "age_group": [
                drop(str(rng.choice(["young", "adult", "senior"])))
                for __ in range(n_users)
            ],
        },
        explorable={"user_id": False},
    )
    items = Table.from_columns(
        {
            "item_id": list(range(n_items)),
            "city": [
                drop(str(rng.choice(["NYC", "Austin", "Detroit"])))
                for __ in range(n_items)
            ],
            "cuisine": [
                frozenset()
                if missing and rng.random() < missing
                else frozenset(
                    rng.choice(
                        ["Pizza", "Sushi", "Tacos"],
                        size=int(rng.integers(1, 3)),
                        replace=False,
                    )
                )
                for __ in range(n_items)
            ],
        },
        explorable={"item_id": False},
    )
    overall = rng.integers(1, 6, n_ratings).astype(float)
    food = rng.integers(1, 6, n_ratings).astype(float)
    if missing:
        overall[rng.random(n_ratings) < missing / 2] = np.nan
    ratings = Table.from_columns(
        {
            "user_id": rng.integers(0, n_users, n_ratings).tolist(),
            "item_id": rng.integers(0, n_items, n_ratings).tolist(),
            "overall": overall.tolist(),
            "food": food.tolist(),
        },
        explorable={"user_id": False, "item_id": False},
    )
    return SubjectiveDatabase(
        users, items, ratings, ("overall", "food"), scale=5, name=name
    )


@pytest.fixture(scope="session")
def db_factory():
    return make_db


@pytest.fixture
def tiny_engine(tiny_db) -> SubDEx:
    return SubDEx(
        tiny_db,
        SubDExConfig(recommender=RecommenderConfig(max_values_per_attribute=3)),
    )


@pytest.fixture
def make_server(tiny_db):
    """Factory for live servers (``build(fault_plan=..., **config_kwargs)``)."""
    servers = []

    def default_factories():
        return {
            "tiny": lambda: SubDEx(
                tiny_db,
                SubDExConfig(
                    recommender=RecommenderConfig(max_values_per_attribute=3)
                ),
            )
        }

    def build(fault_plan=None, factories=None, **config_kwargs):
        instance = build_server(
            factories if factories is not None else default_factories(),
            port=0,
            config=ServerConfig(**config_kwargs),
            fault_plan=fault_plan,
        )
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        servers.append(instance)
        return instance

    yield build
    for instance in servers:
        try:
            instance.shutdown()
            instance.server_close()
        except OSError:
            pass


@pytest.fixture
def no_retry_client():
    clients = []

    def connect(url: str) -> SubDExClient:
        client = SubDExClient(url, retry=RetryPolicy(max_attempts=1))
        clients.append(client)
        return client

    yield connect
    for client in clients:
        client.close()
