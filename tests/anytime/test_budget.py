"""Budget parsing and the one precedence rule: the smaller limit wins."""

from __future__ import annotations

import pytest

from repro.anytime import budget_deadline, effective_deadline, parse_budget_ms
from repro.resilience.deadline import Deadline
from repro.resilience.faults import FaultPlan


# -- parsing -----------------------------------------------------------------

def test_parse_accepts_ints_and_strings():
    assert parse_budget_ms(None) is None
    assert parse_budget_ms(250) == 250
    assert parse_budget_ms("250") == 250


@pytest.mark.parametrize("raw", [0, -5, "0", "nope", 2.5, True])
def test_parse_rejects_garbage(raw):
    with pytest.raises(ValueError):
        parse_budget_ms(raw)


def test_budget_deadline_construction():
    assert budget_deadline(None) is None
    deadline = budget_deadline(500)
    assert deadline is not None
    assert deadline.budget_seconds == pytest.approx(0.5)


# -- precedence --------------------------------------------------------------

def test_effective_deadline_smaller_wins():
    clock = lambda: 0.0  # noqa: E731 - frozen clock makes remaining exact
    short = Deadline(0.1, clock=clock)
    long = Deadline(10.0, clock=clock)
    assert effective_deadline(None, None) is None
    assert effective_deadline(short, None) is short
    assert effective_deadline(None, long) is long
    # header deadline smaller than budget -> the deadline binds
    assert effective_deadline(short, long) is short
    # budget smaller than header deadline -> the budget binds
    assert effective_deadline(long, short) is short


# -- deterministic budget-expiry injection (FaultPlan) -----------------------

def test_fault_plan_budget_cut_site():
    plan = FaultPlan(budget_cut_phases={"anytime.recommend": 2})
    assert plan.budget_cut("anytime.recommend") == 2
    assert plan.budget_cut("anytime.recommend") == 2
    assert plan.budget_cut("elsewhere") is None
    counters = plan.counters()
    assert counters["anytime.recommend"]["budget_cuts"] == 2
    assert "elsewhere" not in counters


def test_fault_plan_budget_cut_zero_is_valid():
    """Phase 0 = cut before any work: the degenerate partial result."""
    plan = FaultPlan(budget_cut_phases={"anytime.recommend": 0})
    assert plan.budget_cut("anytime.recommend") == 0


def test_fault_plan_rejects_negative_cut():
    with pytest.raises(ValueError):
        FaultPlan(budget_cut_phases={"anytime.recommend": -1})
