"""End-to-end schema validation of real benchmark BENCH_*.json output.

Runs three fast benchmarks as subprocesses at tiny scales (the same path
``scripts/bench_all.py`` takes) and validates every emitted JSON file
against the schema — the benches' *own* metric wiring is what's under
test, not the schema validator.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.perf import load_results_dir, validate_bench_result
from repro.perf.benchjson import BENCH_FILE_PREFIX

REPO = Path(__file__).resolve().parents[2]

#: name reported by the bench -> its file (fast ones only; the full
#: suite's schema coverage is scripts/bench_all.py's job)
FAST_BENCHES = {
    "ablation_sharing": "bench_ablation_sharing.py",
    "ablation_sampling": "bench_ablation_sampling.py",
    "caching_interactivity": "bench_caching_interactivity.py",
}


@pytest.fixture(scope="module")
def bench_results(tmp_path_factory):
    results_dir = tmp_path_factory.mktemp("bench_json")
    env = dict(
        os.environ,
        REPRO_BENCH_RESULTS=str(results_dir),
        REPRO_BENCH_SCALE="0.05",
        REPRO_BENCH_SUBJECTS="2",
        PYTHONPATH=str(REPO / "src"),
    )
    for filename in FAST_BENCHES.values():
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(REPO / "benchmarks" / filename),
                "-q",
                "-p",
                "no:cacheprovider",
            ],
            cwd=REPO,
            env=env,
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, (
            f"{filename} failed:\n{completed.stdout}\n{completed.stderr}"
        )
    return results_dir


def test_every_bench_emits_json_and_txt(bench_results):
    for name in FAST_BENCHES:
        assert (bench_results / f"{BENCH_FILE_PREFIX}{name}.json").is_file()
        assert (bench_results / f"{name}.txt").is_file()


def test_emitted_json_is_schema_valid(bench_results):
    for name in FAST_BENCHES:
        path = bench_results / f"{BENCH_FILE_PREFIX}{name}.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert validate_bench_result(payload) == [], path.name
        assert payload["name"] == name
        assert payload["metrics"], "no metrics recorded"


def test_loader_round_trip(bench_results):
    results, problems = load_results_dir(bench_results)
    assert problems == {}
    assert set(results) == set(FAST_BENCHES)
    for result in results.values():
        # every metric must carry a concrete direction or be explicitly
        # informational, and portable flags must be booleans
        for key, metric in result.metrics.items():
            assert metric.higher_is_better in (True, False, None), key
            assert isinstance(metric.portable, bool), key


def test_portable_metrics_present_for_gating(bench_results):
    """Each fast bench must expose >=1 portable gated metric for CI."""
    results, __ = load_results_dir(bench_results)
    for name, result in results.items():
        gated = [
            m
            for m in result.metrics.values()
            if m.portable and m.higher_is_better is not None
        ]
        assert gated, f"{name} has no machine-independent gated metric"
