"""Tests for the SDE benchmark-suite generator."""

import pytest

from repro.bench.sde_benchmark import (
    BenchmarkSuite,
    BenchmarkTask,
    anomaly_visibility,
    generate_suite,
)
from repro.datasets import yelp
from repro.userstudy.tasks import ScenarioIITask, ScenarioITask


@pytest.fixture(scope="module")
def database():
    return yelp(seed=8, scale_factor=0.02)


@pytest.fixture(scope="module")
def suite(database):
    return generate_suite(database, n_anomaly_tasks=2, n_insight_tasks=1, seed=3)


class TestGenerateSuite:
    def test_task_counts(self, suite):
        assert len(suite.by_kind("anomaly")) == 2
        assert len(suite.by_kind("insight")) == 1

    def test_task_types(self, suite):
        for task in suite.tasks:
            if task.kind == "anomaly":
                assert isinstance(task.task, ScenarioITask)
                assert task.step_budget == 7
            else:
                assert isinstance(task.task, ScenarioIITask)
                assert task.step_budget == 10

    def test_difficulty_grades_valid(self, suite):
        assert all(
            t.difficulty in ("easy", "medium", "hard") for t in suite.tasks
        )

    def test_signals_non_negative(self, suite):
        assert all(t.signal >= 0 for t in suite.tasks)

    def test_deterministic(self, database):
        a = generate_suite(database, n_anomaly_tasks=1, seed=5)
        b = generate_suite(database, n_anomaly_tasks=1, seed=5)
        assert a.tasks[0].signal == b.tasks[0].signal
        assert a.tasks[0].task.targets[0].pairs == b.tasks[0].task.targets[0].pairs

    def test_metadata_records_summary(self, suite, database):
        assert suite.metadata["summary"]["n_items"] == len(database.items)

    def test_describe(self, suite):
        text = suite.describe()
        assert "anomaly" in text and "insight" in text


class TestAnomalyVisibility:
    def test_positive_for_planted_tasks(self, suite):
        for task in suite.by_kind("anomaly"):
            assert anomaly_visibility(task.task) >= 0

    def test_diluted_instances_less_visible(self, database):
        from repro.datasets import inject_irregular_groups

        diluted_db, diluted = inject_irregular_groups(
            database, seed=4, max_slice_fraction=0.2, max_record_fraction=0.04
        )
        glaring_db, glaring = inject_irregular_groups(
            database, seed=4, max_slice_fraction=1.0
        )
        diluted_vis = anomaly_visibility(
            ScenarioITask(diluted_db, tuple(diluted))
        )
        glaring_vis = anomaly_visibility(
            ScenarioITask(glaring_db, tuple(glaring))
        )
        assert diluted_vis <= glaring_vis + 0.15


class TestScoring:
    def test_score_explorer_means(self, suite):
        scores = suite.score_explorer(lambda task: 0.5)
        assert scores["overall"] == pytest.approx(0.5)

    def test_score_validates_range(self, suite):
        with pytest.raises(ValueError):
            suite.score_explorer(lambda task: 1.5)

    def test_per_difficulty_keys(self, suite):
        scores = suite.score_explorer(lambda task: 1.0)
        for task in suite.tasks:
            assert task.difficulty in scores

    def test_empty_suite(self):
        suite = BenchmarkSuite("x")
        assert suite.score_explorer(lambda t: 1.0) == {}
