"""Tests for the benchmark harness and shared workloads."""

import math

import pytest

from repro.bench import (
    Sweep,
    Timer,
    bench_database,
    format_series,
    format_table,
    paper_vs_measured,
    report,
    restrict_attribute_count,
    restrict_value_count,
    time_call,
)
from repro.db.column import CategoricalColumn
from repro.model import Side


class TestTimer:
    def test_accumulates_samples(self):
        timer = Timer()
        for __ in range(3):
            with timer:
                pass
        assert len(timer.samples) == 3
        assert timer.total >= 0
        assert timer.mean >= 0

    def test_empty_mean_nan(self):
        assert math.isnan(Timer().mean)

    def test_time_call_returns_result(self):
        result, seconds = time_call(lambda: 42, repeats=2)
        assert result == 42 and seconds >= 0

    def test_time_call_validates_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: 1, repeats=0)


class TestSweep:
    def test_record_and_series(self):
        sweep = Sweep("x")
        sweep.record("a", 1, 0.5)
        sweep.record("a", 2, 0.7)
        sweep.record("b", 1, 0.1)
        assert sweep.series("a") == [0.5, 0.7]
        assert math.isnan(sweep.series("b")[1])

    def test_format_contains_points(self):
        sweep = Sweep("k")
        sweep.record("v", 3, 1.0)
        assert "k" in sweep.format() and "3" in sweep.format()


class TestFormatting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text

    def test_format_series(self):
        text = format_series("p", [1, 2], {"v": {1: 0.1, 2: 0.2}})
        assert "0.1000" in text

    def test_paper_vs_measured_merges_keys(self):
        text = paper_vs_measured(
            "T", {"x": 1.0}, {"x": 1.1, "extra": 2.0}, note="n"
        )
        assert "extra" in text and "note: n" in text

    def test_report_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
        path = report("unit", "hello")
        assert (tmp_path / "unit.txt").read_text() == "hello\n"
        assert str(tmp_path) in path


class TestWorkloads:
    def test_bench_database_cached(self):
        assert bench_database("yelp") is bench_database("yelp")

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            bench_database("nope")

    def test_restrict_attribute_count(self):
        db = restrict_attribute_count(bench_database("yelp"), 5, seed=1)
        assert len(db.grouping_attributes()) == 5

    def test_restrict_value_count_caps_categoricals(self):
        db = restrict_value_count(bench_database("yelp"), 4)
        for side in (Side.REVIEWER, Side.ITEM):
            for attr in db.explorable_attributes(side):
                column = db.entity_table(side).column(attr)
                if isinstance(column, CategoricalColumn):
                    assert db.catalog(side).domain(attr).cardinality <= 4
