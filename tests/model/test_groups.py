"""Tests for repro.model.groups (criteria + rating groups)."""

import pytest

from repro.exceptions import OperationError
from repro.model import AVPair, RatingGroup, SelectionCriteria, Side


class TestSelectionCriteria:
    def test_root_is_empty(self):
        assert len(SelectionCriteria.root()) == 0
        assert SelectionCriteria.root().describe() == "⟨entire database⟩"

    def test_of_constructor(self):
        c = SelectionCriteria.of(reviewer={"gender": "F"}, item={"city": "NYC"})
        assert AVPair(Side.REVIEWER, "gender", "F") in c
        assert AVPair(Side.ITEM, "city", "NYC") in c
        assert len(c) == 2

    def test_conflicting_values_rejected(self):
        with pytest.raises(OperationError):
            SelectionCriteria(
                [
                    AVPair(Side.REVIEWER, "gender", "F"),
                    AVPair(Side.REVIEWER, "gender", "M"),
                ]
            )

    def test_equality_and_hash(self):
        a = SelectionCriteria.of(reviewer={"gender": "F"})
        b = SelectionCriteria.of(reviewer={"gender": "F"})
        assert a == b and hash(a) == hash(b)

    def test_with_pair_adds(self):
        c = SelectionCriteria.root().with_pair(AVPair(Side.ITEM, "city", "NYC"))
        assert len(c) == 1

    def test_with_pair_replaces_value(self):
        c = SelectionCriteria.of(item={"city": "NYC"})
        c2 = c.with_pair(AVPair(Side.ITEM, "city", "Austin"))
        assert c2.side_pairs(Side.ITEM) == {"city": "Austin"}
        assert len(c2) == 1

    def test_without_pair(self):
        pair = AVPair(Side.ITEM, "city", "NYC")
        c = SelectionCriteria([pair])
        assert len(c.without_pair(pair)) == 0
        # removing an absent pair is a no-op
        assert c.without_pair(AVPair(Side.ITEM, "city", "LA")) == c

    def test_same_attribute_different_sides_allowed(self):
        c = SelectionCriteria(
            [
                AVPair(Side.REVIEWER, "state", "NY"),
                AVPair(Side.ITEM, "state", "TX"),
            ]
        )
        assert len(c) == 2

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ({"gender": "F"}, {"gender": "F"}, 0),
            ({"gender": "F"}, {}, 1),
            ({}, {"gender": "F"}, 1),
            ({"gender": "F"}, {"gender": "M"}, 1),  # change counts once
            ({"gender": "F"}, {"gender": "M", "age": "young"}, 2),
        ],
    )
    def test_edit_distance(self, a, b, expected):
        ca = SelectionCriteria.of(reviewer=a)
        cb = SelectionCriteria.of(reviewer=b)
        assert ca.edit_distance(cb) == expected
        assert cb.edit_distance(ca) == expected

    def test_predicate_per_side(self, tiny_db):
        c = SelectionCriteria.of(reviewer={"gender": "F"}, item={"city": "NYC"})
        reviewer_mask = tiny_db.reviewers.mask(c.predicate(Side.REVIEWER))
        genders = [
            tiny_db.reviewers.row(i)["gender"]
            for i in range(len(tiny_db.reviewers))
            if reviewer_mask[i]
        ]
        assert genders and all(g == "F" for g in genders)


class TestRatingGroup:
    def test_root_group_covers_everything(self, tiny_db):
        group = RatingGroup(tiny_db, SelectionCriteria.root())
        assert len(group) == tiny_db.n_ratings
        assert group.n_reviewers == len(tiny_db.reviewers)

    def test_filtered_group_consistent(self, tiny_db):
        criteria = SelectionCriteria.of(reviewer={"gender": "F"})
        group = RatingGroup(tiny_db, criteria)
        assert 0 < len(group) < tiny_db.n_ratings
        # every record's reviewer is F
        rows = group.rows
        aligned = tiny_db.aligned_grouping(Side.REVIEWER, "gender")
        labels = [aligned.labels[c] for c in aligned.codes[rows]]
        assert all(label == "F" for label in labels)

    def test_joint_criteria_intersects(self, tiny_db):
        both = RatingGroup(
            tiny_db,
            SelectionCriteria.of(reviewer={"gender": "F"}, item={"city": "NYC"}),
        )
        only_reviewer = RatingGroup(
            tiny_db, SelectionCriteria.of(reviewer={"gender": "F"})
        )
        assert len(both) <= len(only_reviewer)

    def test_multivalued_item_filter(self, tiny_db):
        group = RatingGroup(tiny_db, SelectionCriteria.of(item={"cuisine": "Pizza"}))
        assert len(group) > 0

    def test_empty_group(self, tiny_db):
        group = RatingGroup(
            tiny_db, SelectionCriteria.of(reviewer={"gender": "NOPE"})
        )
        assert group.is_empty

    def test_scores_subset(self, tiny_db):
        criteria = SelectionCriteria.of(reviewer={"gender": "F"})
        group = RatingGroup(tiny_db, criteria)
        assert len(group.scores("overall")) == len(group)

    def test_subgroup_codes_align_with_rows(self, tiny_db):
        group = RatingGroup(tiny_db, SelectionCriteria.root())
        codes = group.subgroup_codes(Side.ITEM, "city")
        assert len(codes) == len(group)
