"""Tests for repro.model.operations (neighbourhood enumeration)."""

import pytest

from repro.exceptions import OperationError
from repro.model import (
    AVPair,
    OperationKind,
    SelectionCriteria,
    Side,
    apply_operation,
    enumerate_operations,
)


class TestEnumeration:
    def test_root_yields_only_filters(self, tiny_db):
        ops = list(enumerate_operations(tiny_db, SelectionCriteria.root()))
        assert ops
        assert all(op.kind is OperationKind.FILTER for op in ops)

    def test_filter_targets_extend_current(self, tiny_db):
        current = SelectionCriteria.of(reviewer={"gender": "F"})
        ops = list(enumerate_operations(tiny_db, current))
        filters = [op for op in ops if op.kind is OperationKind.FILTER]
        assert all(len(op.target) == 2 for op in filters)

    def test_generalize_removes_pair(self, tiny_db):
        current = SelectionCriteria.of(reviewer={"gender": "F", "age_group": "young"})
        ops = list(enumerate_operations(tiny_db, current))
        rollups = [op for op in ops if op.kind is OperationKind.GENERALIZE]
        assert len(rollups) == 2
        assert all(len(op.target) == 1 for op in rollups)

    def test_change_swaps_value(self, tiny_db):
        current = SelectionCriteria.of(reviewer={"gender": "F"})
        ops = list(enumerate_operations(tiny_db, current))
        changes = [op for op in ops if op.kind is OperationKind.CHANGE]
        assert changes
        assert all(
            op.target.side_pairs(Side.REVIEWER)["gender"] != "F" for op in changes
        )

    def test_no_duplicate_targets(self, tiny_db):
        current = SelectionCriteria.of(reviewer={"gender": "F"})
        ops = list(enumerate_operations(tiny_db, current, include_compound=True))
        targets = [op.target for op in ops]
        assert len(targets) == len(set(targets))

    def test_never_yields_current(self, tiny_db):
        current = SelectionCriteria.of(reviewer={"gender": "F"})
        ops = list(enumerate_operations(tiny_db, current, include_compound=True))
        assert current not in [op.target for op in ops]

    def test_edit_distance_bounded_by_two(self, tiny_db):
        current = SelectionCriteria.of(
            reviewer={"gender": "F"}, item={"city": "NYC"}
        )
        ops = list(enumerate_operations(tiny_db, current, include_compound=True))
        assert all(op.target.edit_distance(current) <= 2 for op in ops)

    def test_max_values_cap(self, tiny_db):
        ops_all = list(enumerate_operations(tiny_db, SelectionCriteria.root()))
        ops_capped = list(
            enumerate_operations(
                tiny_db, SelectionCriteria.root(), max_values_per_attribute=1
            )
        )
        assert len(ops_capped) < len(ops_all)

    def test_compound_flag_adds_candidates(self, tiny_db):
        current = SelectionCriteria.of(reviewer={"gender": "F"})
        plain = list(enumerate_operations(tiny_db, current))
        compound = list(enumerate_operations(tiny_db, current, include_compound=True))
        assert len(compound) > len(plain)
        assert any(op.kind is OperationKind.COMPOUND for op in compound)

    def test_excludes_attributes_already_fixed(self, tiny_db):
        current = SelectionCriteria.of(reviewer={"gender": "F"})
        ops = list(enumerate_operations(tiny_db, current))
        adds = [
            p
            for op in ops
            if op.kind is OperationKind.FILTER
            for p in op.added
        ]
        assert all(
            (p.side, p.attribute) != (Side.REVIEWER, "gender") for p in adds
        )


class TestApplyOperation:
    def test_apply_yields_group(self, tiny_db):
        ops = list(enumerate_operations(tiny_db, SelectionCriteria.root()))
        group = apply_operation(tiny_db, ops[0])
        assert len(group) > 0

    def test_apply_empty_raises(self, tiny_db):
        from repro.model.operations import Operation

        target = SelectionCriteria.of(reviewer={"gender": "NOPE"})
        bad = Operation(target, OperationKind.FILTER)
        with pytest.raises(OperationError):
            apply_operation(tiny_db, bad)

    def test_describe_mentions_edits(self):
        from repro.model.operations import Operation

        pair = AVPair(Side.ITEM, "city", "NYC")
        op = Operation(
            SelectionCriteria([pair]), OperationKind.FILTER, added=(pair,)
        )
        assert "add" in op.describe()
        assert "city" in op.describe()

    def test_describe_key_is_memoised(self):
        from repro.model.operations import Operation

        pair = AVPair(Side.ITEM, "city", "NYC")
        op = Operation(SelectionCriteria([pair]), OperationKind.FILTER)
        assert "describe_key" not in vars(op)
        key = op.describe_key
        assert key == op.target.describe()
        # cached_property lands in the instance __dict__ despite the
        # frozen dataclass, so repeat access returns the same object
        assert "describe_key" in vars(op)
        assert op.describe_key is key
