"""Tests for the bipartite graph view."""

import pytest

from repro.model import (
    RatingGroup,
    SelectionCriteria,
    density,
    item_degrees,
    reviewer_degrees,
    to_bipartite_graph,
)


@pytest.fixture(scope="module")
def graph(tiny_db):
    return to_bipartite_graph(tiny_db)


class TestBipartiteGraph:
    def test_node_counts(self, graph, tiny_db):
        reviewers = [n for n, d in graph.nodes(data=True) if d["side"] == "reviewer"]
        items = [n for n, d in graph.nodes(data=True) if d["side"] == "item"]
        assert len(reviewers) <= len(tiny_db.reviewers)
        assert len(items) <= len(tiny_db.items)

    def test_edges_carry_scores(self, graph, tiny_db):
        __, __, data = next(iter(graph.edges(data=True)))
        assert set(data["scores"]) <= set(tiny_db.dimensions)

    def test_restricted_to_group(self, tiny_db):
        group = RatingGroup(tiny_db, SelectionCriteria.of(item={"city": "NYC"}))
        sub = to_bipartite_graph(tiny_db, group=group)
        assert sub.number_of_edges() <= len(group)

    def test_single_dimension(self, tiny_db):
        g = to_bipartite_graph(tiny_db, dimension="food")
        __, __, data = next(iter(g.edges(data=True)))
        assert set(data["scores"]) <= {"food"}

    def test_degrees(self, graph):
        r = reviewer_degrees(graph)
        i = item_degrees(graph)
        assert all(d >= 1 for d in r.values())
        assert all(d >= 1 for d in i.values())

    def test_density_in_unit_interval(self, graph):
        assert 0 < density(graph) <= 1

    def test_density_empty_graph(self):
        import networkx as nx

        assert density(nx.Graph()) == 0.0
