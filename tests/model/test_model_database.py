"""Tests for repro.model.database (SubjectiveDatabase)."""

import numpy as np
import pytest

from repro.db import Table
from repro.exceptions import SchemaError
from repro.model import Side, SubjectiveDatabase


def _mini_db(**overrides):
    users = Table.from_columns(
        {"user_id": [10, 20, 30], "gender": ["F", "M", "F"]},
        explorable={"user_id": False},
    )
    items = Table.from_columns(
        {"item_id": [1, 2], "city": ["NYC", "Austin"]},
        explorable={"item_id": False},
    )
    ratings = Table.from_columns(
        {
            "user_id": [10, 10, 20, 30],
            "item_id": [1, 2, 1, 2],
            "score": [5, 4, 3, 1],
        },
        explorable={"user_id": False, "item_id": False},
    )
    kwargs = dict(
        reviewers=users,
        items=items,
        ratings=ratings,
        dimensions=("score",),
        name="mini",
    )
    kwargs.update(overrides)
    return SubjectiveDatabase(**kwargs)


class TestConstruction:
    def test_valid(self):
        db = _mini_db()
        assert db.n_ratings == 4
        assert db.dimensions == ("score",)

    def test_missing_dimension_column(self):
        with pytest.raises(SchemaError):
            _mini_db(dimensions=("nope",))

    def test_empty_dimensions(self):
        with pytest.raises(SchemaError):
            _mini_db(dimensions=())

    def test_unknown_rating_reference(self):
        bad_ratings = Table.from_columns(
            {"user_id": [99], "item_id": [1], "score": [5]},
            explorable={"user_id": False, "item_id": False},
        )
        with pytest.raises(SchemaError):
            _mini_db(ratings=bad_ratings)

    def test_duplicate_entity_id(self):
        users = Table.from_columns(
            {"user_id": [10, 10], "gender": ["F", "M"]},
            explorable={"user_id": False},
        )
        with pytest.raises(SchemaError):
            _mini_db(reviewers=users)

    def test_bad_scale(self):
        with pytest.raises(SchemaError):
            _mini_db(scale=1)


class TestAlignment:
    def test_entity_rows_for_ratings(self):
        db = _mini_db()
        assert db.entity_rows_for_ratings(Side.REVIEWER).tolist() == [0, 0, 1, 2]
        assert db.entity_rows_for_ratings(Side.ITEM).tolist() == [0, 1, 0, 1]

    def test_rating_rows_for_entities(self):
        db = _mini_db()
        mask = np.array([True, False, False])  # only user 10
        assert db.rating_rows_for_entities(Side.REVIEWER, mask).tolist() == [
            True, True, False, False,
        ]

    def test_aligned_grouping(self):
        db = _mini_db()
        grouping = db.aligned_grouping(Side.REVIEWER, "gender")
        # ratings by users 10,10,20,30 → F,F,M,F
        labels = [grouping.labels[c] for c in grouping.codes]
        assert labels == ["F", "F", "M", "F"]

    def test_aligned_grouping_cached(self):
        db = _mini_db()
        assert db.aligned_grouping(Side.ITEM, "city") is db.aligned_grouping(
            Side.ITEM, "city"
        )

    def test_dimension_scores(self):
        db = _mini_db()
        assert db.dimension_scores("score").tolist() == [5, 4, 3, 1]

    def test_dimension_scores_unknown(self):
        with pytest.raises(SchemaError):
            _mini_db().dimension_scores("nope")


class TestDerivedViews:
    def test_explorable_attributes_exclude_keys(self):
        db = _mini_db()
        assert db.explorable_attributes(Side.REVIEWER) == ("gender",)
        assert db.explorable_attributes(Side.ITEM) == ("city",)

    def test_grouping_attributes(self):
        db = _mini_db()
        assert db.grouping_attributes() == (
            (Side.REVIEWER, "gender"),
            (Side.ITEM, "city"),
        )

    def test_summary_shape(self):
        s = _mini_db().summary()
        assert s["n_ratings"] == 4
        assert s["n_reviewers"] == 3
        assert s["n_items"] == 2
        assert s["n_dimensions"] == 1

    def test_restrict(self):
        db = _mini_db().restrict(reviewer_attributes=())
        assert db.explorable_attributes(Side.REVIEWER) == ()
        assert db.explorable_attributes(Side.ITEM) == ("city",)

    def test_sample_reviewers(self):
        db = _mini_db().sample_reviewers(0.67, seed=1)
        assert len(db.reviewers) == 2
        # only sampled reviewers' records survive
        assert db.n_ratings < 4 or len(db.reviewers) == 3

    def test_sample_reviewers_bad_fraction(self):
        with pytest.raises(ValueError):
            _mini_db().sample_reviewers(0.0)
