"""Edge-case tests across modules (final coverage pass)."""

import numpy as np
import pytest

from repro import SelectionCriteria, SubDEx, SubDExConfig
from repro.core.modes import run_user_driven
from repro.core.recommend import RecommenderConfig
from repro.db import Table, load_table, save_table
from repro.model import (
    AVPair,
    Operation,
    OperationKind,
    Side,
    enumerate_operations,
)
from repro.userstudy.reporting import recall_series_table
from repro.core.modes import ExplorationMode


class TestCsvEdgeCases:
    def test_cells_with_commas_and_quotes(self, tmp_path):
        table = Table.from_columns(
            {"name": ['Joe"s, Grill', "plain", 'a,b"c'], "n": [1, 2, 3]}
        )
        path = tmp_path / "t.csv"
        save_table(table, path)
        loaded = load_table(path, schema=table.schema)
        assert loaded.row(0)["name"] == 'Joe"s, Grill'
        assert loaded.row(2)["name"] == 'a,b"c'

    def test_cells_with_newlines(self, tmp_path):
        table = Table.from_columns({"text": ["line1\nline2", "x"]})
        path = tmp_path / "t.csv"
        save_table(table, path)
        loaded = load_table(path, schema=table.schema)
        assert loaded.row(0)["text"] == "line1\nline2"

    def test_unicode_roundtrip(self, tmp_path):
        table = Table.from_columns({"city": ["Zürich", "København", "東京"]})
        path = tmp_path / "t.csv"
        save_table(table, path)
        assert load_table(path, schema=table.schema).row(2)["city"] == "東京"

    def test_multivalued_roundtrip_with_empty(self, tmp_path):
        table = Table.from_columns(
            {"tags": [frozenset({"a", "b"}), frozenset(), frozenset({"c"})]}
        )
        path = tmp_path / "t.csv"
        save_table(table, path)
        loaded = load_table(path, schema=table.schema)
        assert loaded.row(1)["tags"] is None


class TestCompoundOperations:
    def test_compound_edit_distance_exactly_two(self, tiny_db):
        current = SelectionCriteria.of(
            reviewer={"gender": "F"}, item={"city": "NYC"}
        )
        compounds = [
            op
            for op in enumerate_operations(
                tiny_db, current, include_compound=True
            )
            if op.kind is OperationKind.COMPOUND
        ]
        assert compounds
        assert all(op.target.edit_distance(current) == 2 for op in compounds)

    def test_compound_add_plus_remove_shapes(self, tiny_db):
        current = SelectionCriteria.of(reviewer={"gender": "F"})
        compounds = [
            op
            for op in enumerate_operations(
                tiny_db, current, include_compound=True
            )
            if op.kind is OperationKind.COMPOUND
        ]
        # add+remove keeps size 1, add+change keeps size 2
        sizes = {len(op.target) for op in compounds}
        assert sizes <= {1, 2}


class TestUserDrivenRetries:
    def test_chooser_returning_empty_target_is_retried(self, tiny_engine):
        """A chooser that first picks a dead-end op still advances."""
        bad = Operation(
            SelectionCriteria.of(reviewer={"gender": "NOPE"}),
            OperationKind.FILTER,
            added=(AVPair(Side.REVIEWER, "gender", "NOPE"),),
        )
        calls = {"n": 0}

        def chooser(session, candidates):
            calls["n"] += 1
            if calls["n"] == 1:
                return bad
            return candidates[0] if candidates else None

        path = run_user_driven(tiny_engine.session(), chooser, n_steps=2)
        assert len(path) == 2  # the retry succeeded
        assert calls["n"] >= 2


class TestReporting:
    def test_recall_series_table_renders(self):
        series = {
            ExplorationMode.USER_DRIVEN: [0.1, 0.2],
            ExplorationMode.RECOMMENDATION_POWERED: [0.3, 0.6, 0.9],
        }
        text = recall_series_table(series)
        assert "UD" in text and "RP" in text
        assert "0.90" in text
        assert "—" in text  # missing step padded


class TestEngineParameterisation:
    def test_k_one_single_map_per_step(self, tiny_db):
        engine = SubDEx(
            tiny_db,
            SubDExConfig(
                recommender=RecommenderConfig(max_values_per_attribute=2)
            ).with_k(1),
        )
        result = engine.rating_maps()
        assert len(result.selected) == 1

    def test_large_k_clamped_to_candidates(self, tiny_db):
        engine = SubDEx(
            tiny_db,
            SubDExConfig(
                recommender=RecommenderConfig(max_values_per_attribute=2)
            ).with_k(50),
        )
        result = engine.rating_maps()
        # tiny db has 10 candidate specs; selection cannot exceed that
        assert 1 <= len(result.selected) <= 10

    def test_o_zero_returns_empty(self, tiny_engine):
        assert tiny_engine.recommend(o=0) == []


class TestDatabaseViews:
    def test_restrict_item_attributes(self, tiny_db):
        restricted = tiny_db.restrict(item_attributes=("city",))
        assert restricted.explorable_attributes(Side.ITEM) == ("city",)
        # reviewer side untouched
        assert restricted.explorable_attributes(Side.REVIEWER) == (
            tiny_db.explorable_attributes(Side.REVIEWER)
        )

    def test_sample_reviewers_preserves_alignment(self, tiny_db):
        sampled = tiny_db.sample_reviewers(0.5, seed=3)
        # every rating record still references an existing reviewer
        ids = set(int(v) for v in sampled.reviewers.numeric("user_id"))
        for u in sampled.ratings.numeric("user_id"):
            assert int(u) in ids
