"""Tests for the SDD / Qagview baselines and the scalability variants."""

import pytest

from repro.baselines import (
    JoinedView,
    Pattern,
    Qagview,
    QagviewConfig,
    SDDConfig,
    SmartDrillDown,
    all_variants,
    naive_config,
    no_parallelism_config,
    no_pruning_config,
    pattern_to_operation,
    subdex_config,
)
from repro.core.pruning import PruningStrategy
from repro.model import AVPair, OperationKind, RatingGroup, SelectionCriteria, Side


@pytest.fixture()
def root_group(tiny_db) -> RatingGroup:
    return RatingGroup(tiny_db, SelectionCriteria.root())


class TestPattern:
    def test_specificity(self):
        p = Pattern((AVPair(Side.ITEM, "city", "NYC"),))
        assert p.specificity == 1

    def test_distance_counts_differing_slots(self):
        a = Pattern((AVPair(Side.ITEM, "city", "NYC"),))
        b = Pattern((AVPair(Side.ITEM, "city", "LA"),))
        c = Pattern(
            (AVPair(Side.ITEM, "city", "NYC"), AVPair(Side.REVIEWER, "gender", "F"))
        )
        assert a.distance(b) == 1  # same slot, different value
        assert a.distance(c) == 1  # one extra slot
        assert b.distance(c) == 2
        assert a.distance(a) == 0

    def test_describe(self):
        p = Pattern((AVPair(Side.ITEM, "city", "NYC"),))
        assert "city=NYC" in p.describe()
        assert Pattern(()).describe() == "⟨*⟩"


class TestJoinedView:
    def test_single_patterns_have_masks(self, root_group):
        view = JoinedView(root_group)
        patterns = list(view.single_patterns())
        assert patterns
        for pattern, mask in patterns:
            assert mask.sum() > 0
            assert (view.mask_of(pattern) == mask).all()

    def test_fixed_attributes_excluded(self, tiny_db):
        group = RatingGroup(tiny_db, SelectionCriteria.of(reviewer={"gender": "F"}))
        view = JoinedView(group)
        attrs = {p.pairs[0].attribute for p, __ in view.single_patterns()}
        assert "gender" not in attrs

    def test_mask_of_conjunction(self, root_group):
        view = JoinedView(root_group)
        singles = dict(
            (p.pairs[0], m) for p, m in view.single_patterns()
        )
        pairs = list(singles)
        p1, p2 = None, None
        for a in pairs:
            for b in pairs:
                if (a.side, a.attribute) != (b.side, b.attribute):
                    p1, p2 = a, b
                    break
            if p1:
                break
        combo = Pattern((p1, p2))
        assert (
            view.mask_of(combo) == (singles[p1] & singles[p2])
        ).all()

    def test_pattern_to_operation_is_drilldown(self, root_group):
        pattern = Pattern((AVPair(Side.ITEM, "city", "NYC"),))
        op = pattern_to_operation(root_group, pattern)
        assert op.kind is OperationKind.FILTER
        assert AVPair(Side.ITEM, "city", "NYC") in op.target


class TestSmartDrillDown:
    def test_returns_at_most_k_rules(self, root_group):
        rules = SmartDrillDown(SDDConfig(k=3, min_support=2)).rule_list(root_group)
        assert 0 < len(rules) <= 3

    def test_rules_are_marginal_coverage_greedy(self, root_group):
        sdd = SmartDrillDown(SDDConfig(k=2, min_support=2))
        rules = sdd.rule_list(root_group)
        # first rule's weighted coverage must be >= second's marginal one
        assert rules[0][1] * rules[0][0].specificity >= 0

    def test_recommend_only_drilldowns(self, root_group):
        ops = SmartDrillDown(SDDConfig(min_support=2)).recommend(root_group)
        assert ops
        assert all(op.kind is OperationKind.FILTER for op in ops)
        assert all(
            op.target.edit_distance(root_group.criteria) >= 1 for op in ops
        )

    def test_k_override(self, root_group):
        ops = SmartDrillDown(SDDConfig(min_support=2)).recommend(root_group, k=1)
        assert len(ops) <= 1

    def test_two_pair_rules_produced_when_supported(self, root_group):
        rules = SmartDrillDown(
            SDDConfig(k=5, min_support=2, pair_pool=10)
        ).rule_list(root_group)
        assert any(r.specificity == 2 for r, __ in rules) or len(rules) <= 5


class TestQagview:
    def test_clusters_respect_min_distance(self, root_group):
        qv = Qagview(QagviewConfig(k=3, min_support=2))
        clusters = qv.clusters(root_group)
        for i, (a, __) in enumerate(clusters):
            for b, __ in clusters[i + 1 :]:
                assert a.distance(b) >= 2

    def test_recommend_only_drilldowns(self, root_group):
        ops = Qagview(QagviewConfig(min_support=2)).recommend(root_group)
        assert ops
        assert all(op.kind is OperationKind.FILTER for op in ops)

    def test_coverage_greedy_first_cluster_largest(self, root_group):
        clusters = Qagview(QagviewConfig(min_support=2)).clusters(root_group)
        coverages = [c for __, c in clusters]
        assert coverages[0] == max(coverages)

    def test_k_override(self, root_group):
        ops = Qagview(QagviewConfig(min_support=2)).recommend(root_group, k=2)
        assert len(ops) <= 2


class TestVariants:
    def test_all_variants_names(self):
        variants = all_variants()
        assert list(variants) == [
            "SubDEx",
            "No-Pruning",
            "CI Pruning",
            "MAB Pruning",
            "No Parallelism",
            "Naive",
        ]

    def test_pruning_strategies(self):
        variants = all_variants()
        assert variants["SubDEx"].generator.pruning is PruningStrategy.COMBINED
        assert variants["No-Pruning"].generator.pruning is PruningStrategy.NONE
        assert (
            variants["CI Pruning"].generator.pruning
            is PruningStrategy.CONFIDENCE_INTERVAL
        )
        assert variants["MAB Pruning"].generator.pruning is PruningStrategy.MAB

    def test_parallelism_flags(self):
        assert subdex_config().recommender.parallel
        assert not no_parallelism_config().recommender.parallel
        assert not naive_config().recommender.parallel
        assert naive_config().generator.pruning is PruningStrategy.NONE

    def test_no_pruning_keeps_parallelism(self):
        assert no_pruning_config().recommender.parallel
