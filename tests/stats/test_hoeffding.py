"""Tests for Hoeffding / Hoeffding–Serfling bounds."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats import hoeffding_epsilon, serfling_epsilon


class TestSerflingEpsilon:
    def test_zero_seen_is_vacuous(self):
        assert serfling_epsilon(0, 100) == 1.0

    def test_full_population_is_exact(self):
        assert serfling_epsilon(100, 100) == 0.0

    def test_decreases_with_more_data(self):
        values = [serfling_epsilon(n, 1000) for n in (10, 50, 100, 500, 900)]
        assert values == sorted(values, reverse=True)

    def test_wider_with_smaller_delta(self):
        assert serfling_epsilon(50, 1000, delta=0.01) > serfling_epsilon(
            50, 1000, delta=0.2
        )

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            serfling_epsilon(10, 100, delta=0.0)
        with pytest.raises(ValueError):
            serfling_epsilon(10, 100, delta=1.5)

    @given(
        n_seen=st.integers(1, 999),
        n_total=st.integers(1000, 5000),
        delta=st.floats(0.01, 0.5),
    )
    def test_always_positive_before_completion(self, n_seen, n_total, delta):
        assert serfling_epsilon(n_seen, n_total, delta) > 0

    def test_empirical_coverage(self):
        """The anytime bound should cover the true mean almost always."""
        rng = np.random.default_rng(7)
        population = rng.random(400)
        true_mean = population.mean()
        failures = 0
        trials = 200
        for t in range(trials):
            perm = rng.permutation(population)
            covered = True
            for n_seen in (40, 80, 160, 320):
                running = perm[:n_seen].mean()
                eps = serfling_epsilon(n_seen, len(population), delta=0.05)
                if abs(running - true_mean) > eps:
                    covered = False
                    break
            failures += not covered
        assert failures / trials <= 0.05


class TestHoeffdingEpsilon:
    def test_vacuous_for_zero(self):
        assert hoeffding_epsilon(0) == 1.0

    def test_decreasing(self):
        assert hoeffding_epsilon(100) < hoeffding_epsilon(10)

    def test_known_value(self):
        # sqrt(ln(2/0.05) / (2*100)) ≈ 0.1358
        assert hoeffding_epsilon(100, delta=0.05) == pytest.approx(0.1358, abs=1e-3)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            hoeffding_epsilon(10, delta=2.0)
