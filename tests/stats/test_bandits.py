"""Tests for the Successive Accepts and Rejects bandit."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats import SuccessiveAcceptsRejects


class TestConstruction:
    def test_k_clamped_to_arm_count(self):
        sar = SuccessiveAcceptsRejects(["a", "b"], k=5)
        assert sar.remaining_slots == 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SuccessiveAcceptsRejects(["a"], k=0)

    def test_duplicate_arms_rejected(self):
        with pytest.raises(ValueError):
            SuccessiveAcceptsRejects(["a", "a"], k=1)


class TestStep:
    def test_accepts_clear_winner(self):
        sar = SuccessiveAcceptsRejects(["a", "b", "c", "d"], k=2)
        means = {"a": 0.9, "b": 0.5, "c": 0.45, "d": 0.4}
        verdict, arm = sar.step(means)
        assert (verdict, arm) == ("accept", "a")

    def test_rejects_clear_loser(self):
        sar = SuccessiveAcceptsRejects(["a", "b", "c", "d"], k=2)
        means = {"a": 0.6, "b": 0.55, "c": 0.5, "d": 0.05}
        verdict, arm = sar.step(means)
        assert (verdict, arm) == ("reject", "d")

    def test_finishes_and_returns_none(self):
        sar = SuccessiveAcceptsRejects(["a", "b"], k=2)
        assert sar.finished
        assert sar.step({"a": 1.0, "b": 0.5}) is None

    def test_run_to_completion_identifies_topk(self):
        arms = list("abcdefgh")
        means = {arm: i / 10 for i, arm in enumerate(arms)}
        sar = SuccessiveAcceptsRejects(arms, k=3)
        top = sar.run_to_completion(means)
        assert set(top) == {"f", "g", "h"}

    def test_force_reject(self):
        sar = SuccessiveAcceptsRejects(["a", "b", "c"], k=1)
        sar.force_reject("a")
        assert "a" in sar.rejected and "a" not in sar.active
        top = sar.run_to_completion({"a": 1.0, "b": 0.2, "c": 0.1})
        assert top == ("b",)

    def test_surviving_counts_accepted_and_active(self):
        sar = SuccessiveAcceptsRejects(["a", "b", "c", "d"], k=2)
        sar.step({"a": 0.9, "b": 0.2, "c": 0.2, "d": 0.2})
        assert set(sar.surviving()) == {"a", "b", "c", "d"} - set(sar.rejected)

    @given(
        n=st.integers(3, 12),
        k=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    def test_property_fixed_means_find_exact_topk(self, n, k, seed):
        """With stationary means and distinct values, SAR is exact."""
        rng = np.random.default_rng(seed)
        means = {f"arm{i}": float(v) for i, v in enumerate(rng.permutation(n))}
        sar = SuccessiveAcceptsRejects(list(means), k=min(k, n))
        top = sar.run_to_completion(means)
        expected = sorted(means, key=means.get, reverse=True)[: min(k, n)]
        assert set(top) == set(expected)
