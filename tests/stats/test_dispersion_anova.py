"""Tests for dispersion measures and ANOVA wrapper."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats import (
    histogram_mean,
    histogram_std,
    histogram_variance,
    macarthur_index,
    one_way_anova,
    schutz_coefficient,
    shannon_entropy,
    simpson_index,
)

_hists = st.lists(st.integers(0, 30), min_size=2, max_size=7).map(np.array)


class TestHistogramMoments:
    def test_mean_known(self):
        # two 1s and two 5s → mean 3
        assert histogram_mean(np.array([2, 0, 0, 0, 2])) == 3.0

    def test_mean_empty_nan(self):
        assert math.isnan(histogram_mean(np.zeros(5)))

    def test_std_zero_for_point_mass(self):
        assert histogram_std(np.array([0, 0, 9, 0, 0])) == 0.0

    def test_std_matches_numpy(self):
        counts = np.array([3, 1, 4, 1, 5])
        samples = np.repeat(np.arange(1, 6), counts)
        assert histogram_std(counts) == pytest.approx(samples.std())

    def test_variance_matches_numpy(self):
        counts = np.array([1, 2, 3])
        samples = np.repeat(np.arange(1, 4), counts)
        assert histogram_variance(counts) == pytest.approx(samples.var())

    @given(counts=_hists)
    def test_std_bounded_by_half_range(self, counts):
        std = histogram_std(counts)
        if not math.isnan(std):
            m = len(counts)
            assert std <= (m - 1) / 2 + 1e-9


class TestInequalityMeasures:
    def test_schutz_zero_for_point_mass(self):
        assert schutz_coefficient(np.array([0, 8, 0])) == 0.0

    def test_schutz_positive_for_spread(self):
        assert schutz_coefficient(np.array([5, 0, 5])) > 0

    @given(counts=_hists)
    def test_schutz_in_unit_interval(self, counts):
        value = schutz_coefficient(counts)
        if not math.isnan(value):
            assert 0 <= value <= 1

    def test_entropy_uniform_is_log_m(self):
        assert shannon_entropy(np.array([4, 4, 4, 4])) == pytest.approx(
            math.log(4)
        )

    def test_macarthur_bounds(self):
        assert macarthur_index(np.array([0, 10, 0])) == 0.0
        assert macarthur_index(np.array([5, 5, 5])) == pytest.approx(1.0)

    def test_simpson(self):
        assert simpson_index(np.array([10, 0])) == 0.0
        assert simpson_index(np.array([5, 5])) == pytest.approx(0.5)

    def test_empty_histograms_nan(self):
        for fn in (schutz_coefficient, macarthur_index, simpson_index, shannon_entropy):
            assert math.isnan(fn(np.zeros(4)))


class TestAnova:
    def test_clearly_different_groups_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 50)
        b = rng.normal(3, 1, 50)
        assert one_way_anova([a, b]).significant

    def test_identical_distributions_not_significant(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, 50)
        b = rng.normal(0, 1, 50)
        result = one_way_anova([a, b])
        assert result.p_value > 0.001  # overwhelmingly likely

    def test_degenerate_groups_give_nan(self):
        result = one_way_anova([[1.0], [2.0]])
        assert math.isnan(result.p_value)
        assert not result.significant

    def test_constant_groups_give_nan(self):
        result = one_way_anova([[2.0, 2.0], [2.0, 2.0]])
        assert not result.significant

    def test_describe_mentions_verdict(self):
        result = one_way_anova([[1, 2, 3], [1.1, 2.1, 2.9]])
        assert "significant" in result.describe()
