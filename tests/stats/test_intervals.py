"""Tests for confidence intervals and the max-combination rule (Alg. 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats import ConfidenceInterval, combine_max_intervals


class TestConfidenceInterval:
    def test_around_clamps_to_unit(self):
        ci = ConfidenceInterval.around(0.95, 0.2)
        assert ci.hi == 1.0 and ci.lo == pytest.approx(0.75)

    def test_around_unclamped(self):
        ci = ConfidenceInterval.around(0.5, 0.7, clamp=False)
        assert ci.lo == pytest.approx(-0.2)

    def test_exact(self):
        ci = ConfidenceInterval.exact(0.3)
        assert ci.width == 0.0 and ci.contains(0.3)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            ConfidenceInterval(0.5, 0.6, 0.4)

    def test_entirely_below(self):
        low = ConfidenceInterval(0.2, 0.1, 0.3)
        high = ConfidenceInterval(0.6, 0.5, 0.7)
        assert low.entirely_below(high)
        assert not high.entirely_below(low)
        touching = ConfidenceInterval(0.4, 0.3, 0.5)
        assert not touching.entirely_below(high)

    def test_scaled(self):
        ci = ConfidenceInterval(0.5, 0.4, 0.6).scaled(0.5)
        assert (ci.mean, ci.lo, ci.hi) == (0.25, 0.2, 0.3)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            ConfidenceInterval(0.5, 0.4, 0.6).scaled(-1)


class TestCombineMaxIntervals:
    def test_single(self):
        ci = ConfidenceInterval(0.5, 0.4, 0.6)
        assert combine_max_intervals([ci]) == ci

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_max_intervals([])

    def test_dominated_interval_ignored(self):
        dominated = ConfidenceInterval(0.1, 0.05, 0.15)
        top = ConfidenceInterval(0.6, 0.5, 0.7)
        combined = combine_max_intervals([dominated, top])
        assert combined.hi == 0.7
        assert combined.lo == 0.5  # dominated one cannot drag the bound down

    def test_overlapping_intervals_widen(self):
        a = ConfidenceInterval(0.55, 0.4, 0.7)
        b = ConfidenceInterval(0.5, 0.45, 0.55)
        combined = combine_max_intervals([a, b])
        assert combined.hi == 0.7
        assert combined.lo == pytest.approx(0.45)  # max of surviving lowers

    @given(
        intervals=st.lists(
            st.tuples(
                st.floats(0, 1), st.floats(0, 0.3)
            ).map(lambda t: ConfidenceInterval.around(t[0], t[1])),
            min_size=1,
            max_size=6,
        )
    )
    def test_combined_bounds_are_sound_for_max(self, intervals):
        """If each X_i ∈ [lo_i, hi_i], then max X_i ∈ [combined.lo, combined.hi]."""
        combined = combine_max_intervals(intervals)
        # worst case low: every X_i at its lower bound
        low_realisation = max(ci.lo for ci in intervals)
        high_realisation = max(ci.hi for ci in intervals)
        assert combined.lo <= low_realisation + 1e-12
        assert combined.hi >= high_realisation - 1e-12
