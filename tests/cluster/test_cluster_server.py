"""End-to-end sharded serving: ``--workers 2`` answers byte-for-byte what
the single-process server answers, and the cluster surfaces (worker
states, worker-labelled metrics, per-worker span summaries, merged
session lists) are wired through the front."""

from __future__ import annotations

import os
import threading
import urllib.request

import pytest

from repro.cluster.shm import SEGMENT_PREFIX
from repro.core.engine import SubDEx, SubDExConfig
from repro.server import ServerConfig, SubDExClient, build_server


def _factories(make_db):
    return {"synthetic": lambda: SubDEx(make_db(seed=3), SubDExConfig())}


def _start(server):
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


@pytest.fixture(scope="module")
def single_server(db_factory):
    server = _start(
        build_server(
            _factories(db_factory), config=ServerConfig(workers=0, shards=8)
        )
    )
    yield server
    server.graceful_shutdown(drain_seconds=5.0)


@pytest.fixture(scope="module")
def sharded_server(db_factory):
    server = _start(
        build_server(
            _factories(db_factory), config=ServerConfig(workers=2, shards=8)
        )
    )
    yield server
    server.graceful_shutdown(drain_seconds=5.0)
    leftover = [
        n for n in os.listdir("/dev/shm") if n.startswith(SEGMENT_PREFIX)
    ]
    assert leftover == []  # shutdown unlinked every segment


@pytest.fixture(scope="module")
def single(single_server):
    with SubDExClient(single_server.url) as client:
        yield client


@pytest.fixture(scope="module")
def sharded(sharded_server):
    with SubDExClient(sharded_server.url) as client:
        yield client


def test_health_reports_cluster(single, sharded):
    cluster = sharded.health()["cluster"]
    assert cluster["workers"] == 2 and cluster["up"] == 2
    assert "cluster" not in single.health()


def test_workers_endpoint(single, sharded):
    info = sharded.workers()
    assert info["enabled"] is True
    assert info["n_workers"] == 2 and info["n_shards"] == 8
    assert [w["state"] for w in info["workers"]] == ["up", "up"]
    assert all(w["alive"] for w in info["workers"])
    mine = single.workers()
    assert mine["enabled"] is False and mine["workers"] == []


def test_cluster_maps_byte_identical(single, sharded):
    mine = single.cluster_maps()
    theirs = sharded.cluster_maps()
    assert mine["group_size"] == theirs["group_size"]
    assert mine["maps"] == theirs["maps"]
    assert theirs["degraded"] is False
    assert {w["worker"] for w in theirs["scatter"]["workers"]} == {0, 1}
    assert mine["scatter"]["mode"] == "local"


def test_cluster_maps_with_criteria_and_k(single, sharded):
    criteria = {"reviewer": {"gender": "M"}}
    mine = single.cluster_maps(criteria=criteria, k=2)
    theirs = sharded.cluster_maps(criteria=criteria, k=2)
    assert len(theirs["maps"]) == 2
    assert mine["maps"] == theirs["maps"]


def test_session_flow_byte_identical(single, sharded, strip):
    mine, theirs = single.create_session(), sharded.create_session()
    for path in ("maps", "recommendations", "history"):
        a = single.request("GET", f"/sessions/{mine.id}/{path}")
        b = sharded.request("GET", f"/sessions/{theirs.id}/{path}")
        assert strip(a) == strip(b), f"{path} differs"
    a = single.request("POST", f"/sessions/{mine.id}/apply", {"recommendation": 1})
    b = sharded.request("POST", f"/sessions/{theirs.id}/apply", {"recommendation": 1})
    assert strip(a) == strip(b)
    # and after the step, the whole history still matches
    a = single.request("GET", f"/sessions/{mine.id}/history")
    b = sharded.request("GET", f"/sessions/{theirs.id}/history")
    assert strip(a) == strip(b)
    mine.close()
    theirs.close()


def test_sessions_list_carries_worker_tag(sharded):
    session = sharded.create_session()
    try:
        listed = {s["session_id"]: s for s in sharded.sessions()}
        assert session.id in listed
        assert listed[session.id]["worker"] in (0, 1)
        summary = sharded.request("GET", f"/sessions/{session.id}")
        assert summary["worker"] == listed[session.id]["worker"]
    finally:
        session.close()


def test_metrics_have_worker_families(sharded_server, sharded):
    session = sharded.create_session()
    try:
        text = urllib.request.urlopen(
            sharded_server.url + "/metrics?format=prometheus"
        ).read().decode()
    finally:
        session.close()
    for family in (
        "subdex_worker_up",
        "subdex_worker_restarts_total",
        "subdex_worker_rpcs_total",
        "subdex_worker_sessions",
    ):
        assert family in text
    assert 'subdex_worker_up{worker="0"} 1' in text
    assert 'subdex_worker_up{worker="1"} 1' in text
    json_payload = sharded.metrics()
    assert len(json_payload["cluster"]["workers"]) == 2


def test_debug_spans_include_worker_sections(sharded):
    # touch both workers first so each has spans to report
    sharded.cluster_maps()
    spans = sharded.spans_summary()
    assert sorted(spans["workers"]) == ["0", "1"]
    front_spans = {entry["name"] for entry in spans["operations"]}
    assert "cluster.scatter" in front_spans and "worker.rpc" in front_spans
    for stats in spans["workers"].values():
        worker_ops = {entry["name"] for entry in stats["operations"]}
        assert "worker.request" in worker_ops


def test_unknown_session_404_from_worker(sharded):
    from repro.server import ServerError

    with pytest.raises(ServerError) as info:
        sharded.request("GET", "/sessions/" + "0" * 32)
    assert info.value.status == 404


def test_session_ops_honor_deadline_header(sharded):
    """X-Deadline-Ms rides the IPC envelope to the routed worker.

    Regression: deadline propagation called the ``Deadline.remaining``
    property, so *every* deadlined request 500ed in cluster mode.
    """
    from repro.server import ServerError

    created = sharded.request("POST", "/sessions", {}, deadline_ms=60_000)
    sid = created["session_id"]
    try:
        maps = sharded.request(
            "GET", f"/sessions/{sid}/maps", deadline_ms=60_000
        )
        assert maps["session_id"] == sid
    finally:
        sharded.request("DELETE", f"/sessions/{sid}")
    # an already-spent budget unwinds as a typed 504, not a hang or a 500
    with pytest.raises(ServerError) as info:
        sharded.request("POST", "/sessions", {}, deadline_ms=1)
    assert info.value.status == 504
    assert info.value.code == "deadline_exceeded"
