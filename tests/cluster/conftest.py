"""Fixtures for the cluster suite: synthetic databases with one of every
column shape (missing values, multi-valued attributes, numeric attributes)
and helpers for comparing HTTP payloads modulo volatile timing fields."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SubjectiveDatabase
from repro.db import Table

CITIES = ["NYC", "Austin", "Detroit", "Reno"]
GENRES = ["Pizza", "Sushi", "Tacos", "Burgers", "Ramen"]


def make_db(
    seed: int = 0,
    n_users: int = 50,
    n_items: int = 20,
    n_ratings: int = 700,
    missing: float = 0.0,
    name: str = "synthetic",
) -> SubjectiveDatabase:
    """A deterministic subjective database with one of every column kind.

    ``missing`` drops that fraction of attribute values (categorical and
    numeric), empties some multi-valued sets, and knocks out a few rating
    scores so the invalid-score path crosses the shard boundary too.
    """
    rng = np.random.default_rng(seed)

    def drop(value):
        return None if missing and rng.random() < missing else value

    users = Table.from_columns(
        {
            "user_id": list(range(n_users)),
            "gender": [drop(str(rng.choice(["M", "F"]))) for __ in range(n_users)],
            "age": [drop(int(rng.integers(18, 80))) for __ in range(n_users)],
            "occupation": [
                drop(str(rng.choice(["student", "artist", "lawyer"])))
                for __ in range(n_users)
            ],
        },
        explorable={"user_id": False},
    )
    items = Table.from_columns(
        {
            "item_id": list(range(n_items)),
            "city": [drop(str(rng.choice(CITIES))) for __ in range(n_items)],
            "cuisine": [
                frozenset()
                if missing and rng.random() < missing
                else frozenset(
                    rng.choice(GENRES, size=int(rng.integers(1, 3)), replace=False)
                )
                for __ in range(n_items)
            ],
            "price": [drop(int(rng.integers(1, 5))) for __ in range(n_items)],
        },
        explorable={"item_id": False},
    )
    overall = rng.integers(1, 6, n_ratings).astype(float)
    food = rng.integers(1, 6, n_ratings).astype(float)
    if missing:
        overall[rng.random(n_ratings) < missing / 2] = np.nan
    ratings = Table.from_columns(
        {
            "user_id": rng.integers(0, n_users, n_ratings).tolist(),
            "item_id": rng.integers(0, n_items, n_ratings).tolist(),
            "overall": overall.tolist(),
            "food": food.tolist(),
        },
        explorable={"user_id": False, "item_id": False},
    )
    return SubjectiveDatabase(
        users, items, ratings, ("overall", "food"), scale=5, name=name
    )


#: Timing fields that legitimately differ between two otherwise
#: byte-identical deployments.
VOLATILE_KEYS = frozenset(
    {"server_ms", "elapsed_seconds", "created_at", "idle_seconds", "session_id"}
)


def strip_volatile(payload):
    """Recursively drop timing/identity fields for payload comparison."""
    if isinstance(payload, dict):
        return {
            key: strip_volatile(value)
            for key, value in payload.items()
            if key not in VOLATILE_KEYS
        }
    if isinstance(payload, list):
        return [strip_volatile(item) for item in payload]
    return payload


@pytest.fixture(scope="session")
def db_factory():
    return make_db


@pytest.fixture()
def strip():
    return strip_volatile
