"""Chaos: SIGKILL a worker and watch the envelope.

A dead worker must (a) answer routed requests with the retryable 503
``worker_unavailable`` envelope (Retry-After included) while it is down,
(b) be detected and restarted by the supervisor, (c) come back with its
sessions restored from its checkpoint store — same bytes as before the
crash — and (d) leave scatter/gather scans either exact (failover
re-scatter on the survivor) or degraded-or-503, never silently wrong."""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.engine import SubDEx, SubDExConfig
from repro.server import ServerConfig, SubDExClient, build_server


@pytest.fixture()
def chaos_server(db_factory, tmp_path):
    server = build_server(
        {"synthetic": lambda: SubDEx(db_factory(seed=3), SubDExConfig())},
        config=ServerConfig(
            workers=2,
            shards=8,
            worker_heartbeat_seconds=0.15,
            checkpoint_dir=str(tmp_path / "checkpoints"),
        ),
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    yield server
    server.graceful_shutdown(drain_seconds=5.0)


@pytest.fixture()
def client(chaos_server):
    with SubDExClient(chaos_server.url) as instance:
        yield instance


def _raw(url: str, method: str = "GET", body=None):
    """One HTTP round trip with no client-side retries."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url,
        method=method,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(
                response.read()
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def _worker_info(client) -> dict[int, dict]:
    return {w["worker"]: w for w in client.workers()["workers"]}


def _wait_all_up(client, n_workers: int = 2, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        info = _worker_info(client)
        if len(info) == n_workers and all(
            w["state"] == "up" and w["alive"] for w in info.values()
        ):
            return
        time.sleep(0.1)
    raise AssertionError(f"workers never recovered: {_worker_info(client)}")


def _assert_unavailable_envelope(headers, payload) -> None:
    error = payload["error"]
    assert error["code"] == "worker_unavailable"
    assert error["retryable"] is True
    assert "Retry-After" in headers


def test_killed_worker_503s_then_restarts_with_session_intact(
    chaos_server, client, strip
):
    session = client.create_session()
    listed = {s["session_id"]: s for s in client.sessions()}
    owner = listed[session.id]["worker"]
    baseline = strip(client.request("GET", f"/sessions/{session.id}/maps"))
    n_steps_before = listed[session.id]["n_steps"]

    os.kill(_worker_info(client)[owner]["pid"], signal.SIGKILL)

    recovered = None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        status, headers, payload = _raw(
            chaos_server.url + f"/sessions/{session.id}/maps"
        )
        if status == 200:
            recovered = payload
            break
        assert status == 503, payload
        _assert_unavailable_envelope(headers, payload)
        time.sleep(0.1)
    assert recovered is not None, "worker never came back"
    assert strip(recovered) == baseline

    _wait_all_up(client)
    info = _worker_info(client)
    assert info[owner]["restarts"] >= 1
    # restored from checkpoint: same step count, same bytes
    summary = client.request("GET", f"/sessions/{session.id}")
    assert summary["worker"] == owner
    assert summary["n_steps"] == n_steps_before
    session.close()


def test_scatter_survives_worker_death_exactly_or_degrades(
    chaos_server, client
):
    baseline = client.cluster_maps()

    os.kill(_worker_info(client)[1]["pid"], signal.SIGKILL)

    # immediately scan: the dead worker's shards re-scatter onto the
    # survivor (exact), or the request degrades / 503s — never silently
    # diverges
    status, headers, payload = _raw(
        chaos_server.url + "/cluster/maps", method="POST", body={}
    )
    if status == 200:
        if not payload["degraded"]:
            assert payload["maps"] == baseline["maps"]
            assert payload["group_size"] == baseline["group_size"]
        else:
            assert payload["scatter"]["missing_shards"]
    else:
        assert status == 503, payload
        _assert_unavailable_envelope(headers, payload)

    # after the supervisor restarts the worker, results are exact again
    _wait_all_up(client)
    recovered = client.cluster_maps()
    assert recovered["degraded"] is False
    assert recovered["maps"] == baseline["maps"]
    assert recovered["group_size"] == baseline["group_size"]
    assert _worker_info(client)[1]["restarts"] >= 1
