"""Shared-memory database export/attach roundtrips and shard assignment.

The attach side must reproduce every column bit-for-bit (numeric data,
categorical codes *and* category order, multi-valued sets, missing
values) and the exported alignment arrays must match what the attaching
side would have recomputed — these are the preconditions for the merge
equivalence in ``test_merge.py``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.partition import (
    ShardMap,
    attach_database,
    share_database,
)
from repro.cluster.shm import SegmentRegistry
from repro.model.database import Side


@pytest.fixture()
def registry():
    instance = SegmentRegistry()
    yield instance
    instance.unlink_all()


@pytest.fixture()
def attach_registry():
    # attached views are only valid while their registry is alive — hold
    # it for the test's duration (workers hold theirs for the process)
    instance = SegmentRegistry()
    yield instance
    instance.close_attached()


@pytest.mark.parametrize("missing", [0.0, 0.35], ids=["dense", "sparse"])
def test_share_attach_roundtrip(registry, attach_registry, missing, db_factory):
    db = db_factory(seed=5, missing=missing)
    manifest = share_database(db, registry)
    attached = attach_database(manifest, attach_registry)

    assert attached.name == db.name
    assert tuple(attached.dimensions) == tuple(db.dimensions)
    assert attached.scale == db.scale
    for side in (Side.REVIEWER, Side.ITEM):
        assert attached.key(side) == db.key(side)

    for original, copy in (
        (db.reviewers, attached.reviewers),
        (db.items, attached.items),
        (db.ratings, attached.ratings),
    ):
        assert copy.attribute_names == original.attribute_names
        for name in original.attribute_names:
            assert copy.column(name).to_list() == original.column(name).to_list()

    # the exported alignment equals a from-scratch resolution
    for side in (Side.REVIEWER, Side.ITEM):
        np.testing.assert_array_equal(
            attached.entity_rows_for_ratings(side),
            db.entity_rows_for_ratings(side),
        )


def test_manifest_is_picklable(registry, attach_registry, db_factory):
    import pickle

    manifest = share_database(db_factory(seed=2), registry)
    clone = pickle.loads(pickle.dumps(manifest, protocol=5))
    attached = attach_database(clone, attach_registry)
    assert len(attached.ratings) == 700


def test_record_shards_partition_exactly(db_factory):
    db = db_factory(seed=1)
    for n_shards in (1, 2, 5, 64, 1000):
        shards = ShardMap(n_shards).record_shards(db)
        assert shards.shape == (len(db.ratings),)
        assert shards.min() >= 0 and shards.max() < n_shards


def test_reviewer_records_stay_shard_local(db_factory):
    db = db_factory(seed=1)
    shard_map = ShardMap(7)
    shards = shard_map.record_shards(db)
    user_rows = db.entity_rows_for_ratings(Side.REVIEWER)
    for row in np.unique(user_rows):
        assert len(np.unique(shards[user_rows == row])) == 1


def test_owned_shards_partition_the_shard_set():
    shard_map = ShardMap(10)
    owned = [shard_map.owned_shards(w, 3) for w in range(3)]
    flat = sorted(s for shards in owned for s in shards)
    assert flat == list(range(10))
    assert all(shards for shards in owned)  # 10 shards over 3 workers: none idle


def test_shard_map_validation():
    with pytest.raises(ValueError):
        ShardMap(0)
    with pytest.raises(ValueError):
        ShardMap(4).owned_shards(3, 3)
