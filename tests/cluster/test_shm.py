"""Shared-memory lifecycle: roundtrips, ownership, stale-segment purge,
and crash-safe cleanup hooks (the satellite-2 behaviours)."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cluster.shm import (
    SEGMENT_PREFIX,
    SegmentRegistry,
    attach_array,
    purge_stale_segments,
    segment_owner_pid,
    share_array,
)

_SRC = str(Path(__file__).resolve().parents[2] / "src")
_SHM_DIR = "/dev/shm"

pytestmark = pytest.mark.skipif(
    not os.path.isdir(_SHM_DIR), reason="needs POSIX shared memory"
)


@pytest.fixture()
def registry():
    instance = SegmentRegistry()
    yield instance
    instance.unlink_all()


@pytest.fixture()
def attach_registry():
    # attached views are only valid while their registry is alive — hold
    # it for the test's duration (workers hold theirs for the process)
    instance = SegmentRegistry()
    yield instance
    instance.close_attached()


def _our_segments() -> list[str]:
    return [n for n in os.listdir(_SHM_DIR) if n.startswith(SEGMENT_PREFIX)]


@pytest.mark.parametrize(
    "array",
    [
        np.arange(24, dtype=np.float64).reshape(4, 6),
        np.array([3, 1, 2], dtype=np.int32),
        np.zeros((0, 5), dtype=np.int64),  # empty arrays travel inline
        np.array([[True, False], [False, True]]),
    ],
    ids=["float64-2d", "int32-1d", "empty", "bool"],
)
def test_share_attach_roundtrip(registry, attach_registry, array):
    manifest = share_array(array, registry)
    view = attach_array(manifest, attach_registry)
    assert view.dtype == array.dtype and view.shape == array.shape
    np.testing.assert_array_equal(view, array)


def test_attached_views_are_read_only(registry, attach_registry):
    manifest = share_array(np.arange(8.0), registry)
    view = attach_array(manifest, attach_registry)
    with pytest.raises(ValueError):
        view[0] = 99.0


def test_attach_of_owned_segment_reuses_handle(registry):
    manifest = share_array(np.arange(4.0), registry)
    name = manifest["segment"]
    assert registry.attach(name) is registry._owned[name]


def test_segment_names_embed_owner_pid(registry):
    manifest = share_array(np.arange(4.0), registry)
    assert segment_owner_pid(manifest["segment"]) == os.getpid()
    assert segment_owner_pid("unrelated") is None
    assert segment_owner_pid(f"{SEGMENT_PREFIX}-notanint-abc") is None


def test_unlink_all_removes_segments():
    registry = SegmentRegistry()
    names = [
        share_array(np.arange(16.0), registry)["segment"] for __ in range(2)
    ]
    assert all(name in _our_segments() for name in names)
    assert registry.unlink_all() == 2
    assert not any(name in _our_segments() for name in names)
    assert registry.unlink_all() == 0  # idempotent


def test_purge_removes_dead_owner_segments_only(registry):
    # a segment whose embedded owner pid is dead: simulate the leak a
    # SIGKILLed front leaves behind
    child = subprocess.Popen(["true"])
    child.wait()
    stale = f"{SEGMENT_PREFIX}-{child.pid}-deadbeef0000"
    with open(os.path.join(_SHM_DIR, stale), "wb") as handle:
        handle.write(b"\0" * 64)
    live = share_array(np.arange(4.0), registry)["segment"]
    removed = purge_stale_segments()
    assert stale in removed
    assert stale not in _our_segments()
    assert live in _our_segments()  # our own segments are never purged


def test_sigterm_cleanup_unlinks_owned_segments(tmp_path):
    """A front killed with SIGTERM unlinks its segments on the way out."""
    script = tmp_path / "owner.py"
    script.write_text(
        textwrap.dedent(
            """
            import os, signal, sys, time
            import numpy as np
            from repro.cluster.shm import SegmentRegistry, share_array

            registry = SegmentRegistry()
            registry.install_cleanup()
            manifest = share_array(np.arange(32.0), registry)
            print(manifest["segment"], flush=True)
            while True:
                time.sleep(0.1)
            """
        )
    )
    env = dict(os.environ, PYTHONPATH=_SRC)
    process = subprocess.Popen(
        [sys.executable, str(script)],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        name = process.stdout.readline().strip()
        assert name.startswith(SEGMENT_PREFIX)
        assert name in _our_segments()
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=10)
    finally:
        if process.poll() is None:
            process.kill()
    deadline = time.monotonic() + 5.0
    while name in _our_segments() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert name not in _our_segments()
