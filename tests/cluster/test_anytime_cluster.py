"""Anytime semantics across the cluster boundary.

The front picks the rung and ships ``{budget_ms, rung}`` to the shard
owner inside the op payload; refinement tokens are minted and served by
the owning worker.  Satellite 3: a worker SIGKILLed mid-refinement loses
its (process-local) token store — polls for the orphaned token must
answer the typed ``refinement_lost`` 410 (or a completed result), never
a hang and never a 500.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.engine import SubDEx, SubDExConfig
from repro.server import ServerConfig, ServerError, SubDExClient, build_server


@pytest.fixture()
def anytime_server(db_factory, tmp_path):
    server = build_server(
        {"synthetic": lambda: SubDEx(db_factory(seed=3), SubDExConfig())},
        config=ServerConfig(
            workers=2,
            shards=8,
            worker_heartbeat_seconds=0.15,
            checkpoint_dir=str(tmp_path / "checkpoints"),
        ),
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    yield server
    server.graceful_shutdown(drain_seconds=5.0)


@pytest.fixture()
def client(anytime_server):
    with SubDExClient(anytime_server.url) as instance:
        yield instance


def _raw(url: str):
    request = urllib.request.Request(url, method="GET")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _numbers(recommendations) -> list[tuple[str, float]]:
    return [(r["description"], r["utility"]) for r in recommendations]


def _wait_restarted(client, worker: int, timeout: float = 30.0) -> None:
    """Wait until ``worker`` has been restarted and is back up.

    Heartbeat state can lag a SIGKILL, so waiting for "up" alone races
    the supervisor's detection — the restart counter is the real signal.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        info = {w["worker"]: w for w in client.workers()["workers"]}
        entry = info.get(worker)
        if (
            entry is not None
            and entry["restarts"] >= 1
            and entry["state"] == "up"
            and entry["alive"]
        ):
            return
        time.sleep(0.1)
    raise AssertionError("worker never restarted")


def test_budget_and_rung_propagate_to_worker(client):
    session = client.create_session()
    plain = session.recommendations()
    payload = session.recommend(budget_ms=60_000)
    quality = payload["quality"]
    assert quality["rung"] == "full"
    assert quality["complete"] is True
    assert quality["budget_ms"] == 60_000
    assert payload["degraded"] is False
    assert payload["refinement"] is None
    assert _numbers(payload["recommendations"]) == _numbers(plain)
    session.close()


def test_worker_refines_its_own_partial(client):
    session = client.create_session()
    plain = session.recommendations()
    payload = session.recommend(budget_ms=1)
    assert payload["quality"]["complete"] is False
    assert payload["quality"]["budget_cut"] is True
    token = payload["refinement"]["token"]
    refined = session.wait_for_refinement(token, timeout=30.0)
    assert refined["status"] == "done"
    assert refined["quality"]["complete"] is True
    assert _numbers(refined["recommendations"]) == _numbers(plain)
    session.close()


def test_sigkilled_worker_loses_tokens_loudly(anytime_server, client):
    session = client.create_session()
    payload = session.recommend(budget_ms=1)
    token = payload["refinement"]["token"]

    owner = {s["session_id"]: s for s in client.sessions()}[session.id]["worker"]
    info = {w["worker"]: w for w in client.workers()["workers"]}
    os.kill(info[owner]["pid"], signal.SIGKILL)
    _wait_restarted(client, owner)

    # the restarted worker has an empty refinement store: the poll answers
    # a typed loss (or, if the job finished before the kill landed on the
    # *other* worker, a completed result) — never a hang, never a 500
    url = (
        anytime_server.url
        + f"/sessions/{session.id}/recommendations/refine/{token}"
    )
    deadline = time.monotonic() + 30.0
    while True:
        status, body = _raw(url)
        if status != 503:  # transient worker_unavailable during restart
            break
        assert time.monotonic() < deadline, "refine poll never settled"
        time.sleep(0.1)
    if status == 200:
        assert body["status"] == "done"
    else:
        assert status == 410, body
        assert body["error"]["code"] == "refinement_lost"
    # a fresh budgeted request works again end to end
    fresh = session.recommend(budget_ms=60_000)
    assert fresh["quality"]["complete"] is True
    session.close()
