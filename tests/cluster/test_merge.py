"""Merge equivalence: scatter/gather reproduces single-process bytes.

Integer count matrices over disjoint shard sets compose by addition, so
a scattered phase scan merged with :func:`merge_scans` must equal the
full scan *exactly* — same count matrices, same selected maps, same
utilities, same diversity — for every shard count, for sparse data
(missing values, NaN scores, empty multi-valued sets), for empty
partitions, and across the shared-memory attach boundary."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.merge import (
    PartialScan,
    merge_scans,
    partial_scan,
    preview_generator,
    result_from_scans,
    scan_specs,
)
from repro.cluster.partition import ShardMap, attach_database, share_database
from repro.cluster.shm import SegmentRegistry
from repro.core.engine import SubDExConfig
from repro.core.generator import RMSetGenerator
from repro.core.utility import SeenMaps
from repro.index.delta import direct_counts
from repro.index.verify import result_fingerprint
from repro.model.groups import RatingGroup, SelectionCriteria

CRITERIA = [
    pytest.param(SelectionCriteria.root(), id="root"),
    pytest.param(SelectionCriteria.of(reviewer={"gender": "M"}), id="reviewer"),
    pytest.param(SelectionCriteria.of(item={"city": "NYC"}), id="item"),
    pytest.param(
        SelectionCriteria.of(
            reviewer={"occupation": "student"}, item={"cuisine": "Pizza"}
        ),
        id="both-sides-multi-valued",
    ),
]


def _generator() -> RMSetGenerator:
    return preview_generator(RMSetGenerator(SubDExConfig().generator))


def _seen(db) -> SeenMaps:
    return SeenMaps(
        db.dimensions, n_attributes=len(tuple(db.grouping_attributes()))
    )


def _scatter(db, criteria, n_shards):
    """All shards' partial scans, one per shard (maximal scatter)."""
    specs = scan_specs(db, criteria)
    record_shards = ShardMap(n_shards).record_shards(db)
    partials = [
        partial_scan(db, criteria, specs, record_shards, [shard])
        for shard in range(n_shards)
    ]
    return specs, partials


@pytest.fixture(scope="module")
def sparse_db(db_factory):
    """Missing categorical/numeric values, NaN scores, empty cuisine sets."""
    return db_factory(seed=11, missing=0.35, name="sparse")


@pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
@pytest.mark.parametrize("criteria", CRITERIA)
def test_merged_counts_equal_full_scan(sparse_db, criteria, n_shards):
    db = sparse_db
    specs, partials = _scatter(db, criteria, n_shards)
    rows = RatingGroup(db, criteria).rows
    group_size, totals = merge_scans(partials, len(specs))
    assert group_size == int(rows.size)
    for spec, total in zip(specs, totals):
        np.testing.assert_array_equal(total, direct_counts(db, spec, rows))


@pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
@pytest.mark.parametrize("criteria", CRITERIA)
def test_merged_result_fingerprint_matches_generate(
    sparse_db, criteria, n_shards
):
    db = sparse_db
    specs, partials = _scatter(db, criteria, n_shards)
    merged = result_from_scans(_generator(), db, criteria, specs, partials)
    full = _generator().generate(RatingGroup(db, criteria), _seen(db))
    assert result_fingerprint(merged) == result_fingerprint(full)


def test_empty_partitions_merge_as_identity(sparse_db):
    """More shards than reviewers: many partials carry all-zero matrices."""
    db = sparse_db
    criteria = SelectionCriteria.root()
    specs, partials = _scatter(db, criteria, 200)
    assert any(p.group_size == 0 for p in partials)
    merged = result_from_scans(_generator(), db, criteria, specs, partials)
    full = _generator().generate(RatingGroup(db, criteria), _seen(db))
    assert result_fingerprint(merged) == result_fingerprint(full)


def test_worker_style_uneven_split(sparse_db):
    """Shards grouped per worker (the supervisor's assignment) merge the same."""
    db = sparse_db
    criteria = SelectionCriteria.of(reviewer={"gender": "F"})
    specs = scan_specs(db, criteria)
    shard_map = ShardMap(7)
    record_shards = shard_map.record_shards(db)
    partials = [
        partial_scan(
            db, criteria, specs, record_shards, shard_map.owned_shards(w, 3)
        )
        for w in range(3)
    ]
    merged = result_from_scans(_generator(), db, criteria, specs, partials)
    full = _generator().generate(RatingGroup(db, criteria), _seen(db))
    assert result_fingerprint(merged) == result_fingerprint(full)


def test_equivalence_across_shared_memory_attach(sparse_db):
    """Partials scanned on an attached (zero-copy) database merge to the
    same bytes as a full scan of the original — the cross-process path."""
    db = sparse_db
    owner, attacher = SegmentRegistry(), SegmentRegistry()
    try:
        attached = attach_database(share_database(db, owner), attacher)
        criteria = SelectionCriteria.of(item={"city": "Austin"})
        specs = scan_specs(attached, criteria)
        record_shards = ShardMap(5).record_shards(attached)
        partials = [
            partial_scan(attached, criteria, specs, record_shards, [shard])
            for shard in range(5)
        ]
        merged = result_from_scans(
            _generator(), attached, criteria, specs, partials
        )
        full = _generator().generate(RatingGroup(db, criteria), _seen(db))
        assert result_fingerprint(merged) == result_fingerprint(full)
    finally:
        attacher.close_attached()
        owner.unlink_all()


def test_merge_rejects_mismatched_spec_count(sparse_db):
    db = sparse_db
    criteria = SelectionCriteria.root()
    specs, partials = _scatter(db, criteria, 2)
    with pytest.raises(ValueError):
        merge_scans(partials, len(specs) + 1)


def test_merge_of_nothing_is_empty():
    group_size, totals = merge_scans([], 0)
    assert group_size == 0 and totals == ()


def test_partial_scan_with_no_shards_is_empty(sparse_db):
    db = sparse_db
    criteria = SelectionCriteria.root()
    specs = scan_specs(db, criteria)
    record_shards = ShardMap(4).record_shards(db)
    partial = partial_scan(db, criteria, specs, record_shards, [])
    assert partial.group_size == 0
    assert all(not counts.any() for counts in partial.counts)
