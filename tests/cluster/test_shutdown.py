"""Graceful shutdown of a sharded deployment.

``graceful_shutdown`` (and SIGTERM on ``python -m repro serve``) must
drain the workers — final checkpoint flush inside each worker — join the
processes, unlink every shared-memory segment, and exit 0, even with
requests in flight."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cluster.shm import SEGMENT_PREFIX, segment_owner_pid
from repro.core.engine import SubDEx, SubDExConfig
from repro.server import ServerConfig, ServerError, SubDExClient, build_server

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _segments_owned_by(pid: int) -> list[str]:
    return [
        name
        for name in os.listdir("/dev/shm")
        if name.startswith(SEGMENT_PREFIX) and segment_owner_pid(name) == pid
    ]


def test_graceful_shutdown_under_load(db_factory, tmp_path):
    checkpoint_dir = tmp_path / "checkpoints"
    server = build_server(
        {"synthetic": lambda: SubDEx(db_factory(seed=3), SubDExConfig())},
        config=ServerConfig(
            workers=2, shards=8, checkpoint_dir=str(checkpoint_dir)
        ),
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()

    client = SubDExClient(server.url)
    sessions = [client.create_session() for __ in range(3)]
    owner_pid = os.getpid()
    assert _segments_owned_by(owner_pid)

    stop = threading.Event()
    served = [0]

    def hammer():
        with SubDExClient(server.url) as mine:
            while not stop.is_set():
                try:
                    mine.request("GET", f"/sessions/{sessions[0].id}/maps")
                    served[0] += 1
                except Exception:
                    return  # the server is draining/away: load ends here

    threads = [threading.Thread(target=hammer, daemon=True) for __ in range(2)]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + 10.0
    while served[0] == 0 and time.monotonic() < deadline:
        time.sleep(0.05)
    assert served[0] > 0  # load is genuinely in flight

    server.graceful_shutdown(drain_seconds=8.0)
    stop.set()
    for thread in threads:
        thread.join(5.0)

    assert all(
        state["state"] == "stopped" and not state["alive"]
        for state in server.cluster.worker_states()
    )
    assert _segments_owned_by(owner_pid) == []
    # the drain flushed one final checkpoint per live session
    checkpoints = [
        path
        for worker_dir in checkpoint_dir.glob("worker-*")
        for path in worker_dir.iterdir()
    ]
    assert checkpoints
    client.close()


@pytest.mark.parametrize("workers", [2])
def test_serve_sigterm_drains_and_exits_zero(tmp_path, workers):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--dataset",
            "yelp",
            "--scale",
            "0.01",
            "--port",
            "0",
            "--workers",
            str(workers),
            "--shards",
            "4",
            "--checkpoint-dir",
            str(tmp_path / "checkpoints"),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        # log lines interleave with the banner on the merged stream
        url = cluster_line = None
        for __ in range(50):
            line = process.stdout.readline()
            if not line:
                break
            if "SubDEx serving" in line:
                url = line.strip().rsplit(" ", 1)[-1]
            elif "cluster:" in line:
                cluster_line = line
                break
        assert url and url.startswith("http://"), f"no banner, url={url!r}"
        assert cluster_line and f"cluster: {workers} workers" in cluster_line

        deadline = time.monotonic() + 60.0
        client = SubDExClient(url, timeout=10.0)
        while True:
            try:
                health = client.health()
                if health["cluster"]["up"] == workers:
                    break
            except (ServerError, OSError):
                pass
            if time.monotonic() > deadline:
                raise AssertionError("cluster never became healthy")
            time.sleep(0.2)

        session = client.create_session()
        assert session.maps()["maps"]
        assert _segments_owned_by(process.pid)

        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
    assert _segments_owned_by(process.pid) == []
