"""Consistent-hash ring: deterministic, stable across instances, and
spread over every slot — a restarted front keeps routing sessions to the
same worker slot."""

from __future__ import annotations

import uuid

import pytest

from repro.cluster.hashing import HashRing


def _keys(n: int) -> list[str]:
    rng_free = [uuid.uuid5(uuid.NAMESPACE_DNS, str(i)).hex for i in range(n)]
    return rng_free


def test_slots_in_range():
    ring = HashRing(3)
    for key in _keys(200):
        assert 0 <= ring.slot_for(key) < 3


def test_deterministic_across_instances():
    keys = _keys(300)
    first = [HashRing(4).slot_for(key) for key in keys]
    second = [HashRing(4).slot_for(key) for key in keys]
    assert first == second


def test_every_slot_receives_keys():
    ring = HashRing(2)
    slots = {ring.slot_for(key) for key in _keys(200)}
    assert slots == {0, 1}


def test_reasonable_balance():
    ring = HashRing(4)
    counts = [0, 0, 0, 0]
    for key in _keys(2000):
        counts[ring.slot_for(key)] += 1
    # vnodes keep the spread within a loose factor of perfect balance
    assert min(counts) > 2000 / 4 / 4


def test_single_slot_ring():
    ring = HashRing(1)
    assert {ring.slot_for(key) for key in _keys(50)} == {0}


def test_invalid_slot_count():
    with pytest.raises(ValueError):
        HashRing(0)
