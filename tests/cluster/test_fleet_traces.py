"""Fleet trace collection in a 2-worker deployment.

The acceptance path: one request produces ONE stitched tree — front
spans (``request`` → ``cluster.scatter`` → ``worker.rpc``) with each
worker's shipped fragment (``worker.request`` → ``engine.*`` →
``phase.scan``) re-parented under its rpc span, per-worker pid
attribution, ``partial: true`` when a worker died mid-request, and
exemplars on the OpenMetrics exposition that resolve back to collected
traces.
"""

from __future__ import annotations

import json
import os
import re
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.engine import SubDEx, SubDExConfig
from repro.server import ServerConfig, SubDExClient, build_server
from repro.server.client import RetryPolicy, ServerError


def start_server(db_factory, tmp_path, **config_overrides):
    server = build_server(
        {"synthetic": lambda: SubDEx(db_factory(seed=3), SubDExConfig())},
        config=ServerConfig(
            workers=2,
            shards=8,
            worker_heartbeat_seconds=0.15,
            checkpoint_dir=str(tmp_path / "checkpoints"),
            **config_overrides,
        ),
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


@pytest.fixture()
def fleet_server(db_factory, tmp_path):
    server = start_server(db_factory, tmp_path)
    yield server
    server.graceful_shutdown(drain_seconds=5.0)


@pytest.fixture()
def client(fleet_server):
    with SubDExClient(fleet_server.url) as instance:
        yield instance


def _raw(url: str, method: str = "GET", body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url,
        method=method,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(
                response.read()
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def _worker_pids(client) -> dict[int, int]:
    return {w["worker"]: w["pid"] for w in client.workers()["workers"]}


def _names(node, out=None):
    out = out if out is not None else []
    out.append(node["name"])
    for child in node["children"]:
        _names(child, out)
    return out


def _find_all(node, name):
    found = [node] if node["name"] == name else []
    for child in node["children"]:
        found.extend(_find_all(child, name))
    return found


class TestStitchedTrees:
    def test_scatter_scan_is_one_stitched_tree(self, client):
        client.cluster_maps()
        record = client.trace(client.last_trace_id)

        assert record["partial"] is False
        assert record["route"] == "POST /cluster/maps"
        # per-worker attribution: both workers, their real pids
        assert sorted(w["worker"] for w in record["workers"]) == [0, 1]
        assert sorted(w["pid"] for w in record["workers"]) == sorted(
            _worker_pids(client).values()
        )
        for meta in record["workers"]:
            assert meta["matched"] is True
            assert isinstance(meta["clock_skew_ms"], float)

        tree = record["tree"]
        assert tree["name"] == "request"
        names = _names(tree)
        for expected in (
            "request",
            "cluster.scatter",
            "worker.rpc",
            "worker.request",
            "engine.scan",
            "phase.scan",
        ):
            assert expected in names, f"{expected} missing from {names}"
        rpcs = _find_all(tree, "worker.rpc")
        assert len(rpcs) == 2
        for rpc in rpcs:
            (fragment_root,) = rpc["children"]
            assert fragment_root["name"] == "worker.request"
            assert (
                fragment_root["attributes"]["worker"]
                == rpc["attributes"]["worker"]
            )
            assert fragment_root["attributes"]["pid"] in _worker_pids(
                client
            ).values()
            leaf_names = _names(fragment_root)
            assert "engine.scan" in leaf_names
            assert "phase.scan" in leaf_names

    def test_session_step_trace_carries_worker_engine_spans(self, client):
        session = client.create_session()
        record = client.trace(client.last_trace_id)
        assert record["route"] == "POST /sessions"
        assert record["partial"] is False
        (meta,) = record["workers"]
        owner = {
            s["session_id"]: s["worker"] for s in client.sessions()
        }[session.id]
        assert meta["worker"] == owner
        names = _names(record["tree"])
        assert "worker.rpc" in names
        assert "worker.request" in names
        assert "phase.scan" in names  # the engine ran inside the worker
        session.close()

    def test_search_and_headers(self, fleet_server, client):
        client.cluster_maps()
        scan_trace = client.last_trace_id
        listing = client.traces(op="cluster/maps")
        assert listing["tracing_enabled"] is True
        assert listing["returned"] >= 1
        assert scan_trace in {t["trace_id"] for t in listing["traces"]}
        assert listing["sampling"]["kept"] >= 1
        # the header, the search hit and the fetch all name the same trace
        __, headers, __ = _raw(fleet_server.url + "/cluster/maps",
                               method="POST", body={})
        assert client.trace(headers["X-Trace-Id"])["trace_id"] == headers[
            "X-Trace-Id"
        ]

    def test_unknown_trace_is_a_clean_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.trace("f" * 32)
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_trace"


class TestFaultInjection:
    def test_killed_worker_yields_partial_trace_not_hang(self, client):
        pids = _worker_pids(client)
        os.kill(pids[1], signal.SIGKILL)
        time.sleep(0.1)

        # the scan must answer promptly either way; its trace must exist
        # and be explicit about the missing worker
        try:
            client.cluster_maps()
        except ServerError as error:
            assert error.status == 503
        record = client.trace(client.last_trace_id)
        assert record is not None
        assert record["partial"] is True
        claimed = {w["worker"] for w in record["workers"] if w["matched"]}
        assert 1 not in claimed  # the killed worker never shipped a fragment

    def test_error_messages_quote_resolvable_trace_ids(
        self, fleet_server, client
    ):
        session = client.create_session()
        owner = {
            s["session_id"]: s["worker"] for s in client.sessions()
        }[session.id]
        os.kill(_worker_pids(client)[owner], signal.SIGKILL)
        time.sleep(0.1)

        impatient = SubDExClient(
            fleet_server.url, retry=RetryPolicy(max_attempts=1)
        )
        with pytest.raises(ServerError) as excinfo:
            impatient.request("GET", f"/sessions/{session.id}/maps")
        impatient.close()
        error = excinfo.value
        assert error.status == 503
        assert error.trace_id is not None
        assert f"[trace {error.trace_id}]" in str(error)
        # the quoted id resolves to the fleet-assembled trace of exactly
        # the failed request
        record = client.trace(error.trace_id)
        assert record["partial"] is True
        assert record["spans"][0]["attributes"]["status"] == 503


class TestTailSampling:
    def test_errors_kept_100_percent_while_ok_dropped(
        self, db_factory, tmp_path
    ):
        server = start_server(db_factory, tmp_path, trace_sample_rate=0.0)
        try:
            with SubDExClient(server.url) as client:
                for _ in range(4):
                    client.cluster_maps()  # healthy: sampled out at 0.0
                pids = _worker_pids(client)
                os.kill(pids[0], signal.SIGKILL)
                os.kill(pids[1], signal.SIGKILL)
                time.sleep(0.1)
                failures = 0
                for _ in range(5):
                    status, __, __ = _raw(
                        server.url + "/cluster/maps", method="POST", body={}
                    )
                    if status >= 500:
                        failures += 1
                assert failures == 5

                listing = client.traces(op="cluster/maps")
                statuses = [
                    t["spans"][0]["attributes"].get("status")
                    for t in listing["traces"]
                ]
                # every failed scan kept, every healthy one sampled out
                assert statuses.count(503) == 5
                assert 200 not in statuses
                sampling = listing["sampling"]
                assert sampling["kept_by_reason"].get("error", 0) >= 5
                assert sampling["dropped"] >= 4
        finally:
            server.graceful_shutdown(drain_seconds=5.0)


class TestOpenMetricsExemplars:
    def test_prometheus_exposition_exemplars_resolve(
        self, fleet_server, client
    ):
        session = client.create_session()
        client.request("GET", f"/sessions/{session.id}/maps")
        body = urllib.request.urlopen(
            fleet_server.url + "/metrics?format=prometheus", timeout=30
        ).read().decode()
        assert body.rstrip().endswith("# EOF")
        exemplar_ids = set(
            re.findall(
                r'subdex_slo_request_seconds_bucket\{[^}]*\} \S+'
                r' # \{trace_id="([0-9a-f]+)"\}',
                body,
            )
        )
        assert exemplar_ids, "no exemplars on SLO request buckets"
        for trace_id in exemplar_ids:
            record = client.trace(trace_id)
            assert record["trace_id"] == trace_id
            assert record["tree"]["name"] == "request"
        session.close()
