"""Tests for the BENCH_*.json schema: write, validate, load, merge."""

from __future__ import annotations

import json

import pytest

from repro.perf import (
    BenchResult,
    Metric,
    load_results_dir,
    merge_best,
    validate_bench_result,
    write_bench_json,
)
from repro.perf.benchjson import bench_json_path


class TestWriteBenchJson:
    def test_writes_schema_valid_file(self, tmp_path):
        path = write_bench_json(
            "demo",
            {
                "elapsed_s": 1.25,
                "speedup": Metric(3.0, unit="x", higher_is_better=True,
                                  portable=True),
            },
            config={"scale": 0.1},
            directory=tmp_path,
        )
        assert path == bench_json_path(tmp_path, "demo")
        payload = json.loads(path.read_text())
        assert validate_bench_result(payload) == []
        assert payload["schema_version"] == 1
        assert payload["name"] == "demo"
        assert payload["config"] == {"scale": 0.1}
        # plain floats become lower-is-better seconds metrics
        elapsed = payload["metrics"]["elapsed_s"]
        assert elapsed == {
            "value": 1.25,
            "unit": "s",
            "higher_is_better": False,
            "portable": False,
        }
        assert payload["metrics"]["speedup"]["higher_is_better"] is True
        assert "python" in payload["env"]

    def test_refuses_nan(self, tmp_path):
        with pytest.raises(ValueError, match="NaN"):
            write_bench_json(
                "bad", {"x": float("nan")}, directory=tmp_path
            )


class TestValidate:
    def _valid(self) -> dict:
        return json.loads(
            json.dumps(
                BenchResult(
                    name="ok",
                    metrics={"m": Metric(1.0)},
                    config={},
                ).to_dict()
            )
        )

    def test_valid_payload(self):
        assert validate_bench_result(self._valid()) == []

    def test_rejects_non_object(self):
        assert validate_bench_result([1, 2]) == [
            "payload is not a JSON object"
        ]

    def test_rejects_wrong_version(self):
        payload = self._valid()
        payload["schema_version"] = 99
        assert any("schema_version" in e for e in validate_bench_result(payload))

    def test_rejects_empty_metrics(self):
        payload = self._valid()
        payload["metrics"] = {}
        assert any("metrics" in e for e in validate_bench_result(payload))

    def test_rejects_bad_direction(self):
        payload = self._valid()
        payload["metrics"]["m"]["higher_is_better"] = "up"
        assert any(
            "higher_is_better" in e for e in validate_bench_result(payload)
        )

    def test_rejects_non_numeric_value(self):
        payload = self._valid()
        payload["metrics"]["m"]["value"] = "fast"
        assert any(".value" in e for e in validate_bench_result(payload))

    def test_rejects_missing_env_keys(self):
        payload = self._valid()
        payload["env"] = {"machine": "x86_64"}
        assert any("env" in e for e in validate_bench_result(payload))


class TestLoadResultsDir:
    def test_loads_and_reports_problems(self, tmp_path):
        write_bench_json("good", {"t": 1.0}, directory=tmp_path)
        (tmp_path / "BENCH_corrupt.json").write_text("{not json")
        (tmp_path / "BENCH_invalid.json").write_text(
            json.dumps({"schema_version": 1})
        )
        (tmp_path / "unrelated.json").write_text("{}")
        results, problems = load_results_dir(tmp_path)
        assert set(results) == {"good"}
        assert set(problems) == {"BENCH_corrupt.json", "BENCH_invalid.json"}
        assert any("unreadable" in e for e in problems["BENCH_corrupt.json"])


class TestMergeBest:
    def _run(self, lower: float, higher: float, info: float) -> BenchResult:
        return BenchResult(
            name="bench",
            metrics={
                "elapsed": Metric(lower, higher_is_better=False),
                "rate": Metric(higher, higher_is_better=True),
                "note": Metric(info, higher_is_better=None),
            },
            config={"scale": 1},
        )

    def test_direction_aware_merge(self):
        merged = merge_best(
            [
                self._run(2.0, 10.0, 1.0),
                self._run(1.5, 12.0, 2.0),
                self._run(3.0, 8.0, 3.0),
            ]
        )
        assert merged.metrics["elapsed"].value == 1.5  # min of lower-better
        assert merged.metrics["rate"].value == 12.0  # max of higher-better
        assert merged.metrics["note"].value == 3.0  # last informational
        assert merged.config["best_of"] == 3

    def test_requires_at_least_one_run(self):
        with pytest.raises(ValueError):
            merge_best([])
