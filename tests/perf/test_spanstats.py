"""Tests for span-derived cost accounting (SpanStatsSink, tree_costs)."""

from __future__ import annotations

import pytest

from repro.obs.tracing import Span, Trace
from repro.perf import SpanStatsSink, tree_costs
from repro.perf.spanstats import percentile


def _span(
    name: str,
    span_id: str,
    parent_id: str | None,
    seconds: float,
    status: str = "ok",
) -> Span:
    span = Span(name, "t1", span_id, parent_id, {})
    span.end = span.start + seconds
    span.status = status
    return span


def _trace(*spans: Span) -> Trace:
    return Trace("t1", tuple(spans))


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 50.0) is None

    def test_single_sample(self):
        assert percentile([4.0], 95.0) == 4.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 50.0) == pytest.approx(5.0)
        assert percentile([1.0, 2.0, 3.0, 4.0], 100.0) == 4.0

    def test_validates_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestSpanStatsSink:
    def test_exclusive_subtracts_direct_children(self):
        sink = SpanStatsSink()
        sink(
            _trace(
                _span("request", "r", None, 1.0),
                _span("engine.step", "s", "r", 0.7),
                _span("db.scan", "d", "s", 0.4),
            )
        )
        rows = {
            row["name"]: row for row in sink.summary()["operations"]
        }
        assert rows["request"]["exclusive_ms"] == pytest.approx(300.0)
        assert rows["engine.step"]["exclusive_ms"] == pytest.approx(300.0)
        assert rows["db.scan"]["exclusive_ms"] == pytest.approx(400.0)
        # exclusive times sum to the root's inclusive time
        total_exclusive = sum(r["exclusive_ms"] for r in rows.values())
        assert total_exclusive == pytest.approx(
            rows["request"]["inclusive_ms"]
        )

    def test_exclusive_clamped_at_zero(self):
        # a child outliving its parent must not produce negative self time
        sink = SpanStatsSink()
        sink(
            _trace(
                _span("parent", "p", None, 0.1),
                _span("child", "c", "p", 0.5),
            )
        )
        rows = {row["name"]: row for row in sink.summary()["operations"]}
        assert rows["parent"]["exclusive_ms"] == 0.0

    def test_counts_errors_and_traces(self):
        sink = SpanStatsSink()
        sink(_trace(_span("op", "a", None, 0.01)))
        sink(_trace(_span("op", "b", None, 0.02, status="error")))
        summary = sink.summary()
        assert summary["traces_seen"] == 2
        (row,) = summary["operations"]
        assert row["count"] == 2
        assert row["errors"] == 1
        assert row["p50_ms"] is not None and row["p95_ms"] is not None

    def test_summary_sorted_and_limited(self):
        sink = SpanStatsSink()
        sink(
            _trace(
                _span("root", "r", None, 1.0),
                _span("cheap", "a", "r", 0.01),
                _span("costly", "b", "r", 0.8),
            )
        )
        operations = sink.summary()["operations"]
        assert operations[0]["name"] == "costly"
        assert len(sink.summary(limit=1)["operations"]) == 1

    def test_reset(self):
        sink = SpanStatsSink()
        sink(_trace(_span("op", "a", None, 0.01)))
        sink.reset()
        assert sink.summary() == {"traces_seen": 0, "operations": []}

    def test_reservoir_size_validated(self):
        with pytest.raises(ValueError):
            SpanStatsSink(reservoir_size=0)

    def test_collect_metric_families(self):
        sink = SpanStatsSink()
        sink(
            _trace(
                _span("root", "r", None, 0.2),
                _span("inner", "i", "r", 0.1),
            )
        )
        families = {family.name: family for family in sink.collect()}
        assert set(families) == {
            "subdex_span_count_total",
            "subdex_span_errors_total",
            "subdex_span_inclusive_seconds_total",
            "subdex_span_exclusive_seconds_total",
            "subdex_span_seconds",
            "subdex_span_quantile_seconds",
        }
        counts = families["subdex_span_count_total"]
        assert counts.kind == "counter"
        labels = {
            sample.labels["name"]: sample.value for sample in counts.samples
        }
        assert labels == {"root": 1, "inner": 1}
        quantiles = families["subdex_span_quantile_seconds"]
        assert quantiles.kind == "gauge"
        assert {
            sample.labels["quantile"] for sample in quantiles.samples
        } == {"p50", "p95"}

    def test_collect_emits_cumulative_histogram(self):
        sink = SpanStatsSink()
        # 0.003s lands in the 0.005 bucket, 0.2s in the 0.25 bucket,
        # 99s overflows every bound
        sink(_trace(_span("op", "a", None, 0.003)))
        sink(_trace(_span("op", "b", None, 0.2)))
        sink(_trace(_span("op", "c", None, 99.0)))
        families = {family.name: family for family in sink.collect()}
        histogram = families["subdex_span_seconds"]
        assert histogram.kind == "histogram"
        buckets = {
            sample.labels["le"]: sample.value
            for sample in histogram.samples
            if sample.suffix == "_bucket"
        }
        assert buckets["0.001"] == 0
        assert buckets["0.005"] == 1
        assert buckets["0.25"] == 2
        assert buckets["30"] == 2
        assert buckets["+Inf"] == 3
        # counts are monotone non-decreasing in bound order
        ordered = [
            sample.value
            for sample in histogram.samples
            if sample.suffix == "_bucket"
        ]
        assert ordered == sorted(ordered)
        (sum_sample,) = [
            s for s in histogram.samples if s.suffix == "_sum"
        ]
        assert sum_sample.value == pytest.approx(0.003 + 0.2 + 99.0)
        (count_sample,) = [
            s for s in histogram.samples if s.suffix == "_count"
        ]
        assert count_sample.value == 3

    def test_collect_rendering_escapes_label_values(self):
        sink = SpanStatsSink()
        tricky = 'op with "quotes" and \\slash'
        sink(_trace(_span(tricky, "a", None, 0.01)))
        families = {family.name: family for family in sink.collect()}
        text = families["subdex_span_seconds"].render()
        assert 'name="op with \\"quotes\\" and \\\\slash"' in text
        assert "subdex_span_seconds_bucket" in text
        assert 'le="+Inf"' in text


class TestTreeCosts:
    def test_flattens_debug_tree(self):
        tree = {
            "name": "request",
            "duration_ms": 100.0,
            "children": [
                {"name": "step", "duration_ms": 60.0, "children": []},
                {"name": "step", "duration_ms": 20.0, "children": []},
            ],
        }
        rows = tree_costs(tree)
        by_name = {row["name"]: row for row in rows}
        assert by_name["step"]["count"] == 2
        assert by_name["step"]["inclusive_ms"] == pytest.approx(80.0)
        assert by_name["request"]["exclusive_ms"] == pytest.approx(20.0)
        # heaviest exclusive first
        assert rows[0]["name"] == "step"

    def test_empty_tree(self):
        assert tree_costs({}) == []
