"""Tests for the stdlib sampling wall-clock profiler."""

from __future__ import annotations

import threading
import time

import pytest

from repro.perf import (
    Profile,
    SamplingProfiler,
    filter_stacks,
    merge_profiles,
    profile_for,
)


def _spin_here(stop: threading.Event) -> None:
    """A busy loop the sampler should catch by name."""
    while not stop.is_set():
        sum(range(500))


@pytest.fixture
def busy_thread():
    stop = threading.Event()
    thread = threading.Thread(target=_spin_here, args=(stop,), daemon=True)
    thread.start()
    yield thread
    stop.set()
    thread.join(timeout=5.0)


class TestSamplingProfiler:
    def test_captures_busy_thread(self, busy_thread):
        profile = profile_for(0.3, interval=0.002)
        assert profile.n_samples > 0
        assert profile.total_samples() >= profile.n_samples
        spinning = filter_stacks(profile, "_spin_here")
        assert spinning, "busy loop never appeared in any sampled stack"
        # labels are module:function
        assert any(
            label.endswith(":_spin_here")
            for stack in spinning
            for label in stack
        )

    def test_no_thread_after_stop(self, busy_thread):
        profiler = SamplingProfiler(interval=0.002)
        profiler.start()
        time.sleep(0.05)
        profiler.stop()
        assert not profiler.running
        assert not any(
            "profiler" in thread.name for thread in threading.enumerate()
        )

    def test_one_shot_start(self):
        profiler = SamplingProfiler()
        profiler.start()
        with pytest.raises(RuntimeError, match="one-shot"):
            profiler.start()
        profiler.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError, match="never started"):
            SamplingProfiler().stop()

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)
        with pytest.raises(ValueError):
            SamplingProfiler(interval=2.0)

    def test_context_manager(self, busy_thread):
        with SamplingProfiler(interval=0.002) as profiler:
            time.sleep(0.1)
        assert profiler.profile is not None
        assert profiler.profile.n_samples > 0

    def test_profile_for_validates_seconds(self):
        with pytest.raises(ValueError):
            profile_for(0.0)

    def test_own_thread_not_sampled(self, busy_thread):
        profile = profile_for(0.2, interval=0.002)
        assert not filter_stacks(profile, "subdex-profiler")


class TestProfileRendering:
    def _profile(self) -> Profile:
        return Profile(
            {
                ("mod:a", "mod:b"): 3,
                ("mod:a", "mod:c"): 7,
                ("mod:a",): 1,
            },
            n_samples=11,
            duration_seconds=0.05,
            interval_seconds=0.005,
        )

    def test_collapsed_format(self):
        text = self._profile().render_collapsed()
        lines = text.splitlines()
        # heaviest stack first; "frame;frame count" per line
        assert lines[0] == "mod:a;mod:c 7"
        assert "mod:a;mod:b 3" in lines
        assert text.endswith("\n")

    def test_collapsed_empty(self):
        empty = Profile({}, 0, 0.0, 0.005)
        assert empty.render_collapsed() == ""

    def test_to_dict(self):
        payload = self._profile().to_dict()
        assert payload["n_samples"] == 11
        assert payload["n_stacks"] == 3
        assert payload["total_stack_samples"] == 11
        assert payload["stacks"][0]["count"] == 7

    def test_top_functions(self):
        top = self._profile().top_functions(limit=2)
        assert top[0] == ("mod:c", 7)

    def test_merge_profiles(self):
        merged = merge_profiles([self._profile(), self._profile()])
        assert merged.stacks[("mod:a", "mod:c")] == 14
        assert merged.n_samples == 22
