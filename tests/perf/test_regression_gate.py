"""Tests for the regression gate: compare_results/compare_dirs and the
check_regression.py CLI, including the committed baseline's self-check."""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.perf import (
    BenchResult,
    Metric,
    compare_dirs,
    compare_results,
    write_bench_json,
)

REPO = Path(__file__).resolve().parents[2]
BASELINE_DIR = REPO / "benchmarks" / "baseline"
CHECK_SCRIPT = REPO / "scripts" / "check_regression.py"


def _result(**metrics: Metric) -> BenchResult:
    return BenchResult(name="bench", metrics=dict(metrics), config={})


class TestCompareResults:
    def test_within_tolerance_is_ok(self):
        comparisons = compare_results(
            _result(t=Metric(1.0)), _result(t=Metric(1.1)), threshold=0.25
        )
        assert [c.status for c in comparisons] == ["ok"]

    def test_regression_past_threshold(self):
        (comparison,) = compare_results(
            _result(t=Metric(1.0)), _result(t=Metric(1.5)), threshold=0.25
        )
        assert comparison.status == "regression"
        assert comparison.relative_change == pytest.approx(0.5)

    def test_higher_is_better_direction(self):
        (comparison,) = compare_results(
            _result(r=Metric(10.0, unit="x", higher_is_better=True)),
            _result(r=Metric(6.0, unit="x", higher_is_better=True)),
        )
        assert comparison.status == "regression"
        (comparison,) = compare_results(
            _result(r=Metric(10.0, unit="x", higher_is_better=True)),
            _result(r=Metric(14.0, unit="x", higher_is_better=True)),
        )
        assert comparison.status == "improvement"

    def test_min_seconds_forgives_tiny_timing_noise(self):
        # 3ms -> 5ms is 66% relative but sub-noise absolute
        (comparison,) = compare_results(
            _result(t=Metric(0.003)), _result(t=Metric(0.005))
        )
        assert comparison.status == "ok"
        # the same relative jump on a non-second unit is NOT forgiven
        (comparison,) = compare_results(
            _result(t=Metric(0.003, unit="x")),
            _result(t=Metric(0.005, unit="x")),
        )
        assert comparison.status == "regression"

    def test_informational_never_gated(self):
        (comparison,) = compare_results(
            _result(s=Metric(1.0, higher_is_better=None)),
            _result(s=Metric(100.0, higher_is_better=None)),
        )
        assert comparison.status == "informational"

    def test_portable_only_skips_machine_dependent(self):
        (comparison,) = compare_results(
            _result(t=Metric(1.0, portable=False)),
            _result(t=Metric(9.0, portable=False)),
            portable_only=True,
        )
        assert comparison.status == "skipped"

    def test_vanished_metric_not_compared(self):
        assert (
            compare_results(_result(gone=Metric(1.0)), _result(t=Metric(1.0)))
            == []
        )


class TestCompareDirs:
    def _write(self, directory, name, value, **metric_kwargs):
        write_bench_json(
            name,
            {"t": Metric(value, **metric_kwargs)},
            directory=directory,
        )

    def test_identical_dirs_pass(self, tmp_path):
        self._write(tmp_path, "a", 1.0)
        report = compare_dirs(tmp_path, tmp_path)
        assert not report.failed
        assert "0 regressed" in report.render()

    def test_missing_bench_fails(self, tmp_path):
        baseline, current = tmp_path / "base", tmp_path / "cur"
        self._write(baseline, "a", 1.0)
        current.mkdir()
        report = compare_dirs(baseline, current)
        assert report.failed
        assert report.missing_benches == ["a"]
        assert "MISSING" in report.render()

    def test_new_bench_reported_not_failed(self, tmp_path):
        baseline, current = tmp_path / "base", tmp_path / "cur"
        self._write(baseline, "a", 1.0)
        self._write(current, "a", 1.0)
        self._write(current, "b", 1.0)
        report = compare_dirs(baseline, current)
        assert not report.failed
        assert report.new_benches == ["b"]

    def test_invalid_file_fails(self, tmp_path):
        baseline, current = tmp_path / "base", tmp_path / "cur"
        self._write(baseline, "a", 1.0)
        self._write(current, "a", 1.0)
        (current / "BENCH_broken.json").write_text("{oops")
        report = compare_dirs(baseline, current)
        assert report.failed
        assert "BENCH_broken.json" in report.invalid_files

    def test_injected_regression_fails(self, tmp_path):
        baseline, current = tmp_path / "base", tmp_path / "cur"
        self._write(baseline, "a", 10.0, unit="x", higher_is_better=True)
        self._write(current, "a", 5.0, unit="x", higher_is_better=True)
        report = compare_dirs(baseline, current)
        assert report.failed
        assert len(report.regressions) == 1

    def test_only_filter_scopes_the_gate(self, tmp_path):
        """A focused job runs one bench; the others must not read as
        missing, but the selected bench is still fully gated."""
        baseline, current = tmp_path / "base", tmp_path / "cur"
        self._write(baseline, "a", 1.0)
        self._write(baseline, "b", 1.0)
        self._write(current, "a", 1.0)
        report = compare_dirs(baseline, current, only=["a"])
        assert not report.failed
        assert report.missing_benches == []
        assert {c.bench for c in report.comparisons} == {"a"}
        # the selected bench still regresses when it is worse
        self._write(current, "a", 9.0)
        assert compare_dirs(baseline, current, only=["a"]).failed
        # ...and a selected-but-absent bench is still missing
        report = compare_dirs(baseline, current, only=["b"])
        assert report.failed and report.missing_benches == ["b"]

    def test_only_filter_ignores_unselected_invalid_files(self, tmp_path):
        baseline, current = tmp_path / "base", tmp_path / "cur"
        self._write(baseline, "a", 1.0)
        self._write(current, "a", 1.0)
        (current / "BENCH_broken.json").write_text("{oops")
        report = compare_dirs(baseline, current, only=["a"])
        assert not report.failed
        assert compare_dirs(baseline, current, only=["broken"]).failed


@pytest.mark.skipif(
    not BASELINE_DIR.is_dir(), reason="no committed baseline yet"
)
class TestCommittedBaseline:
    def test_baseline_files_schema_valid(self):
        from repro.perf import load_results_dir

        results, problems = load_results_dir(BASELINE_DIR)
        assert problems == {}
        assert len(results) >= 3

    def test_self_compare_passes(self):
        report = compare_dirs(BASELINE_DIR, BASELINE_DIR, portable_only=True)
        assert not report.failed


class TestCheckRegressionScript:
    def _run(self, *args: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, str(CHECK_SCRIPT), *args],
            capture_output=True,
            text=True,
        )

    def test_exit_zero_on_identical(self, tmp_path):
        write_bench_json("a", {"t": 1.0}, directory=tmp_path)
        completed = self._run(
            "--baseline", str(tmp_path), "--current", str(tmp_path)
        )
        assert completed.returncode == 0, completed.stdout
        assert "REGRESSION GATE: ok" in completed.stdout

    def test_exit_nonzero_on_synthetic_regression(self, tmp_path):
        baseline = tmp_path / "base"
        current = tmp_path / "cur"
        write_bench_json(
            "a",
            {"speedup": Metric(4.0, unit="x", higher_is_better=True,
                               portable=True)},
            directory=baseline,
        )
        # inject: copy the baseline file, then halve the speedup
        current.mkdir()
        shutil.copy2(
            baseline / "BENCH_a.json", current / "BENCH_a.json"
        )
        payload = json.loads((current / "BENCH_a.json").read_text())
        payload["metrics"]["speedup"]["value"] /= 2.0
        (current / "BENCH_a.json").write_text(json.dumps(payload))
        completed = self._run(
            "--baseline", str(baseline), "--current", str(current),
            "--portable-only",
        )
        assert completed.returncode == 1
        assert "WORSE" in completed.stdout
        assert "REGRESSION GATE: FAILED" in completed.stdout

    def test_only_flag_scopes_the_cli_gate(self, tmp_path):
        baseline, current = tmp_path / "base", tmp_path / "cur"
        write_bench_json("a", {"t": 1.0}, directory=baseline)
        write_bench_json("b", {"t": 1.0}, directory=baseline)
        write_bench_json("a", {"t": 1.0}, directory=current)
        completed = self._run(
            "--baseline", str(baseline), "--current", str(current)
        )
        assert completed.returncode == 1  # b is missing without --only
        completed = self._run(
            "--baseline", str(baseline), "--current", str(current),
            "--only", "a",
        )
        assert completed.returncode == 0, completed.stdout
        assert "REGRESSION GATE: ok" in completed.stdout

    def test_exit_nonzero_on_missing_baseline_dir(self, tmp_path):
        completed = self._run(
            "--baseline", str(tmp_path / "nope"), "--current", str(tmp_path)
        )
        assert completed.returncode == 1
