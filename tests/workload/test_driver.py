"""Workload driver units: profile validation, sampling, offline report."""

from __future__ import annotations

import random

import pytest

from repro.slo import default_slo_config, scorecard_from_totals
from repro.workload import (
    RequestRecord,
    SessionOutcome,
    WorkloadProfile,
    compare_scorecards,
    offline_counts,
    offline_scorecard,
    time_to_insight_summary,
)
from repro.workload.driver import _pick_weighted, _zipf_weights


class TestWorkloadProfile:
    def test_defaults_valid(self):
        WorkloadProfile()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_seconds": 0.0},
            {"arrival_rate_per_second": -1.0},
            {"mean_think_seconds": -0.1},
            {"mean_steps": 0.5},
            {"datasets": ()},
            {"mode_mix": {}},
            {"mode_mix": {"telepathic": 1.0}},
            {"mode_mix": {"user_driven": -1.0}},
            {"insight_steps": 0},
            {"max_concurrent_sessions": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadProfile(**kwargs)


class TestSampling:
    def test_pick_weighted_respects_weights(self):
        rng = random.Random(3)
        picks = [
            _pick_weighted(rng, [("a", 0.9), ("b", 0.1)]) for __ in range(500)
        ]
        assert picks.count("a") > picks.count("b")

    def test_pick_weighted_zero_weight_never_chosen(self):
        rng = random.Random(3)
        picks = {
            _pick_weighted(rng, [("a", 1.0), ("b", 0.0)]) for __ in range(200)
        }
        assert picks == {"a"}

    def test_zipf_weights_are_heavy_tailed(self):
        weights = _zipf_weights(4, 1.0)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == pytest.approx(1.0)
        assert weights[1] == pytest.approx(0.5)


def record(
    route: str = "GET /sessions/{id}/maps",
    status: int = 200,
    seconds: float = 0.01,
    **kwargs,
) -> RequestRecord:
    return RequestRecord(
        route=route,
        status=status,
        seconds=seconds,
        wall_seconds=seconds,
        **kwargs,
    )


class TestOfflineCounts:
    def test_tallies_by_class(self):
        config = default_slo_config()
        records = [
            record("POST /sessions"),
            record("GET /sessions/{id}/maps"),
            record("GET /sessions/{id}/maps", status=500),
            record("GET /sessions/{id}/recommendations", seconds=2.0),
        ]
        counts = offline_counts(config, records)
        assert counts["steps"]["count"] == 1
        assert counts["reads"]["count"] == 2
        assert counts["reads"]["errors"] == 1
        # 2s blows the 800ms recommendations budget
        assert counts["recommendations"]["within_budget"] == 0

    def test_unobserved_records_excluded(self):
        config = default_slo_config()
        records = [
            record(),
            record(status=0, observed=False),
        ]
        counts = offline_counts(config, records)
        assert counts["reads"]["count"] == 1

    def test_shed_degraded_rungs(self):
        config = default_slo_config()
        records = [
            record(
                "GET /sessions/{id}/recommendations",
                status=503,
                shed=True,
            ),
            record(
                "GET /sessions/{id}/recommendations",
                degraded=True,
                rung=2,
            ),
        ]
        counts = offline_counts(config, records)["recommendations"]
        assert counts["shed"] == 1
        assert counts["degraded"] == 1
        assert counts["rungs"] == {"2": 1}


class TestCompareScorecards:
    def _server_card(self, records):
        """A server scorecard built from the same records via the same
        windows shape the tracker produces — a self-consistency fixture."""
        config = default_slo_config()
        counts = offline_counts(config, records)
        totals = {cls: {"total": c} for cls, c in counts.items()}
        return config, scorecard_from_totals(config, totals)

    def test_identical_tallies_match(self):
        records = [
            record("POST /sessions"),
            record("GET /sessions/{id}/maps"),
            record("GET /sessions/{id}/recommendations", seconds=0.1),
            record("GET /sessions/{id}/recommendations", status=500),
        ]
        config, card = self._server_card(records)
        comparison = compare_scorecards(config, card, records)
        assert comparison["match"] is True
        assert comparison["max_delta"] == 0.0
        assert comparison["checked"] == 3

    def test_divergent_counts_flagged(self):
        records = [record("GET /sessions/{id}/maps") for __ in range(4)]
        config, card = self._server_card(records)
        comparison = compare_scorecards(config, card, records[:-1])
        assert comparison["match"] is False
        fields = {m["field"] for m in comparison["mismatches"]}
        assert "count" in fields

    def test_divergent_rates_flagged(self):
        records = [
            record("GET /sessions/{id}/maps", status=200),
            record("GET /sessions/{id}/maps", status=500),
        ]
        config, card = self._server_card(records)
        # offline sees both as successes → availability disagrees by 0.5
        tweaked = [
            record("GET /sessions/{id}/maps", status=200),
            record("GET /sessions/{id}/maps", status=200),
        ]
        comparison = compare_scorecards(config, card, tweaked)
        assert comparison["match"] is False
        assert comparison["max_delta"] >= 0.5

    def test_missing_server_class_flagged(self):
        config = default_slo_config()
        records = [record("GET /sessions/{id}/maps")]
        comparison = compare_scorecards(
            config, {"classes": {}}, records
        )
        assert comparison["match"] is False
        assert comparison["mismatches"][0]["field"] == "present"

    def test_classes_without_offline_traffic_skipped(self):
        config = default_slo_config()
        comparison = compare_scorecards(config, {"classes": {}}, [])
        assert comparison["match"] is True
        assert comparison["checked"] == 0


class TestTimeToInsight:
    def test_summary(self):
        outcomes = [
            SessionOutcome(
                mode="recommendation_powered",
                dataset="yelp",
                time_to_insight_seconds=1.0,
                completed=True,
            ),
            SessionOutcome(
                mode="user_driven",
                dataset="yelp",
                time_to_insight_seconds=3.0,
                completed=True,
            ),
            SessionOutcome(mode="fully_automated", dataset="yelp"),
        ]
        summary = time_to_insight_summary(outcomes)
        assert summary["sessions"] == 3
        assert summary["completed"] == 2
        assert summary["with_insight"] == 2
        assert summary["p50_seconds"] == pytest.approx(2.0)
        assert summary["max_seconds"] == 3.0

    def test_empty_is_null_never_nan(self):
        summary = time_to_insight_summary([])
        assert summary["p50_seconds"] is None
        assert summary["p95_seconds"] is None
        assert summary["max_seconds"] is None
