"""Tests for the log-based personalisation extension."""

import pytest

from repro.core.history import ExplorationLog
from repro.core.modes import run_fully_automated
from repro.core.utility import SeenMaps
from repro.extensions import PersonalizedRecommendationBuilder, PreferenceModel
from repro.model import SelectionCriteria


@pytest.fixture(scope="module")
def logs(tiny_engine):
    paths = [
        run_fully_automated(tiny_engine.session(), n_steps=2) for __ in range(2)
    ]
    return [
        ExplorationLog.from_path(p, dataset="tiny", user="u") for p in paths
    ]


class TestPreferenceModel:
    def test_empty_model_neutral(self):
        model = PreferenceModel()
        assert model.is_empty
        assert model.attribute_affinity("item", "city") == 0.5
        assert model.dimension_affinity("food") == 0.5

    def test_from_logs_counts(self, logs):
        model = PreferenceModel.from_logs(logs)
        assert not model.is_empty
        assert sum(model.attribute_counts.values()) == sum(
            len(log.shown_specs()) for log in logs
        )

    def test_frequent_attribute_scores_higher(self):
        model = PreferenceModel(
            attribute_counts={("item", "city"): 9, ("item", "wifi"): 1},
            dimension_counts={"food": 10},
        )
        assert model.attribute_affinity("item", "city") > model.attribute_affinity(
            "item", "wifi"
        )

    def test_frequent_dimension_scores_higher(self):
        model = PreferenceModel(
            attribute_counts={("item", "a"): 1},
            dimension_counts={"food": 9, "service": 1},
        )
        assert model.dimension_affinity("food") > model.dimension_affinity(
            "service"
        )


class TestPersonalizedBuilder:
    def test_alpha_validated(self, tiny_engine):
        with pytest.raises(ValueError):
            PersonalizedRecommendationBuilder(
                tiny_engine.recommender, PreferenceModel(), alpha=1.5
            )

    def test_empty_model_matches_stock(self, tiny_engine, tiny_db):
        stock = tiny_engine.recommend(SelectionCriteria.root())
        personalized = PersonalizedRecommendationBuilder(
            tiny_engine.recommender, PreferenceModel()
        ).recommend(SelectionCriteria.root(), SeenMaps(tiny_db.dimensions))
        assert [r.target for r in personalized] == [r.target for r in stock]

    def test_reranking_respects_o(self, tiny_engine, tiny_db, logs):
        builder = PersonalizedRecommendationBuilder(
            tiny_engine.recommender, PreferenceModel.from_logs(logs), alpha=0.5
        )
        recos = builder.recommend(
            SelectionCriteria.root(), SeenMaps(tiny_db.dimensions), o=2
        )
        assert len(recos) == 2

    def test_strong_preference_changes_ranking(self, tiny_engine, tiny_db):
        stock = tiny_engine.recommend(SelectionCriteria.root(), o=9)
        if len(stock) < 2:
            pytest.skip("not enough recommendations to rerank")
        # build a model that loves exactly what the LAST stock reco shows
        last = stock[-1]
        counts: dict = {}
        dims: dict = {}
        for rm in last.preview.selected:
            key = (rm.spec.side.value, rm.spec.attribute)
            counts[key] = counts.get(key, 0) + 50
            dims[rm.dimension] = dims.get(rm.dimension, 0) + 50
        model = PreferenceModel(attribute_counts=counts, dimension_counts=dims)
        builder = PersonalizedRecommendationBuilder(
            tiny_engine.recommender, model, alpha=0.9
        )
        personalized = builder.recommend(
            SelectionCriteria.root(), SeenMaps(tiny_db.dimensions), o=9
        )
        # the loved operation should move up the ranking
        stock_rank = [r.target for r in stock].index(last.target)
        new_rank = [r.target for r in personalized].index(last.target)
        assert new_rank <= stock_rank
