"""Tests for subgroup score aggregation alternatives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import RatingDistribution
from repro.core.aggregation import (
    ScoreAggregation,
    aggregate_score,
    median_score,
    mode_score,
)

_counts = st.lists(st.integers(0, 30), min_size=3, max_size=7)


class TestModeScore:
    def test_clear_mode(self):
        assert mode_score(RatingDistribution([1, 5, 2, 0, 0])) == 2.0

    def test_tie_takes_lowest(self):
        assert mode_score(RatingDistribution([3, 3, 0])) == 1.0

    def test_empty_nan(self):
        assert math.isnan(mode_score(RatingDistribution([0, 0, 0])))

    @given(counts=_counts)
    def test_mode_in_scale(self, counts):
        dist = RatingDistribution(counts)
        value = mode_score(dist)
        if not math.isnan(value):
            assert 1 <= value <= dist.scale
            assert dist.count_of(int(value)) == max(dist.counts)


class TestMedianScore:
    def test_odd_count(self):
        # scores: 1, 2, 2 → median 2
        assert median_score(RatingDistribution([1, 2, 0])) == 2.0

    def test_even_count_takes_lower(self):
        # scores: 1, 3 → lower median 1
        assert median_score(RatingDistribution([1, 0, 1])) == 1.0

    def test_empty_nan(self):
        assert math.isnan(median_score(RatingDistribution([0, 0])))

    @given(counts=_counts)
    def test_median_between_min_and_max_support(self, counts):
        dist = RatingDistribution(counts)
        value = median_score(dist)
        if math.isnan(value):
            return
        present = [i + 1 for i, c in enumerate(counts) if c > 0]
        assert present[0] <= value <= present[-1]


class TestAggregateScore:
    def test_mean_matches_distribution(self):
        dist = RatingDistribution([0, 0, 0, 0, 4])
        assert aggregate_score(dist, ScoreAggregation.MEAN) == 5.0

    @pytest.mark.parametrize("aggregation", list(ScoreAggregation))
    def test_all_aggregations_defined(self, aggregation):
        dist = RatingDistribution([1, 2, 3, 2, 1])
        value = aggregate_score(dist, aggregation)
        assert 1 <= value <= 5

    @given(counts=_counts)
    def test_mode_has_highest_probability(self, counts):
        dist = RatingDistribution(counts)
        if dist.is_empty:
            return
        mode = aggregate_score(dist, ScoreAggregation.MODE)
        probabilities = dist.probabilities()
        assert probabilities[int(mode) - 1] == probabilities.max()
