"""Tests for sampled (approximate) rating maps."""

import pytest

from repro.core.rating_maps import RatingMapSpec, build_rating_map
from repro.core.sampling import approximate_rating_map, ordering_agreement
from repro.datasets import yelp
from repro.model import RatingGroup, SelectionCriteria, Side


@pytest.fixture(scope="module")
def group():
    database = yelp(seed=9, scale_factor=0.05)
    return RatingGroup(database, SelectionCriteria.root())


@pytest.fixture(scope="module")
def spec():
    return RatingMapSpec(Side.ITEM, "neighborhood", "food")


class TestApproximateRatingMap:
    def test_full_fraction_equals_exact(self, group, spec):
        exact = build_rating_map(group, spec)
        approx = approximate_rating_map(group, spec, sample_fraction=1.0)
        assert approx.rating_map.covered == exact.covered
        assert approx.mean_epsilon == 0.0
        assert ordering_agreement(exact, approx.rating_map) == 1.0

    def test_sample_sizes(self, group, spec):
        approx = approximate_rating_map(group, spec, sample_fraction=0.25)
        assert approx.sample_size == pytest.approx(0.25 * len(group), rel=0.05)
        assert 0.2 < approx.sample_fraction < 0.3

    def test_invalid_fraction(self, group, spec):
        with pytest.raises(ValueError):
            approximate_rating_map(group, spec, sample_fraction=0.0)

    def test_epsilon_shrinks_with_fraction(self, group, spec):
        small = approximate_rating_map(group, spec, sample_fraction=0.05)
        large = approximate_rating_map(group, spec, sample_fraction=0.5)
        assert large.mean_epsilon < small.mean_epsilon

    def test_deterministic_given_seed(self, group, spec):
        a = approximate_rating_map(group, spec, sample_fraction=0.2, seed=3)
        b = approximate_rating_map(group, spec, sample_fraction=0.2, seed=3)
        assert a.rating_map.pooled() == b.rating_map.pooled()

    def test_means_within_epsilon_mostly(self, group, spec):
        """The Hoeffding–Serfling bound holds for (nearly) all subgroups."""
        exact = build_rating_map(group, spec)
        exact_means = {sg.label: sg.average_score for sg in exact.subgroups}
        violations = 0
        checks = 0
        for seed in range(5):
            approx = approximate_rating_map(
                group, spec, sample_fraction=0.3, seed=seed
            )
            for sg in approx.rating_map.subgroups:
                if sg.label not in exact_means or sg.size < 10:
                    continue
                checks += 1
                gap = abs(sg.average_score - exact_means[sg.label])
                violations += gap > approx.epsilon_for(sg.label)
        assert checks > 0
        assert violations / checks <= 0.05

    def test_ordering_mostly_preserved(self, group, spec):
        """The [36] property: sampling keeps the subgroup ordering."""
        exact = build_rating_map(group, spec)
        agreements = [
            ordering_agreement(
                exact,
                approximate_rating_map(
                    group, spec, sample_fraction=0.3, seed=seed
                ).rating_map,
            )
            for seed in range(5)
        ]
        assert sum(agreements) / len(agreements) >= 0.8


class TestOrderingAgreement:
    def test_no_shared_labels(self, group, spec):
        exact = build_rating_map(group, spec)
        other = build_rating_map(
            group, RatingMapSpec(Side.ITEM, "price_range", "food")
        )
        assert ordering_agreement(exact, other) == 1.0  # vacuous

    def test_self_agreement(self, group, spec):
        exact = build_rating_map(group, spec)
        assert ordering_agreement(exact, exact) == 1.0
