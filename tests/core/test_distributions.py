"""Tests for RatingDistribution (Definition 1)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import RatingDistribution

_counts = st.lists(st.integers(0, 50), min_size=2, max_size=8)


class TestConstruction:
    def test_from_mapping_matches_figure3(self):
        dist = RatingDistribution.from_mapping({1: 1, 2: 2, 3: 1, 4: 5, 5: 7}, 5)
        assert dist.total == 16
        assert dist.mean() == pytest.approx(3.9, abs=0.05)

    def test_from_mapping_out_of_scale(self):
        with pytest.raises(ValueError):
            RatingDistribution.from_mapping({6: 1}, 5)

    def test_from_scores_drops_invalid(self):
        scores = np.array([1.0, 5.0, np.nan, 0.0, 6.0])
        dist = RatingDistribution.from_scores(scores, 5)
        assert dist.total == 2

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            RatingDistribution([1, -1])

    def test_scale_too_small_rejected(self):
        with pytest.raises(ValueError):
            RatingDistribution([3])


class TestAccessors:
    def test_probabilities_sum_to_one(self):
        dist = RatingDistribution([1, 2, 3, 4])
        assert dist.probabilities().sum() == pytest.approx(1.0)

    def test_empty_probabilities_uniform(self):
        dist = RatingDistribution([0, 0, 0, 0])
        assert (dist.probabilities() == 0.25).all()
        assert dist.is_empty

    def test_mean_of_empty_is_nan(self):
        assert math.isnan(RatingDistribution([0, 0]).mean())

    def test_count_of(self):
        dist = RatingDistribution([5, 0, 2])
        assert dist.count_of(1) == 5 and dist.count_of(3) == 2

    def test_to_mapping_roundtrip(self):
        dist = RatingDistribution([1, 0, 2])
        assert RatingDistribution.from_mapping(dist.to_mapping(), 3) == dist

    def test_immutability(self):
        dist = RatingDistribution([1, 2])
        with pytest.raises(ValueError):
            dist.counts[0] = 99


class TestAlgebra:
    def test_merge(self):
        a = RatingDistribution([1, 0, 0])
        b = RatingDistribution([0, 2, 0])
        assert a.merge(b) == RatingDistribution([1, 2, 0])

    def test_merge_scale_mismatch(self):
        with pytest.raises(ValueError):
            RatingDistribution([1, 1]).merge(RatingDistribution([1, 1, 1]))

    def test_equality_and_hash(self):
        assert RatingDistribution([1, 2]) == RatingDistribution([1, 2])
        assert hash(RatingDistribution([1, 2])) == hash(RatingDistribution([1, 2]))
        assert RatingDistribution([1, 2]) != RatingDistribution([2, 1])

    @given(a=_counts)
    def test_merge_total_additive(self, a):
        dist = RatingDistribution(a)
        merged = dist.merge(dist)
        assert merged.total == 2 * dist.total

    @given(a=_counts)
    def test_mean_within_scale(self, a):
        dist = RatingDistribution(a)
        mean = dist.mean()
        if not math.isnan(mean):
            assert 1 <= mean <= dist.scale
