"""Tests for GMM (Gonzalez) and the RM-Selector (Problem 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RatingDistribution
from repro.core.distance import MapDistanceMethod
from repro.core.gmm import exact_max_min_subset, gmm_select, min_pairwise
from repro.core.rating_maps import RatingMap, RatingMapSpec, Subgroup
from repro.core.selection import select_diverse_maps
from repro.model import SelectionCriteria, Side


def _points_distance(a, b):
    return abs(a - b)


class TestGmmSelect:
    def test_k_zero(self):
        assert gmm_select([1, 2, 3], 0, _points_distance) == []

    def test_k_exceeds_n_returns_all(self):
        assert gmm_select([1, 2], 5, _points_distance) == [1, 2]

    def test_picks_extremes_on_a_line(self):
        points = [0.0, 1.0, 2.0, 10.0]
        chosen = gmm_select(points, 2, _points_distance)
        assert set(chosen) == {0.0, 10.0}

    def test_seed_always_included(self):
        points = [5.0, 0.0, 10.0]
        chosen = gmm_select(points, 2, _points_distance, seed_index=0)
        assert 5.0 in chosen

    def test_invalid_seed(self):
        with pytest.raises(IndexError):
            gmm_select([1, 2], 1, _points_distance, seed_index=9)

    def test_deterministic(self):
        points = [3.0, 1.0, 4.0, 1.5, 9.0]
        assert gmm_select(points, 3, _points_distance) == gmm_select(
            points, 3, _points_distance
        )

    @settings(deadline=None, max_examples=40)
    @given(
        points=st.lists(
            st.floats(0, 100, allow_nan=False), min_size=3, max_size=9, unique=True
        ),
        k=st.integers(2, 4),
    )
    def test_property_two_approximation(self, points, k):
        """GMM's min pairwise distance is ≥ OPT/2 (Gonzalez 1985)."""
        k = min(k, len(points))
        greedy = gmm_select(points, k, _points_distance)
        optimal = exact_max_min_subset(points, k, _points_distance)
        greedy_value = min_pairwise(greedy, _points_distance)
        optimal_value = min_pairwise(optimal, _points_distance)
        assert greedy_value >= optimal_value / 2 - 1e-9


def _map(attr: str, dimension: str, shift: int) -> RatingMap:
    counts = np.zeros(5, dtype=int)
    counts[shift] = 20
    counts[(shift + 1) % 5] = 5
    spec = RatingMapSpec(Side.ITEM, attr, dimension)
    subgroups = [
        Subgroup("a", RatingDistribution(counts)),
        Subgroup("b", RatingDistribution(np.roll(counts, 1))),
    ]
    return RatingMap(spec, SelectionCriteria.root(), subgroups, 50)


class TestSelectDiverseMaps:
    def test_k_zero(self):
        result = select_diverse_maps([_map("a", "d", 0)], 0)
        assert result.selected == ()

    def test_first_candidate_is_seed(self):
        maps = [_map("a", "d", 0), _map("b", "d", 2), _map("c", "d", 4)]
        result = select_diverse_maps(maps, 2)
        assert result.selected[0] is maps[0]

    def test_diversity_reported(self):
        maps = [_map("a", "d", 0), _map("b", "d", 4), _map("c", "d", 0)]
        result = select_diverse_maps(maps, 2)
        # picked the far-apart pair (seed a + the shifted map b, not c ≈ a)
        assert result.selected[1] is maps[1]
        assert result.diversity > 0.2

    def test_l_equals_one_degenerates_to_topk(self):
        maps = [_map("a", "d", 0), _map("b", "d", 1)]
        result = select_diverse_maps(maps, 2)
        assert set(result.selected) == set(maps)

    @pytest.mark.parametrize("method", list(MapDistanceMethod))
    def test_all_distance_methods_work(self, method):
        maps = [_map("a", "d", i) for i in range(4)]
        result = select_diverse_maps(maps, 2, method)
        assert len(result.selected) == 2
