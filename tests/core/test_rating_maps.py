"""Tests for rating maps (Definition 2) and candidate enumeration."""

import numpy as np
import pytest

from repro.core import RatingDistribution
from repro.core.rating_maps import (
    RatingMap,
    RatingMapSpec,
    Subgroup,
    build_rating_map,
    enumerate_map_specs,
)
from repro.model import RatingGroup, SelectionCriteria, Side


class TestSubgroup:
    def test_average_score(self):
        sg = Subgroup("x", RatingDistribution([0, 0, 0, 0, 4]))
        assert sg.average_score == 5.0
        assert sg.size == 4


class TestRatingMap:
    def _map(self) -> RatingMap:
        spec = RatingMapSpec(Side.ITEM, "city", "food")
        subgroups = [
            Subgroup("NYC", RatingDistribution([1, 2, 3, 4, 5])),
            Subgroup("LA", RatingDistribution([5, 4, 3, 2, 1])),
            Subgroup("empty", RatingDistribution([0, 0, 0, 0, 0])),
        ]
        return RatingMap(spec, SelectionCriteria.root(), subgroups, 40)

    def test_empty_subgroups_dropped(self):
        assert self._map().n_subgroups == 2

    def test_covered_vs_group_size(self):
        rm = self._map()
        assert rm.covered == 30
        assert rm.group_size == 40

    def test_pooled(self):
        pooled = self._map().pooled()
        assert pooled.counts.tolist() == [6, 6, 6, 6, 6]

    def test_sorted_by_score(self):
        ordered = self._map().sorted_by_score()
        assert ordered[0].label == "NYC"

    def test_is_informative(self):
        rm = self._map()
        assert rm.is_informative
        single = RatingMap(rm.spec, rm.criteria, rm.subgroups[:1], 40)
        assert not single.is_informative

    def test_render_mentions_subgroups(self):
        text = self._map().render()
        assert "NYC" in text and "avg. score" in text

    def test_scale(self):
        assert self._map().scale == 5


class TestEnumerateSpecs:
    def test_all_attribute_dimension_pairs(self, tiny_db):
        specs = list(enumerate_map_specs(tiny_db, SelectionCriteria.root()))
        # 3 reviewer attrs + 2 item attrs, 2 dims
        assert len(specs) == 5 * 2

    def test_fixed_attributes_excluded(self, tiny_db):
        criteria = SelectionCriteria.of(reviewer={"gender": "F"})
        specs = list(enumerate_map_specs(tiny_db, criteria))
        assert all(
            not (s.side is Side.REVIEWER and s.attribute == "gender")
            for s in specs
        )
        assert len(specs) == 4 * 2

    def test_dimension_subset(self, tiny_db):
        specs = list(
            enumerate_map_specs(
                tiny_db, SelectionCriteria.root(), dimensions=("food",)
            )
        )
        assert all(s.dimension == "food" for s in specs)


class TestBuildRatingMap:
    def test_counts_match_naive(self, tiny_db):
        group = RatingGroup(tiny_db, SelectionCriteria.root())
        spec = RatingMapSpec(Side.ITEM, "city", "overall")
        rm = build_rating_map(group, spec)
        # naive recount
        scores = tiny_db.dimension_scores("overall")
        aligned = tiny_db.aligned_grouping(Side.ITEM, "city")
        for sg in rm.subgroups:
            code = aligned.labels.index(sg.label)
            mask = aligned.codes == code
            expected = int(mask.sum())
            assert sg.size == expected

    def test_group_size_recorded(self, tiny_db):
        group = RatingGroup(tiny_db, SelectionCriteria.root())
        rm = build_rating_map(group, RatingMapSpec(Side.ITEM, "city", "food"))
        assert rm.group_size == len(group)

    def test_respects_criteria_restriction(self, tiny_db):
        criteria = SelectionCriteria.of(item={"city": "NYC"})
        group = RatingGroup(tiny_db, criteria)
        rm = build_rating_map(
            group, RatingMapSpec(Side.REVIEWER, "gender", "food")
        )
        assert rm.covered <= len(group)
        assert rm.criteria == criteria
