"""Tests for distribution / map distances, including metric properties."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import RatingDistribution, emd, kl_divergence, total_variation
from repro.core.distance import (
    MapDistanceMethod,
    map_distance,
    min_pairwise_distance,
    transportation_cost,
    weighted_points_emd,
)
from repro.core.rating_maps import RatingMap, RatingMapSpec, Subgroup
from repro.model import SelectionCriteria, Side

_counts = st.lists(st.integers(0, 30), min_size=5, max_size=5).filter(
    lambda c: sum(c) > 0
)
_dists = _counts.map(RatingDistribution)


def _map(spec_attr: str, dimension: str, subgroup_counts) -> RatingMap:
    spec = RatingMapSpec(Side.ITEM, spec_attr, dimension)
    subgroups = [
        Subgroup(f"g{i}", RatingDistribution(c))
        for i, c in enumerate(subgroup_counts)
    ]
    size = sum(sum(c) for c in subgroup_counts)
    return RatingMap(spec, SelectionCriteria.root(), subgroups, size)


class TestEmd:
    def test_identical_is_zero(self):
        d = RatingDistribution([1, 2, 3, 4, 5])
        assert emd(d, d) == 0.0

    def test_extremes_are_one(self):
        lo = RatingDistribution([10, 0, 0, 0, 0])
        hi = RatingDistribution([0, 0, 0, 0, 10])
        assert emd(lo, hi) == pytest.approx(1.0)

    def test_scale_mismatch(self):
        with pytest.raises(ValueError):
            emd(RatingDistribution([1, 1]), RatingDistribution([1, 1, 1]))

    @given(p=_dists, q=_dists)
    def test_symmetry(self, p, q):
        assert emd(p, q) == pytest.approx(emd(q, p))

    @given(p=_dists, q=_dists, r=_dists)
    def test_triangle_inequality(self, p, q, r):
        assert emd(p, r) <= emd(p, q) + emd(q, r) + 1e-9

    @given(p=_dists, q=_dists)
    def test_bounded_unit(self, p, q):
        assert 0 <= emd(p, q) <= 1 + 1e-12

    @given(p=_dists)
    def test_identity(self, p):
        assert emd(p, p) == pytest.approx(0.0)


class TestTotalVariation:
    def test_disjoint_supports_are_one(self):
        a = RatingDistribution([5, 0, 0, 0, 0])
        b = RatingDistribution([0, 5, 0, 0, 0])
        assert total_variation(a, b) == pytest.approx(1.0)

    @given(p=_dists, q=_dists)
    def test_metric_properties(self, p, q):
        assert 0 <= total_variation(p, q) <= 1 + 1e-12
        assert total_variation(p, q) == pytest.approx(total_variation(q, p))

    def test_tvd_upper_bounds_emd_times_range(self):
        # on adjacent buckets, EMD ≤ TVD (mass moves ≤ 1 bucket / (m-1))
        a = RatingDistribution([5, 5, 0, 0, 0])
        b = RatingDistribution([5, 0, 5, 0, 0])
        assert emd(a, b) <= total_variation(a, b)


class TestKl:
    def test_zero_for_identical(self):
        d = RatingDistribution([1, 2, 3, 4, 5])
        assert kl_divergence(d, d) == pytest.approx(0.0, abs=1e-9)

    @given(p=_dists, q=_dists)
    def test_non_negative(self, p, q):
        assert kl_divergence(p, q) >= -1e-9

    def test_asymmetric_in_general(self):
        a = RatingDistribution([10, 0, 0, 0, 1])
        b = RatingDistribution([1, 1, 1, 1, 10])
        assert kl_divergence(a, b) != pytest.approx(kl_divergence(b, a))


class TestWeightedPointsEmd:
    def test_same_points_zero(self):
        xs = np.array([1.0, 3.0])
        w = np.array([1.0, 1.0])
        assert weighted_points_emd(xs, w, xs, w, span=4) == 0.0

    def test_known_shift(self):
        xs = np.array([1.0])
        ys = np.array([5.0])
        w = np.array([1.0])
        assert weighted_points_emd(xs, w, ys, w, span=4.0) == pytest.approx(1.0)

    def test_empty_vs_nonempty(self):
        assert weighted_points_emd(
            np.array([]), np.array([]), np.array([1.0]), np.array([1.0]), 4
        ) == 1.0


class TestTransportation:
    def test_identity_zero_cost(self):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert transportation_cost(
            np.array([0.5, 0.5]), np.array([0.5, 0.5]), cost
        ) == pytest.approx(0.0)

    def test_full_move(self):
        cost = np.array([[0.0, 2.0], [2.0, 0.0]])
        assert transportation_cost(
            np.array([1.0, 0.0]), np.array([0.0, 1.0]), cost
        ) == pytest.approx(2.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            transportation_cost(np.ones(2) / 2, np.ones(2) / 2, np.ones((3, 2)))


class TestMapDistance:
    @pytest.mark.parametrize("method", list(MapDistanceMethod))
    def test_self_distance_zero(self, method):
        rm = _map("city", "food", [[1, 2, 3, 4, 5], [5, 4, 3, 2, 1]])
        assert map_distance(rm, rm, method) == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("method", list(MapDistanceMethod))
    def test_symmetry(self, method):
        a = _map("city", "food", [[9, 1, 0, 0, 0], [0, 0, 0, 1, 9]])
        b = _map("state", "food", [[1, 1, 6, 1, 1], [2, 2, 2, 2, 2]])
        assert map_distance(a, b, method) == pytest.approx(
            map_distance(b, a, method)
        )

    def test_pooled_blind_to_grouping(self):
        # same pooled distribution split differently → POOLED sees nothing
        a = _map("city", "food", [[4, 0, 0, 0, 0], [0, 0, 0, 0, 4]])
        b = _map("state", "food", [[2, 0, 0, 0, 2], [2, 0, 0, 0, 2]])
        assert map_distance(a, b, MapDistanceMethod.POOLED) == pytest.approx(0.0)
        assert map_distance(a, b, MapDistanceMethod.PROFILE) > 0.1

    def test_profile_separates_dimensions(self):
        low = _map("city", "food", [[9, 1, 0, 0, 0], [8, 2, 0, 0, 0]])
        high = _map("city", "service", [[0, 0, 0, 1, 9], [0, 0, 0, 2, 8]])
        assert map_distance(low, high) > 0.5

    def test_nested_matches_profile_ordering(self):
        a = _map("city", "food", [[9, 1, 0, 0, 0], [0, 0, 0, 1, 9]])
        near = _map("state", "food", [[8, 2, 0, 0, 0], [0, 0, 0, 2, 8]])
        far = _map("zip", "food", [[0, 0, 10, 0, 0], [0, 0, 10, 0, 0]])
        for method in (MapDistanceMethod.PROFILE, MapDistanceMethod.NESTED):
            assert map_distance(a, near, method) < map_distance(a, far, method)


class TestMinPairwise:
    def test_fewer_than_two_is_zero(self):
        rm = _map("city", "food", [[1, 1, 1, 1, 1], [2, 2, 2, 2, 2]])
        assert min_pairwise_distance([]) == 0.0
        assert min_pairwise_distance([rm]) == 0.0

    def test_pairwise_minimum(self):
        a = _map("a", "food", [[9, 1, 0, 0, 0], [8, 2, 0, 0, 0]])
        b = _map("b", "food", [[0, 0, 0, 1, 9], [0, 0, 0, 2, 8]])
        c = _map("c", "food", [[9, 1, 0, 0, 0], [8, 2, 0, 0, 0]])  # ≈ a
        div = min_pairwise_distance([a, b, c])
        assert div == pytest.approx(map_distance(a, c), abs=1e-9)
