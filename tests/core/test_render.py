"""Tests for the terminal rating-map renderer."""

import math

from repro.core import RatingDistribution
from repro.core.rating_maps import RatingMap, RatingMapSpec, Subgroup
from repro.core.render import (
    distribution_bar,
    render_histogram,
    render_step,
    score_gauge,
)
from repro.model import SelectionCriteria, Side


def _map(n_subgroups=3):
    subgroups = [
        Subgroup(f"group-{i}", RatingDistribution([i + 1, 2, 3, 2, 1]))
        for i in range(n_subgroups)
    ]
    return RatingMap(
        RatingMapSpec(Side.ITEM, "city", "food"),
        SelectionCriteria.root(),
        subgroups,
        100,
    )


class TestDistributionBar:
    def test_peak_gets_full_block(self):
        bar = distribution_bar([0, 5, 1])
        assert bar[1] == "█"
        assert bar[0] == " "

    def test_empty_histogram_blank(self):
        assert distribution_bar([0, 0, 0]).strip() == ""

    def test_width_per_bucket(self):
        assert len(distribution_bar([1, 2], width_per_bucket=3)) == 6


class TestScoreGauge:
    def test_minimum_empty(self):
        assert score_gauge(1.0, 5) == "[" + "·" * 10 + "]"

    def test_maximum_full(self):
        assert score_gauge(5.0, 5) == "[" + "█" * 10 + "]"

    def test_midpoint_half(self):
        gauge = score_gauge(3.0, 5)
        assert gauge.count("█") == 5

    def test_nan(self):
        assert "█" not in score_gauge(math.nan, 5)


class TestRenderHistogram:
    def test_contains_labels_and_counts(self):
        text = render_histogram(_map())
        assert "group-0" in text
        assert "records" in text
        assert "GroupBy item.city" in text

    def test_truncates_rows(self):
        text = render_histogram(_map(20), max_rows=5)
        assert "more subgroups" in text
        assert text.count("records") == 5

    def test_long_labels_ellipsised(self):
        subgroups = [
            Subgroup("x" * 40, RatingDistribution([1, 1, 1, 1, 1])),
            Subgroup("y", RatingDistribution([1, 1, 1, 1, 1])),
        ]
        rm = RatingMap(
            RatingMapSpec(Side.ITEM, "city", "food"),
            SelectionCriteria.root(),
            subgroups,
            10,
        )
        assert "…" in render_histogram(rm)


class TestRenderStep:
    def test_joins_maps_with_title(self):
        text = render_step([_map(), _map()], title="Step 1")
        assert text.startswith("━━ Step 1")
        assert text.count("GroupBy") == 2
