"""Tests for the RM-Set Generator (Problem 1 end to end)."""

import pytest

from repro.core.distance import MapDistanceMethod
from repro.core.generator import GeneratorConfig, RMSetGenerator
from repro.core.pruning import PruningStrategy
from repro.core.utility import SeenMaps
from repro.model import RatingGroup, SelectionCriteria


@pytest.fixture()
def seen(tiny_db) -> SeenMaps:
    return SeenMaps(tiny_db.dimensions)


class TestGenerate:
    def test_returns_k_maps(self, tiny_db, seen):
        generator = RMSetGenerator(GeneratorConfig(k=3))
        group = RatingGroup(tiny_db, SelectionCriteria.root())
        result = generator.generate(group, seen)
        assert len(result.selected) == 3
        assert len(result.pool) <= 9

    def test_selected_subset_of_pool(self, tiny_db, seen):
        generator = RMSetGenerator(GeneratorConfig())
        group = RatingGroup(tiny_db, SelectionCriteria.root())
        result = generator.generate(group, seen)
        assert set(rm.spec for rm in result.selected) <= set(
            rm.spec for rm in result.pool
        )

    def test_empty_group_yields_nothing(self, tiny_db, seen):
        generator = RMSetGenerator()
        group = RatingGroup(
            tiny_db, SelectionCriteria.of(reviewer={"gender": "NOPE"})
        )
        result = generator.generate(group, seen)
        assert result.selected == ()

    def test_k_override(self, tiny_db, seen):
        generator = RMSetGenerator(GeneratorConfig(k=3))
        group = RatingGroup(tiny_db, SelectionCriteria.root())
        result = generator.generate(group, seen, k=1)
        assert len(result.selected) == 1

    def test_dimension_restriction(self, tiny_db, seen):
        generator = RMSetGenerator()
        group = RatingGroup(tiny_db, SelectionCriteria.root())
        result = generator.generate(group, seen, dimensions=("food",))
        assert all(rm.dimension == "food" for rm in result.selected)

    def test_l_one_is_pure_topk_utility(self, tiny_db, seen):
        generator = RMSetGenerator(
            GeneratorConfig(
                k=3, pruning_diversity_factor=1, pruning=PruningStrategy.NONE
            )
        )
        group = RatingGroup(tiny_db, SelectionCriteria.root())
        result = generator.generate(group, seen)
        utilities = [result.scores[rm.spec].dw_utility for rm in result.selected]
        # with l=1 the pool IS the selection: top-k by DW utility
        assert utilities == sorted(utilities, reverse=True)
        assert set(result.selected) == set(result.pool)

    def test_larger_l_increases_or_keeps_diversity(self, tiny_db, seen):
        group = RatingGroup(tiny_db, SelectionCriteria.root())
        low = RMSetGenerator(
            GeneratorConfig(pruning_diversity_factor=1, pruning=PruningStrategy.NONE)
        ).generate(group, SeenMaps(tiny_db.dimensions))
        high = RMSetGenerator(
            GeneratorConfig(pruning_diversity_factor=3, pruning=PruningStrategy.NONE)
        ).generate(group, SeenMaps(tiny_db.dimensions))
        assert high.diversity >= low.diversity - 1e-9

    @pytest.mark.parametrize("strategy", list(PruningStrategy))
    def test_all_pruning_strategies_produce_maps(self, tiny_db, seen, strategy):
        generator = RMSetGenerator(GeneratorConfig(pruning=strategy))
        group = RatingGroup(tiny_db, SelectionCriteria.root())
        result = generator.generate(group, SeenMaps(tiny_db.dimensions))
        assert result.selected

    def test_pruned_overlap_with_exact_topk(self, tiny_db):
        """Pruning should mostly agree with the exact top-k' ranking."""
        group = RatingGroup(tiny_db, SelectionCriteria.root())
        exact = RMSetGenerator(
            GeneratorConfig(pruning=PruningStrategy.NONE)
        ).generate(group, SeenMaps(tiny_db.dimensions))
        pruned = RMSetGenerator(
            GeneratorConfig(pruning=PruningStrategy.COMBINED)
        ).generate(group, SeenMaps(tiny_db.dimensions))
        exact_specs = {rm.spec for rm in exact.pool}
        pruned_specs = {rm.spec for rm in pruned.pool}
        if pruned_specs:
            overlap = len(exact_specs & pruned_specs) / len(pruned_specs)
            assert overlap >= 0.5

    def test_total_utility_is_sum_of_selected(self, tiny_db, seen):
        generator = RMSetGenerator()
        group = RatingGroup(tiny_db, SelectionCriteria.root())
        result = generator.generate(group, seen)
        assert result.total_utility() == pytest.approx(
            sum(result.scores[rm.spec].dw_utility for rm in result.selected)
        )

    def test_profile_distance_default(self):
        assert GeneratorConfig().distance_method is MapDistanceMethod.PROFILE
