"""Tests for the interactivity caching layer."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.caching import CachingEngine, LRUCache
from repro.core.utility import SeenMaps
from repro.model import SelectionCriteria


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1

    def test_miss_counted(self):
        cache = LRUCache(2)
        assert cache.get("missing") is None
        assert cache.stats.misses == 1

    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # a is now most-recent
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.stats.evictions == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_stats_describe(self):
        cache = LRUCache(2)
        cache.get("x")
        assert "misses" not in cache.stats.describe()  # formatted line
        assert "requests" in cache.stats.describe()


class TestCachingEngine:
    def test_results_identical_to_plain_engine(self, tiny_engine):
        caching = CachingEngine(tiny_engine)
        criteria = SelectionCriteria.of(reviewer={"gender": "F"})
        plain = tiny_engine.rating_maps(criteria)
        cached = caching.rating_maps(criteria)
        assert [rm.spec for rm in cached.selected] == [
            rm.spec for rm in plain.selected
        ]

    def test_second_call_hits(self, tiny_engine):
        caching = CachingEngine(tiny_engine)
        criteria = SelectionCriteria.of(reviewer={"gender": "F"})
        first = caching.rating_maps(criteria)
        second = caching.rating_maps(criteria)
        assert second is first
        assert caching.result_stats.hits == 1

    def test_different_seen_state_misses(self, tiny_engine, tiny_db):
        caching = CachingEngine(tiny_engine)
        criteria = SelectionCriteria.root()
        seen = SeenMaps(tiny_db.dimensions)
        first = caching.rating_maps(criteria, seen)
        for rm in first.selected:
            seen.add(rm)
        second = caching.rating_maps(criteria, seen)
        assert second is not first
        assert caching.result_stats.hits == 0

    def test_group_cache(self, tiny_engine):
        caching = CachingEngine(tiny_engine)
        criteria = SelectionCriteria.of(item={"city": "NYC"})
        a = caching.group(criteria)
        b = caching.group(criteria)
        assert a is b
        assert caching.group_stats.hit_rate == 0.5

    def test_clear(self, tiny_engine):
        caching = CachingEngine(tiny_engine)
        caching.rating_maps(SelectionCriteria.root())
        caching.clear()
        caching.rating_maps(SelectionCriteria.root())
        assert caching.result_stats.hits == 0

    def test_session_runs_through_cache(self, tiny_engine):
        caching = CachingEngine(tiny_engine)
        first = caching.session()
        first.step()
        second = caching.session()
        second.step()
        # the second user's identical opening step is amortised: the group
        # was materialised once and the RM-Set result is a cache hit
        assert caching.result_stats.hits >= 1
        assert caching.group_stats.hits >= 1

    def test_cached_session_results_match_plain_session(self, tiny_engine):
        plain = tiny_engine.session()
        cached = CachingEngine(tiny_engine).session()
        for session in (plain, cached):
            session.step()
        assert [rm.spec for rm in plain.steps[0].result.selected] == [
            rm.spec for rm in cached.steps[0].result.selected
        ]


class TestConcurrency:
    """The server shares one cache across worker threads (ISSUE 1)."""

    def test_lru_cache_hammered_from_8_threads(self):
        cache = LRUCache(capacity=32)
        n_threads, n_ops = 8, 500
        barrier = threading.Barrier(n_threads)

        def hammer(thread_id: int) -> None:
            barrier.wait()
            for i in range(n_ops):
                key = (thread_id * i) % 64
                if cache.get(key) is None:
                    cache.put(key, key * 2)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            for future in [pool.submit(hammer, t) for t in range(n_threads)]:
                future.result()

        stats = cache.stats
        # every operation was counted exactly once (atomic updates, no
        # lost increments) and the store never exceeded its capacity
        assert stats.requests == n_threads * n_ops
        assert stats.hits + stats.misses == stats.requests
        assert len(cache) <= 32
        # all cached values are consistent (no torn writes)
        for key in range(64):
            value = cache.get(key)
            assert value is None or value == key * 2

    def test_shared_engine_concurrent_results_identical(self, tiny_engine):
        """Concurrent users of one CachingEngine see single-thread results."""
        criterias = [
            SelectionCriteria.root(),
            SelectionCriteria.of(reviewer={"gender": "F"}),
            SelectionCriteria.of(reviewer={"gender": "M"}),
            SelectionCriteria.of(item={"city": "NYC"}),
        ]
        expected = {
            criteria: [rm.spec for rm in tiny_engine.rating_maps(criteria).selected]
            for criteria in criterias
        }
        caching = CachingEngine(tiny_engine)
        barrier = threading.Barrier(8)

        def explore(thread_id: int):
            barrier.wait()
            observed = {}
            for i in range(len(criterias) * 3):
                criteria = criterias[(thread_id + i) % len(criterias)]
                result = caching.rating_maps(criteria)
                observed[criteria] = [rm.spec for rm in result.selected]
            return observed

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = [f.result() for f in [pool.submit(explore, t) for t in range(8)]]

        for observed in results:
            for criteria, specs in observed.items():
                assert specs == expected[criteria]
        # the shared cache amortised work across the 8 threads
        assert caching.result_stats.hits > 0


    def test_single_flight_no_thundering_herd(self, tiny_db):
        """8 threads missing the same key at once → exactly one generation.

        Before the per-key single-flight locks, every thread that missed
        simultaneously ran its own full RM-Set generation; now one computes
        while the rest wait and read the freshly cached value.
        """
        from repro import SubDEx, SubDExConfig
        from repro.core.recommend import RecommenderConfig

        engine = SubDEx(
            tiny_db,
            SubDExConfig(
                recommender=RecommenderConfig(max_values_per_attribute=3)
            ),
        )
        calls: list[int] = []
        inner = engine.generator.generate

        def counting_generate(*args, **kwargs):
            calls.append(threading.get_ident())
            return inner(*args, **kwargs)

        engine.generator.generate = counting_generate
        caching = CachingEngine(engine)
        criteria = SelectionCriteria.of(reviewer={"gender": "F"})
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            return caching.rating_maps(criteria)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = [f.result() for f in [pool.submit(worker) for __ in range(8)]]

        assert len(calls) == 1
        expected = [rm.spec for rm in results[0].selected]
        for result in results[1:]:
            assert [rm.spec for rm in result.selected] == expected
        stats = caching.result_stats
        assert stats.misses >= 1

    def test_single_flight_distinct_keys_do_not_block(self, tiny_engine):
        """Different criteria proceed independently under single-flight."""
        caching = CachingEngine(tiny_engine)
        criterias = [
            SelectionCriteria.of(reviewer={"gender": "F"}),
            SelectionCriteria.of(reviewer={"gender": "M"}),
            SelectionCriteria.of(item={"city": "NYC"}),
            SelectionCriteria.of(item={"city": "Austin"}),
        ]
        barrier = threading.Barrier(4)

        def worker(i: int):
            barrier.wait()
            return caching.rating_maps(criterias[i])

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = [f.result() for f in [pool.submit(worker, i) for i in range(4)]]
        for criteria, result in zip(criterias, results):
            expected = tiny_engine.rating_maps(criteria)
            assert [rm.spec for rm in result.selected] == [
                rm.spec for rm in expected.selected
            ]
