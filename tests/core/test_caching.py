"""Tests for the interactivity caching layer."""

import pytest

from repro.core.caching import CachingEngine, LRUCache
from repro.core.utility import SeenMaps
from repro.model import SelectionCriteria


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1

    def test_miss_counted(self):
        cache = LRUCache(2)
        assert cache.get("missing") is None
        assert cache.stats.misses == 1

    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # a is now most-recent
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.stats.evictions == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_stats_describe(self):
        cache = LRUCache(2)
        cache.get("x")
        assert "misses" not in cache.stats.describe()  # formatted line
        assert "requests" in cache.stats.describe()


class TestCachingEngine:
    def test_results_identical_to_plain_engine(self, tiny_engine):
        caching = CachingEngine(tiny_engine)
        criteria = SelectionCriteria.of(reviewer={"gender": "F"})
        plain = tiny_engine.rating_maps(criteria)
        cached = caching.rating_maps(criteria)
        assert [rm.spec for rm in cached.selected] == [
            rm.spec for rm in plain.selected
        ]

    def test_second_call_hits(self, tiny_engine):
        caching = CachingEngine(tiny_engine)
        criteria = SelectionCriteria.of(reviewer={"gender": "F"})
        first = caching.rating_maps(criteria)
        second = caching.rating_maps(criteria)
        assert second is first
        assert caching.result_stats.hits == 1

    def test_different_seen_state_misses(self, tiny_engine, tiny_db):
        caching = CachingEngine(tiny_engine)
        criteria = SelectionCriteria.root()
        seen = SeenMaps(tiny_db.dimensions)
        first = caching.rating_maps(criteria, seen)
        for rm in first.selected:
            seen.add(rm)
        second = caching.rating_maps(criteria, seen)
        assert second is not first
        assert caching.result_stats.hits == 0

    def test_group_cache(self, tiny_engine):
        caching = CachingEngine(tiny_engine)
        criteria = SelectionCriteria.of(item={"city": "NYC"})
        a = caching.group(criteria)
        b = caching.group(criteria)
        assert a is b
        assert caching.group_stats.hit_rate == 0.5

    def test_clear(self, tiny_engine):
        caching = CachingEngine(tiny_engine)
        caching.rating_maps(SelectionCriteria.root())
        caching.clear()
        caching.rating_maps(SelectionCriteria.root())
        assert caching.result_stats.hits == 0
