"""Tests for the Recommendation Builder, sessions, modes and engine facade."""

import pytest

from repro import (
    ExplorationMode,
    SelectionCriteria,
    SubDEx,
    SubDExConfig,
)
from repro.core.modes import (
    run_fully_automated,
    run_recommendation_powered,
    run_user_driven,
)
from repro.core.recommend import RecommenderConfig
from repro.core.utility import SeenMaps
from repro.exceptions import EmptyGroupError
from repro.model import OperationKind


class TestRecommendationBuilder:
    def test_returns_top_o(self, tiny_engine):
        recos = tiny_engine.recommend()
        assert len(recos) == 3

    def test_sorted_by_utility(self, tiny_engine):
        recos = tiny_engine.recommend(o=5)
        utilities = [r.utility for r in recos]
        assert utilities == sorted(utilities, reverse=True)

    def test_no_empty_groups_recommended(self, tiny_engine):
        for reco in tiny_engine.recommend(o=10):
            assert reco.preview.selected

    def test_sequential_equals_parallel(self, tiny_db):
        criteria = SelectionCriteria.of(reviewer={"gender": "F"})
        parallel = SubDEx(
            tiny_db,
            SubDExConfig(
                recommender=RecommenderConfig(
                    max_values_per_attribute=3, parallel=True
                )
            ),
        ).recommend(criteria)
        sequential = SubDEx(
            tiny_db,
            SubDExConfig(
                recommender=RecommenderConfig(
                    max_values_per_attribute=3, parallel=False
                )
            ),
        ).recommend(criteria)
        assert [r.target for r in parallel] == [r.target for r in sequential]
        for p, s in zip(parallel, sequential):
            assert p.utility == pytest.approx(s.utility)

    def test_utility_is_eq2_sum(self, tiny_engine):
        reco = tiny_engine.recommend(o=1)[0]
        assert reco.utility == pytest.approx(reco.preview.total_utility())

    def test_candidate_operations_exposed(self, tiny_engine):
        ops = tiny_engine.recommender.candidate_operations(
            SelectionCriteria.root()
        )
        assert ops and all(op.kind is OperationKind.FILTER for op in ops)


class TestSession:
    def test_first_step_examines_start(self, tiny_engine):
        session = tiny_engine.session()
        record = session.step()
        assert record.index == 1
        assert record.criteria == SelectionCriteria.root()
        assert len(record.maps) == 3

    def test_seen_maps_accumulate(self, tiny_engine):
        session = tiny_engine.session()
        session.step()
        assert session.seen.total == 3
        session.apply_criteria(SelectionCriteria.of(reviewer={"gender": "F"}))
        assert session.seen.total == 6

    def test_step_with_operation_moves_criteria(self, tiny_engine):
        session = tiny_engine.session()
        session.step()
        recos = session.recommendations(o=1)
        record = session.step(recos[0].operation)
        assert record.criteria == recos[0].target
        assert session.criteria == recos[0].target

    def test_empty_start_rejected(self, tiny_engine):
        with pytest.raises(EmptyGroupError):
            tiny_engine.session(SelectionCriteria.of(reviewer={"gender": "X"}))

    def test_step_records_timing(self, tiny_engine):
        record = tiny_engine.session().step()
        assert record.elapsed_seconds > 0

    def test_describe_runs(self, tiny_engine):
        record = tiny_engine.session().step(with_recommendations=True)
        text = record.describe()
        assert "Step 1" in text


class TestModes:
    def test_fully_automated_path_length(self, tiny_engine):
        path = run_fully_automated(tiny_engine.session(), n_steps=3)
        assert path.mode is ExplorationMode.FULLY_AUTOMATED
        assert len(path) == 3

    def test_fully_automated_applies_top1(self, tiny_engine):
        path = run_fully_automated(tiny_engine.session(), n_steps=2)
        first_recos = path.steps[0].recommendations
        assert path.steps[1].criteria == first_recos[0].target

    def test_user_driven_with_stopping_chooser(self, tiny_engine):
        path = run_user_driven(
            tiny_engine.session(), lambda s, c: None, n_steps=5
        )
        assert len(path) == 1

    def test_user_driven_chooser_receives_candidates(self, tiny_engine):
        seen_candidates = []

        def chooser(session, candidates):
            seen_candidates.append(len(candidates))
            return candidates[0] if candidates else None

        path = run_user_driven(tiny_engine.session(), chooser, n_steps=3)
        assert len(path) == 3
        assert all(n > 0 for n in seen_candidates)

    def test_recommendation_powered_follows_chooser(self, tiny_engine):
        def chooser(session, recommendations):
            return recommendations[0].operation if recommendations else None

        path = run_recommendation_powered(tiny_engine.session(), chooser, 3)
        assert path.mode is ExplorationMode.RECOMMENDATION_POWERED
        assert len(path) == 3

    def test_all_maps_collects_everything(self, tiny_engine):
        path = run_fully_automated(tiny_engine.session(), n_steps=2)
        assert len(path.all_maps()) == sum(
            len(s.result.selected) for s in path.steps
        )

    def test_describe(self, tiny_engine):
        path = run_fully_automated(tiny_engine.session(), n_steps=2)
        assert "fully-automated" in path.describe()


class TestEngineFacade:
    def test_rating_maps_default_root(self, tiny_engine):
        result = tiny_engine.rating_maps()
        assert len(result.selected) == 3

    def test_config_fluent_tweaks(self):
        config = SubDExConfig().with_k(5).with_l(2).with_o(7)
        assert config.generator.k == 5
        assert config.generator.pruning_diversity_factor == 2
        assert config.recommender.o == 7

    def test_seen_threading(self, tiny_engine, tiny_db):
        seen = SeenMaps(tiny_db.dimensions)
        first = tiny_engine.rating_maps(seen=seen)
        for rm in first.selected:
            seen.add(rm)
        second = tiny_engine.rating_maps(seen=seen)
        assert second.selected  # global peculiarity path exercised

    def test_explore_automated_entry_point(self, tiny_engine):
        path = tiny_engine.explore_automated(2)
        assert len(path) == 2


class TestVisitedFiltering:
    def test_exclude_targets_drops_candidates(self, tiny_engine, tiny_db):
        from repro.core.utility import SeenMaps

        seen = SeenMaps(tiny_db.dimensions)
        criteria = SelectionCriteria.root()
        stock = tiny_engine.recommender.recommend(criteria, seen, o=5)
        excluded = {stock[0].target}
        filtered = tiny_engine.recommender.recommend(
            criteria, seen, o=5, exclude_targets=excluded
        )
        assert stock[0].target not in [r.target for r in filtered]

    def test_exclude_everything_falls_back(self, tiny_engine, tiny_db):
        """If every candidate is excluded, recommendations still appear."""
        from repro.core.utility import SeenMaps

        seen = SeenMaps(tiny_db.dimensions)
        criteria = SelectionCriteria.root()
        all_ops = tiny_engine.recommender.candidate_operations(criteria)
        excluded = {op.target for op in all_ops}
        recos = tiny_engine.recommender.recommend(
            criteria, seen, exclude_targets=excluded
        )
        assert recos  # graceful fallback, not an empty screen

    def test_redundant_group_operations_skipped(self, tiny_engine, tiny_db):
        """An operation selecting the same records is not a real move."""
        recos = tiny_engine.recommend(SelectionCriteria.root(), o=20)
        root_size = tiny_db.n_ratings
        for reco in recos:
            from repro.model import RatingGroup

            assert len(RatingGroup(tiny_db, reco.target)) < root_size

    def test_session_recommendations_avoid_history(self, tiny_engine):
        session = tiny_engine.session()
        first = session.step(with_recommendations=True)
        move = first.recommendations[0].operation
        second = session.step(move, with_recommendations=True)
        targets = [r.target for r in second.recommendations]
        assert SelectionCriteria.root() not in targets
        assert move.target not in targets
