"""Tests for the interestingness criteria (paper §3.2.3 / §4.1)."""

import numpy as np
import pytest

from repro.core import RatingDistribution
from repro.core.interestingness import (
    Criterion,
    CriterionScores,
    DispersionMeasure,
    InterestingnessScorer,
    PeculiarityDistance,
)


@pytest.fixture()
def scorer() -> InterestingnessScorer:
    return InterestingnessScorer()


def _counts(*rows):
    return np.array(rows, dtype=np.int64)


class TestConciseness:
    def test_fewer_subgroups_more_concise(self, scorer):
        few = scorer.conciseness(_counts([10, 10, 0, 0, 0], [5, 10, 5, 0, 0]), 40)
        many = scorer.conciseness(
            _counts(*[[5, 5, 0, 0, 0]] * 4), 40
        )
        assert few > many

    def test_single_subgroup_zero(self, scorer):
        assert scorer.conciseness(_counts([10, 10, 0, 0, 0]), 20) == 0.0

    def test_matches_compaction_gain_formula(self, scorer):
        counts = _counts([8, 0, 0, 0, 0], [0, 0, 0, 0, 8])
        assert scorer.conciseness(counts, 100) == pytest.approx(50.0)

    def test_low_support_subgroups_ignored(self, scorer):
        counts = _counts([20, 0, 0, 0, 0], [0, 20, 0, 0, 0], [1, 0, 0, 0, 0])
        # third subgroup has 1 record < support 5 → only 2 subgroups count
        assert scorer.conciseness(counts, 41) == pytest.approx(41 / 2)


class TestAgreement:
    def test_unanimous_map_scores_one(self, scorer):
        counts = _counts([0, 0, 20, 0, 0], [0, 0, 0, 30, 0])
        assert scorer.agreement(counts, 50) == pytest.approx(1.0)

    def test_spread_lowers_agreement(self, scorer):
        tight = _counts([0, 20, 0, 0, 0], [0, 0, 20, 0, 0])
        spread = _counts([10, 0, 0, 0, 10], [10, 0, 0, 0, 10])
        assert scorer.agreement(tight, 40) > scorer.agreement(spread, 40)

    def test_tiny_unanimous_subgroup_cannot_dominate(self, scorer):
        # a 5-record unanimous subgroup vs a 500-record noisy one
        counts = _counts([5, 0, 0, 0, 0], [100, 100, 100, 100, 100])
        noisy_only = _counts([100, 100, 100, 100, 100], [100, 100, 100, 100, 100])
        assert scorer.agreement(counts, 505) < 0.6
        assert scorer.agreement(counts, 505) == pytest.approx(
            scorer.agreement(noisy_only, 1000), abs=0.05
        )

    def test_fewer_than_two_supported_is_zero(self, scorer):
        assert scorer.agreement(_counts([2, 0, 0, 0, 0], [1, 0, 0, 0, 0]), 3) == 0.0


class TestSelfPeculiarity:
    def test_homogeneous_map_low(self, scorer):
        counts = _counts([10, 10, 10, 0, 0], [10, 10, 10, 0, 0])
        assert scorer.self_peculiarity(counts, 60) == pytest.approx(0.0)

    def test_outlier_subgroup_high(self, scorer):
        counts = _counts([0, 0, 0, 0, 50], [50, 0, 0, 0, 0], [0, 0, 0, 0, 50])
        assert scorer.self_peculiarity(counts, 150) > 0.5

    def test_small_outlier_ignored(self, scorer):
        counts = _counts([3, 0, 0, 0, 0], [0, 0, 0, 30, 30], [0, 0, 0, 30, 30])
        # the 3-record outlier is below support → peculiarity stays low
        assert scorer.self_peculiarity(counts, 123) < 0.2


class TestGlobalPeculiarity:
    def test_no_seen_maps_zero(self, scorer):
        counts = _counts([10, 0, 0, 0, 0], [0, 0, 0, 0, 10])
        assert scorer.global_peculiarity(counts, [], 20) == 0.0

    def test_distance_to_seen(self, scorer):
        counts = _counts([10, 0, 0, 0, 0], [10, 0, 0, 0, 0])
        far = RatingDistribution([0, 0, 0, 0, 20])
        near = RatingDistribution([20, 0, 0, 0, 0])
        # TVD 1.0 minus the sampling-noise penalty sqrt(5 / (8·20))
        penalty = (5 / 160) ** 0.5
        assert scorer.global_peculiarity(counts, [far], 20) == pytest.approx(
            1.0 - penalty
        )
        assert scorer.global_peculiarity(counts, [near], 20) == pytest.approx(0.0)

    def test_max_vs_min_aggregation(self):
        max_scorer = InterestingnessScorer()
        min_scorer = InterestingnessScorer(global_use_min=True)
        counts = _counts([10, 0, 0, 0, 0], [10, 0, 0, 0, 0])
        seen = [
            RatingDistribution([20, 0, 0, 0, 0]),  # near
            RatingDistribution([0, 0, 0, 0, 20]),  # far
        ]
        penalty = (5 / 160) ** 0.5
        assert max_scorer.global_peculiarity(counts, seen, 20) == pytest.approx(
            1.0 - penalty
        )
        assert min_scorer.global_peculiarity(counts, seen, 20) == pytest.approx(0.0)

    def test_noise_penalty_shrinks_with_n(self, scorer):
        assert scorer._noise_penalty(10, 5) > scorer._noise_penalty(1000, 5)
        assert scorer._noise_penalty(0, 5) == 1.0

    def test_small_subgroup_peculiarity_damped(self, scorer):
        # the same relative contrast scores lower at 10 records than at 1000
        small = _counts([8, 2, 0, 0, 0], [2, 8, 0, 0, 0])
        large = small * 100
        assert scorer.self_peculiarity(small, 20) < scorer.self_peculiarity(
            large, 2000
        )


class TestScore:
    def test_uninformative_map_all_zero(self, scorer):
        assert scorer.score(_counts([10, 0, 0, 0, 0]), 10, []) == (
            CriterionScores.zero()
        )

    def test_empty_counts(self, scorer):
        assert scorer.score(np.zeros((0, 5)), 0, []) == CriterionScores.zero()

    def test_fast_path_matches_reference(self, scorer):
        rng = np.random.default_rng(3)
        counts = rng.integers(0, 40, size=(6, 5))
        seen = [RatingDistribution(rng.integers(0, 30, size=5) + 1) for __ in range(3)]
        group_size = int(counts.sum())
        fast = scorer.score(counts, group_size, seen)
        assert fast.conciseness == pytest.approx(
            scorer.conciseness(counts, group_size)
        )
        assert fast.agreement == pytest.approx(
            scorer.agreement(counts, group_size)
        )
        assert fast.pec_self == pytest.approx(
            scorer.self_peculiarity(counts, group_size)
        )
        assert fast.pec_global == pytest.approx(
            scorer.global_peculiarity(counts, seen, group_size)
        )

    def test_partial_data_support_scales(self, scorer):
        # with only 10% of a 1000-record group seen, a 3-record subgroup
        # may still count (effective support shrinks)
        counts = _counts([3, 0, 0, 0, 0], [50, 0, 0, 0, 47])
        scores = scorer.score(counts, 1000, [])
        assert scores.n_subgroups == 2

    def test_alternative_dispersion_measures_run(self):
        for measure in DispersionMeasure:
            scorer = InterestingnessScorer(dispersion=measure)
            counts = _counts([5, 5, 5, 0, 0], [0, 5, 5, 5, 0])
            assert 0 <= scorer.agreement(counts, 30) <= 1

    def test_kl_peculiarity_runs(self):
        scorer = InterestingnessScorer(peculiarity=PeculiarityDistance.KL)
        counts = _counts([50, 0, 0, 0, 0], [0, 0, 0, 0, 50])
        assert scorer.self_peculiarity(counts, 100) > 0

    def test_criterion_getter(self):
        scores = CriterionScores(1.0, 2.0, 3.0, 4.0, 2)
        assert scores.get(Criterion.CONCISENESS) == 1.0
        assert scores.get(Criterion.AGREEMENT) == 2.0
        assert scores.get(Criterion.PECULIARITY_SELF) == 3.0
        assert scores.get(Criterion.PECULIARITY_GLOBAL) == 4.0


class TestOutlierPeculiarity:
    def test_outlier_distance_mean_gap(self):
        from repro.core.interestingness import outlier_distance

        lo = RatingDistribution([10, 0, 0, 0, 0])  # mean 1
        hi = RatingDistribution([0, 0, 0, 0, 10])  # mean 5
        assert outlier_distance(lo, hi) == pytest.approx(1.0)
        assert outlier_distance(lo, lo) == 0.0

    def test_outlier_distance_shape_blind(self):
        from repro.core.interestingness import outlier_distance

        spread = RatingDistribution([5, 0, 0, 0, 5])  # mean 3
        point = RatingDistribution([0, 0, 10, 0, 0])  # mean 3
        assert outlier_distance(spread, point) == 0.0

    def test_outlier_scorer_runs(self):
        scorer = InterestingnessScorer(
            peculiarity=PeculiarityDistance.OUTLIER
        )
        counts = _counts([50, 0, 0, 0, 0], [0, 0, 0, 0, 50])
        assert scorer.self_peculiarity(counts, 100) > 0.3
