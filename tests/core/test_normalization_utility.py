"""Tests for normalization and the utility pipeline (Eq. 1, Alg. 2)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import RatingDistribution
from repro.core.interestingness import Criterion, CriterionScores
from repro.core.normalization import (
    NormalizationStrategy,
    conciseness_01,
    minmax_normalize,
    squash_ratio,
)
from repro.core.rating_maps import RatingMap, RatingMapSpec, Subgroup
from repro.core.utility import (
    SeenMaps,
    UtilityAggregation,
    UtilityConfig,
    aggregate_utility,
    dimension_weights,
    get_weights,
    normalize_criteria,
    score_candidate_set,
)
from repro.model import SelectionCriteria, Side


class TestMinMax:
    def test_basic(self):
        out = minmax_normalize({"a": 0.0, "b": 5.0, "c": 10.0})
        assert out == {"a": 0.0, "b": 0.5, "c": 1.0}

    def test_all_equal_neutral(self):
        assert minmax_normalize({"a": 3.0, "b": 3.0}) == {"a": 0.5, "b": 0.5}

    def test_nan_maps_to_zero(self):
        out = minmax_normalize({"a": float("nan"), "b": 1.0, "c": 2.0})
        assert out["a"] == 0.0

    def test_empty(self):
        assert minmax_normalize({}) == {}

    @given(
        values=st.dictionaries(
            st.text(min_size=1, max_size=3),
            st.floats(-100, 100),
            min_size=1,
            max_size=8,
        )
    )
    def test_property_in_unit_interval(self, values):
        for v in minmax_normalize(values).values():
            assert 0.0 <= v <= 1.0


class TestFixedNormalizers:
    def test_conciseness_01_monotone_decreasing(self):
        values = [conciseness_01(n) for n in (2, 3, 5, 10, 50)]
        assert values == sorted(values, reverse=True)

    def test_conciseness_01_uninformative_zero(self):
        assert conciseness_01(0) == 0.0
        assert conciseness_01(1) == 0.0

    def test_conciseness_01_two_groups_value(self):
        assert conciseness_01(2) == pytest.approx(0.125)

    def test_squash_ratio(self):
        assert squash_ratio(10, 10) == pytest.approx(0.5)
        assert squash_ratio(0, 10) == 0.0
        assert squash_ratio(float("nan"), 10) == 0.0

    def test_squash_ratio_validation(self):
        with pytest.raises(ValueError):
            squash_ratio(-1, 10)
        with pytest.raises(ValueError):
            squash_ratio(1, 0)


class TestGetWeights:
    def test_algorithm2_frequencies(self):
        freqs = get_weights(["food", "food", "service"], ["food", "service", "ambiance"])
        assert freqs == {"food": 2 / 3, "service": 1 / 3, "ambiance": 0.0}

    def test_empty_history_zero_frequencies(self):
        assert get_weights([], ["a", "b"]) == {"a": 0.0, "b": 0.0}

    def test_unknown_dimension_rejected(self):
        with pytest.raises(KeyError):
            get_weights(["zzz"], ["a"])

    def test_dimension_weights_complement(self):
        weights = dimension_weights(["food", "food"], ["food", "service"])
        assert weights == {"food": 0.0, "service": 1.0}

    def test_single_dimension_keeps_weight_one(self):
        # MovieLens has one dimension; Eq. (1) must not zero everything out
        assert dimension_weights(["rating"] * 5, ["rating"]) == {"rating": 1.0}

    def test_paper_example(self):
        # m=10: overall 3, food 3, service 3, ambiance 1
        history = ["o"] * 3 + ["f"] * 3 + ["s"] * 3 + ["a"]
        weights = dimension_weights(history, ["o", "f", "s", "a"])
        assert weights["f"] == pytest.approx(0.7)
        assert weights["a"] == pytest.approx(0.9)


def _rating_map(dimension: str) -> RatingMap:
    spec = RatingMapSpec(Side.ITEM, "city", dimension)
    subgroups = [
        Subgroup("a", RatingDistribution([5, 4, 3, 2, 1])),
        Subgroup("b", RatingDistribution([1, 2, 3, 4, 5])),
    ]
    return RatingMap(spec, SelectionCriteria.root(), subgroups, 30)


class TestSeenMaps:
    def test_attribute_weight_starts_at_one(self):
        seen = SeenMaps(("food",))
        assert seen.attribute_weight((Side.ITEM, "city")) == 1.0

    def test_attribute_weight_decreases_with_repeats(self):
        seen = SeenMaps(("food", "service"))
        seen.add(_rating_map("food"))  # spec: item.city
        key = (Side.ITEM, "city")
        assert seen.attribute_weight(key) < 1.0
        assert seen.attribute_weight((Side.ITEM, "other")) == 1.0

    def test_attribute_weight_smoothing(self):
        # with A attributes, weight = 1 - count / (m + A)
        seen = SeenMaps(("food",), n_attributes=5)
        for __ in range(10):
            seen.add(_rating_map("food"))
        assert seen.attribute_weight((Side.ITEM, "city")) == pytest.approx(
            1 - 10 / (10 + 2)
        )
        # never reaches zero while m is finite
        assert seen.attribute_weight((Side.ITEM, "city")) > 0

    def test_add_and_counts(self):
        seen = SeenMaps(("food", "service"))
        seen.add(_rating_map("food"))
        seen.add(_rating_map("food"))
        seen.add(_rating_map("service"))
        assert seen.total == 3
        assert seen.count_for("food") == 2
        assert seen.weight("service") == pytest.approx(2 / 3)

    def test_unknown_dimension_rejected(self):
        seen = SeenMaps(("food",))
        with pytest.raises(KeyError):
            seen.add(_rating_map("zzz"))

    def test_pooled_distributions_recorded(self):
        seen = SeenMaps(("food",))
        seen.add(_rating_map("food"))
        assert len(seen.pooled_distributions()) == 1
        assert seen.pooled_distributions()[0].total == 30


class TestAggregation:
    def test_max_vs_avg(self):
        normalized = {
            Criterion.CONCISENESS: 0.2,
            Criterion.AGREEMENT: 0.8,
            Criterion.PECULIARITY_SELF: 0.4,
            Criterion.PECULIARITY_GLOBAL: 0.0,
        }
        assert aggregate_utility(normalized, UtilityConfig()) == 0.8
        avg_config = UtilityConfig(aggregation=UtilityAggregation.AVG)
        assert aggregate_utility(normalized, avg_config) == pytest.approx(0.35)

    def test_criteria_subset(self):
        config = UtilityConfig(criteria=(Criterion.AGREEMENT,))
        assert aggregate_utility({Criterion.AGREEMENT: 0.3}, config) == 0.3

    def test_empty_criteria_rejected(self):
        with pytest.raises(ValueError):
            UtilityConfig(criteria=())


class TestScoreCandidateSet:
    def _raw(self):
        return {
            "x": CriterionScores(10.0, 0.9, 0.1, 0.0, 4),
            "y": CriterionScores(5.0, 0.5, 0.9, 0.2, 8),
        }

    def test_minmax_pipeline(self):
        config = UtilityConfig(normalization=NormalizationStrategy.MINMAX)
        seen = SeenMaps(("food", "service"))
        scored = score_candidate_set(
            self._raw(), {"x": "food", "y": "service"}, seen, config
        )
        # per-criterion winner gets 1.0 under minmax + max aggregation
        assert scored["x"].utility == 1.0
        assert scored["y"].utility == 1.0
        assert scored["x"].weight == 1.0  # nothing seen yet

    def test_squash_pipeline_discriminates(self):
        config = UtilityConfig(normalization=NormalizationStrategy.SQUASH)
        seen = SeenMaps(("food", "service"))
        scored = score_candidate_set(
            self._raw(), {"x": "food", "y": "service"}, seen, config
        )
        assert scored["y"].utility > scored["x"].utility  # pec 0.9 dominates

    def test_dimension_weight_applied(self):
        config = UtilityConfig()
        seen = SeenMaps(("food", "service"))
        seen.add(_rating_map("food"))
        scored = score_candidate_set(
            self._raw(), {"x": "food", "y": "service"}, seen, config
        )
        assert scored["x"].weight == 0.0  # food is the only dim seen
        assert scored["y"].weight == 1.0
        assert scored["x"].dw_utility == 0.0

    def test_weights_disabled(self):
        config = UtilityConfig(use_dimension_weights=False)
        seen = SeenMaps(("food", "service"))
        seen.add(_rating_map("food"))
        scored = score_candidate_set(
            self._raw(), {"x": "food", "y": "service"}, seen, config
        )
        assert scored["x"].weight == 1.0

    def test_agreement_floor_rescaling(self):
        config = UtilityConfig(criteria=(Criterion.AGREEMENT,))
        raw = {"x": CriterionScores(0, 0.414, 0, 0, 3)}
        seen = SeenMaps(("food",))
        scored = score_candidate_set(raw, {"x": "food"}, seen, config)
        assert scored["x"].utility == pytest.approx(0.0, abs=1e-9)
