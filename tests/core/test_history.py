"""Tests for exploration-log persistence."""

import pytest

from repro.core.history import ExplorationLog, LoggedMap
from repro.core.modes import ExplorationMode, run_fully_automated


@pytest.fixture(scope="module")
def path(tiny_engine):
    return run_fully_automated(tiny_engine.session(), n_steps=3)


@pytest.fixture(scope="module")
def log(path, tiny_engine):
    return ExplorationLog.from_path(
        path, dataset=tiny_engine.database.name, user="alice", metadata={"x": 1}
    )


class TestFromPath:
    def test_step_count(self, log, path):
        assert len(log.steps) == len(path)

    def test_maps_reduced(self, log):
        for step in log.steps:
            for m in step.maps:
                assert isinstance(m, LoggedMap)
                assert m.n_subgroups >= 2
                assert m.dimension in ("overall", "food")

    def test_criteria_captured(self, log):
        step2 = log.steps[1]
        pairs = {**step2.criteria["reviewer"], **step2.criteria["item"]}
        assert pairs  # FA moved somewhere after step 1

    def test_mode_recorded(self, log):
        assert log.explored_mode is ExplorationMode.FULLY_AUTOMATED

    def test_metadata_kept(self, log):
        assert log.user == "alice"
        assert log.metadata == {"x": 1}


class TestSerialisation:
    def test_json_roundtrip(self, log):
        assert ExplorationLog.from_json(log.to_json()) == log

    def test_save_load(self, log, tmp_path):
        target = tmp_path / "session.json"
        log.save(target)
        assert ExplorationLog.load(target) == log

    def test_load_all(self, log, tmp_path):
        log.save(tmp_path / "a.json")
        log.save(tmp_path / "b.json")
        assert len(ExplorationLog.load_all(tmp_path)) == 2

    def test_schema_version_written(self, log):
        import json

        from repro.core.history import SCHEMA_VERSION

        data = json.loads(log.to_json())
        assert data["schema_version"] == SCHEMA_VERSION
        assert log.to_dict()["schema_version"] == SCHEMA_VERSION

    def test_schema_version_accepted_and_ignored_on_load(self, log):
        import json

        # logs from older builds (no version) and newer builds (future
        # version) both load: the field is accepted and ignored
        data = json.loads(log.to_json())
        del data["schema_version"]
        assert ExplorationLog.from_json(json.dumps(data)) == log
        data["schema_version"] = 999
        assert ExplorationLog.from_json(json.dumps(data)) == log


class TestAnalysis:
    def test_shown_specs(self, log):
        specs = log.shown_specs()
        assert len(specs) == sum(len(s.maps) for s in log.steps)
        assert all(len(s) == 3 for s in specs)

    def test_total_seconds_positive(self, log):
        assert log.total_seconds() > 0

    def test_spec_frequencies(self, log):
        freqs = ExplorationLog.spec_frequencies([log, log])
        assert all(v % 2 == 0 for v in freqs.values())
        assert sum(freqs.values()) == 2 * len(log.shown_specs())
