"""Cross-module property tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RatingDistribution, emd
from repro.core.distance import MapDistanceMethod, map_distance
from repro.core.generator import GeneratorConfig, RMSetGenerator
from repro.core.interestingness import InterestingnessScorer
from repro.core.pruning import PruningStrategy
from repro.core.rating_maps import RatingMap, RatingMapSpec, Subgroup
from repro.core.utility import SeenMaps
from repro.model import RatingGroup, SelectionCriteria, Side

_counts_matrix = st.lists(
    st.lists(st.integers(0, 40), min_size=5, max_size=5),
    min_size=2,
    max_size=6,
).map(np.array)


class TestScorerInvariants:
    @given(counts=_counts_matrix)
    def test_raw_scores_bounded(self, counts):
        scorer = InterestingnessScorer()
        group_size = int(counts.sum())
        scores = scorer.score(counts, group_size, [])
        assert 0 <= scores.agreement <= 1
        assert 0 <= scores.pec_self <= 1
        assert scores.conciseness >= 0
        assert scores.n_subgroups >= 0

    @given(counts=_counts_matrix)
    def test_scale_invariance_of_agreement(self, counts):
        """Multiplying every histogram by a constant leaves agreement fixed."""
        scorer = InterestingnessScorer()
        a = scorer.agreement(counts * 10, int(counts.sum()) * 10)
        b = scorer.agreement(counts * 20, int(counts.sum()) * 20)
        assert a == pytest.approx(b)

    @given(counts=_counts_matrix, factor=st.integers(2, 5))
    def test_peculiarity_grows_with_evidence(self, counts, factor):
        """More records with the same shape ⇒ peculiarity not lower."""
        scorer = InterestingnessScorer()
        small = scorer.self_peculiarity(counts, int(counts.sum()))
        big = scorer.self_peculiarity(
            counts * factor, int(counts.sum()) * factor
        )
        assert big >= small - 1e-9


class TestPhaseOrderInvariance:
    def test_shuffle_seed_does_not_change_final_scores(self, tiny_db):
        group = RatingGroup(tiny_db, SelectionCriteria.root())
        results = []
        for seed in (0, 1, 99):
            generator = RMSetGenerator(
                GeneratorConfig(
                    pruning=PruningStrategy.NONE, shuffle_seed=seed
                )
            )
            result = generator.generate(group, SeenMaps(tiny_db.dimensions))
            results.append(
                {spec: sc.dw_utility for spec, sc in result.scores.items()}
            )
        for other in results[1:]:
            assert set(other) == set(results[0])
            for spec, value in results[0].items():
                assert other[spec] == pytest.approx(value)


def _map_from_counts(counts, attr="a", dim="d"):
    subgroups = [
        Subgroup(f"g{i}", RatingDistribution(row)) for i, row in enumerate(counts)
    ]
    return RatingMap(
        RatingMapSpec(Side.ITEM, attr, dim),
        SelectionCriteria.root(),
        subgroups,
        int(np.asarray(counts).sum()),
    )


class TestMapDistanceInvariants:
    @settings(max_examples=30, deadline=None)
    @given(a=_counts_matrix, b=_counts_matrix)
    def test_profile_symmetric_and_bounded(self, a, b):
        rm_a, rm_b = _map_from_counts(a), _map_from_counts(b, attr="b")
        d_ab = map_distance(rm_a, rm_b, MapDistanceMethod.PROFILE)
        d_ba = map_distance(rm_b, rm_a, MapDistanceMethod.PROFILE)
        assert d_ab == pytest.approx(d_ba)
        assert -1e-9 <= d_ab <= 1 + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(a=_counts_matrix)
    def test_nested_self_distance_zero(self, a):
        if np.asarray(a).sum() == 0:
            return
        rm = _map_from_counts(a)
        assert map_distance(rm, rm, MapDistanceMethod.NESTED) == pytest.approx(
            0.0, abs=1e-6
        )

    @settings(max_examples=20, deadline=None)
    @given(
        p=st.lists(st.integers(0, 30), min_size=5, max_size=5),
        q=st.lists(st.integers(0, 30), min_size=5, max_size=5),
    )
    def test_pooled_equals_distribution_emd(self, p, q):
        if sum(p) == 0 or sum(q) == 0:
            return
        rm_p = _map_from_counts([p, p])
        rm_q = _map_from_counts([q, q])
        assert map_distance(
            rm_p, rm_q, MapDistanceMethod.POOLED
        ) == pytest.approx(
            emd(RatingDistribution(np.array(p) * 2), RatingDistribution(np.array(q) * 2))
        )
