"""Tests for engine configuration plumbing and exceptions."""

import pytest

from repro import SubDEx, SubDExConfig
from repro.core.generator import GeneratorConfig
from repro.core.pruning import PruningStrategy
from repro.core.recommend import RecommenderConfig
from repro.exceptions import (
    ColumnTypeError,
    ConfigurationError,
    EmptyGroupError,
    OperationError,
    PredicateError,
    ReproError,
    SchemaError,
    SQLParseError,
    UnknownAttributeError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SchemaError,
            ColumnTypeError,
            PredicateError,
            EmptyGroupError,
            ConfigurationError,
            OperationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_unknown_attribute_lists_available(self):
        error = UnknownAttributeError("x", ("a", "b"))
        assert "x" in str(error) and "a" in str(error)

    def test_sql_parse_error_carries_query(self):
        error = SQLParseError("bad query", "because")
        assert error.query == "bad query"
        assert "because" in str(error)


class TestRecommenderConfig:
    def test_workers_sequential(self):
        assert RecommenderConfig(parallel=False).workers() == 1

    def test_workers_bounded(self):
        assert RecommenderConfig(max_workers=2).workers() == 2

    def test_workers_defaults_to_cpu(self):
        assert RecommenderConfig().workers() >= 1

    def test_preview_generator_strips_pruning(self, tiny_db):
        engine = SubDEx(
            tiny_db,
            SubDExConfig(
                generator=GeneratorConfig(pruning=PruningStrategy.COMBINED),
                recommender=RecommenderConfig(max_values_per_attribute=2),
            ),
        )
        preview = engine.recommender._preview_generator
        assert preview.config.pruning is PruningStrategy.NONE
        assert preview.config.n_phases == 1

    def test_preview_full_pipeline_shares_generator(self, tiny_db):
        engine = SubDEx(
            tiny_db,
            SubDExConfig(
                recommender=RecommenderConfig(
                    max_values_per_attribute=2,
                    preview_uses_full_pipeline=True,
                )
            ),
        )
        assert engine.recommender._preview_generator is engine.generator


class TestGeneratorDefaults:
    def test_paper_table3_defaults(self):
        config = SubDExConfig()
        assert config.generator.k == 3
        assert config.generator.pruning_diversity_factor == 3
        assert config.recommender.o == 3
        assert config.generator.n_phases == 10
