"""Tests for the phased framework (Alg. 1) and pruning schemes (Alg. 3 + MAB)."""

import pytest

from repro.core.generator import GeneratorConfig, RMSetGenerator
from repro.core.interestingness import InterestingnessScorer
from repro.core.phases import PhasedExecution, PhaseSnapshot
from repro.core.pruning import (
    CombinedPruner,
    ConfidenceIntervalPruner,
    MABPruner,
    NoPruning,
    PruningStrategy,
    make_pruner,
)
from repro.core.rating_maps import enumerate_map_specs
from repro.core.utility import ScoredCandidate, SeenMaps, UtilityConfig
from repro.core.interestingness import Criterion, CriterionScores
from repro.model import RatingGroup, SelectionCriteria


def _execution(tiny_db, n_phases=10, criteria=None):
    group = RatingGroup(tiny_db, criteria or SelectionCriteria.root())
    specs = tuple(enumerate_map_specs(tiny_db, group.criteria))
    seen = SeenMaps(tiny_db.dimensions)
    config = UtilityConfig()
    scorer = InterestingnessScorer()
    return group, PhasedExecution(
        group, specs, seen, config, scorer, n_phases=n_phases
    )


class TestPhasedExecution:
    def test_no_pruning_ranks_all_candidates(self, tiny_db):
        group, execution = _execution(tiny_db)
        result = execution.run(NoPruning(), k_prime=9)
        assert result.pruned == ()
        assert 0 < len(result.ranked) <= 9
        assert result.phases_run == 10

    def test_ranked_by_dw_utility_descending(self, tiny_db):
        __, execution = _execution(tiny_db)
        result = execution.run(NoPruning(), k_prime=10)
        utilities = [result.scores[rm.spec].dw_utility for rm in result.ranked]
        assert utilities == sorted(utilities, reverse=True)

    def test_final_histograms_cover_all_records(self, tiny_db):
        group, execution = _execution(tiny_db)
        result = execution.run(NoPruning(), k_prime=10)
        for rm in result.ranked:
            assert rm.group_size == len(group)
            assert rm.covered <= len(group)

    def test_single_phase_equivalent_ranking(self, tiny_db):
        """Phasing must not change final scores (only pruning can)."""
        __, e1 = _execution(tiny_db, n_phases=1)
        __, e10 = _execution(tiny_db, n_phases=10)
        r1 = e1.run(NoPruning(), k_prime=20)
        r10 = e10.run(NoPruning(), k_prime=20)
        assert [rm.spec for rm in r1.ranked] == [rm.spec for rm in r10.ranked]
        for spec in r1.scores:
            assert r1.scores[spec].dw_utility == pytest.approx(
                r10.scores[spec].dw_utility
            )

    def test_pruning_reduces_survivors(self, tiny_db):
        __, execution = _execution(tiny_db)
        result = execution.run(CombinedPruner(), k_prime=3)
        assert len(result.ranked) <= 3

    def test_ci_pruning_preserves_top1(self, tiny_db):
        """With a conservative delta the top map survives pruning."""
        __, no_prune = _execution(tiny_db)
        truth = no_prune.run(NoPruning(), k_prime=20)
        top_spec = truth.ranked[0].spec
        __, pruned = _execution(tiny_db)
        result = pruned.run(ConfidenceIntervalPruner(delta=0.01), k_prime=3)
        assert top_spec in [rm.spec for rm in result.ranked]


def _snapshot(means: dict, phase=1, n_phases=10) -> PhaseSnapshot:
    scores = {
        name: ScoredCandidate(
            CriterionScores(1, mean, mean, mean, 3),
            {Criterion.AGREEMENT: mean},
            mean,
            1.0,
        )
        for name, mean in means.items()
    }
    return PhaseSnapshot(phase, n_phases, rows_seen=50, n_total=100, scores=scores)


class TestCIPruner:
    def test_keeps_everything_when_few_candidates(self):
        pruner = ConfidenceIntervalPruner()
        pruner.begin(list("ab"), k_prime=3)
        assert pruner.prune(_snapshot({"a": 0.9, "b": 0.1})) == set()

    def test_prunes_clear_losers_late(self):
        pruner = ConfidenceIntervalPruner(delta=0.5)
        pruner.begin(list("abcd"), k_prime=1)
        snapshot = _snapshot(
            {"a": 0.95, "b": 0.05, "c": 0.04, "d": 0.03},
            phase=9,
        )
        # near the end of the scan intervals are narrow → losers go
        snapshot = PhaseSnapshot(9, 10, rows_seen=95, n_total=100, scores=snapshot.scores)
        dropped = pruner.prune(snapshot)
        assert "a" not in dropped
        assert dropped  # someone was pruned

    def test_wide_intervals_prune_nothing(self):
        pruner = ConfidenceIntervalPruner(delta=0.01)
        pruner.begin(list("abcd"), k_prime=1)
        snapshot = PhaseSnapshot(
            1, 10, rows_seen=2, n_total=1000,
            scores=_snapshot({"a": 0.6, "b": 0.5, "c": 0.4, "d": 0.45}).scores,
        )
        assert pruner.prune(snapshot) == set()

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            ConfidenceIntervalPruner(delta=0)


class TestMABPruner:
    def test_rejects_worst_arm_on_schedule(self):
        pruner = MABPruner()
        pruner.begin(list("abcdefgh"), k_prime=2)
        dropped = pruner.prune(
            _snapshot({c: ord(c) / 200 for c in "abcdefgh"}, phase=5)
        )
        assert "a" in dropped or len(dropped) > 0
        assert "h" not in dropped

    def test_never_drops_below_k_prime(self):
        pruner = MABPruner()
        arms = list("abcdefgh")
        pruner.begin(arms, k_prime=3)
        survivors = set(arms)
        for phase in range(1, 10):
            means = {c: ord(c) / 200 for c in survivors}
            dropped = pruner.prune(_snapshot(means, phase=phase))
            survivors -= dropped
        assert len(survivors) >= 3

    def test_requires_begin(self):
        with pytest.raises(RuntimeError):
            MABPruner().prune(_snapshot({"a": 1.0}))

    def test_handles_externally_removed_arms(self):
        pruner = MABPruner()
        pruner.begin(list("abcd"), k_prime=1)
        # "d" vanished from the snapshot (CI pruned it)
        dropped = pruner.prune(_snapshot({"a": 0.9, "b": 0.2, "c": 0.3}, phase=8))
        assert "a" not in dropped


class TestFactory:
    @pytest.mark.parametrize(
        "strategy,cls",
        [
            (PruningStrategy.NONE, NoPruning),
            (PruningStrategy.CONFIDENCE_INTERVAL, ConfidenceIntervalPruner),
            (PruningStrategy.MAB, MABPruner),
            (PruningStrategy.COMBINED, CombinedPruner),
        ],
    )
    def test_make_pruner(self, strategy, cls):
        assert isinstance(make_pruner(strategy), cls)

    def test_generator_config_validation(self):
        with pytest.raises(Exception):
            GeneratorConfig(k=0)
        with pytest.raises(Exception):
            GeneratorConfig(pruning_diversity_factor=0)
        with pytest.raises(Exception):
            GeneratorConfig(n_phases=0)

    def test_k_prime(self):
        assert GeneratorConfig(k=3, pruning_diversity_factor=3).k_prime == 9
