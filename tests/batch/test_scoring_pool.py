"""The scoring thread pool is hoisted: one pool per builder, ever.

Regression guard for per-request executor churn: under parallel scoring
(8 workers here) a burst of requests must construct exactly one
``ThreadPoolExecutor`` and never leave more than ``max_workers`` live
``subdex-score`` threads behind.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import repro.core.recommend as recommend_module


def _live_score_threads() -> list[threading.Thread]:
    return [
        thread
        for thread in threading.enumerate()
        if thread.name.startswith("subdex-score")
    ]


def test_no_thread_churn_across_requests(
    batch_db_factory, batch_engine_factory, monkeypatch
):
    created: list[str] = []

    class CountingExecutor(ThreadPoolExecutor):
        def __init__(self, *args, **kwargs):
            created.append(kwargs.get("thread_name_prefix", ""))
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(
        recommend_module, "ThreadPoolExecutor", CountingExecutor
    )
    before = len(_live_score_threads())
    engine = batch_engine_factory(
        batch_db_factory(seed=1, name="pooldb"), max_workers=8
    )
    session = engine.session()
    session.step(with_recommendations=False)
    for __ in range(20):
        recommendations = session.recommendations(o=3)
        assert recommendations
        # anytime shares the same hoisted pool
        session.recommendations_anytime(o=3)
    assert created == ["subdex-score"]
    assert len(_live_score_threads()) - before <= 8
    # and the builder hands back the same executor object every time
    assert (
        engine.recommender._shared_pool()
        is engine.recommender._shared_pool()
    )
