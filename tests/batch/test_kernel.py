"""Fused family kernel vs its per-spec reference, bit for bit.

``batch_family_scores`` documents a bitwise contract against the per-spec
``batch_raw_scores`` assembly (itself validated against the scalar scorer
by the equivalence suite): the fused ``reduceat``/grouped-matvec pass must
reproduce every criterion column exactly, including NaN-free zeros for
inactive (sub-support) candidate/spec pairs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch.kernel import (
    _family_scores_by_spec,
    batch_dw_column,
    batch_family_dw,
    batch_family_scores,
    batch_raw_scores,
)
from repro.core.utility import UtilityConfig


def _random_family(rng, n, scale=5, n_specs=4, sparse=0.3):
    """Random per-spec count stacks with empty rows and tiny groups."""
    stacks = []
    for __ in range(n_specs):
        n_groups = int(rng.integers(2, 7))
        stack = rng.integers(0, 12, size=(n, n_groups, scale))
        stack[rng.random(stack.shape) < sparse] = 0
        # a few fully-empty subgroup rows and one empty candidate
        stack[:, int(rng.integers(n_groups))] = 0
        stack[int(rng.integers(n))] = 0
        stacks.append(stack.astype(np.int64))
    # group sizes dominate every spec's histogram total (missing values
    # only ever shrink a histogram relative to its group)
    group_sizes = rng.integers(1, 40, size=n) + np.stack(
        [stack.sum(axis=(1, 2)) for stack in stacks]
    ).max(axis=0)
    return stacks, group_sizes.astype(np.int64)


@pytest.mark.parametrize("trial", range(20))
def test_fused_scores_match_per_spec_reference(trial):
    rng = np.random.default_rng(trial)
    n = int(rng.integers(1, 9))
    stacks, group_sizes = _random_family(
        rng, n, n_specs=int(rng.integers(1, 6))
    )
    seen = (
        None
        if trial % 3 == 0
        else rng.dirichlet(np.ones(5), size=int(rng.integers(1, 4)))
    )
    min_support = int(rng.integers(1, 6))
    fused = batch_family_scores(stacks, group_sizes, seen, min_support, True)
    reference = _family_scores_by_spec(
        stacks, group_sizes, seen, min_support, True
    )
    for column in (
        "conciseness",
        "agreement",
        "pec_self",
        "pec_global",
        "n_subgroups",
        "informative",
    ):
        np.testing.assert_array_equal(
            getattr(fused, column), getattr(reference, column), err_msg=column
        )


def test_family_dw_matches_per_spec_columns():
    rng = np.random.default_rng(7)
    stacks, group_sizes = _random_family(rng, 6, n_specs=5)
    seen = rng.dirichlet(np.ones(5), size=2)
    config = UtilityConfig()
    scores = batch_family_scores(stacks, group_sizes, seen, 5, True)
    weights = rng.uniform(0.2, 1.5, size=5)
    dw = batch_family_dw(scores, weights, config)
    assert dw.shape == (6, 5)
    for j, stack in enumerate(stacks):
        column = batch_raw_scores(stack, group_sizes, seen, 5, True)
        np.testing.assert_array_equal(
            dw[:, j], batch_dw_column(column, float(weights[j]), config)
        )


def test_degenerate_shapes():
    config_sizes = np.array([10, 20], dtype=np.int64)
    # no specs at all
    empty = batch_family_scores([], config_sizes, None, 5, True)
    assert empty.conciseness.shape == (2, 0)
    assert batch_family_dw(empty, np.zeros(0), UtilityConfig()).shape == (2, 0)
    # a zero-group spec routes through the per-spec fallback
    stacks = [
        np.zeros((2, 0, 5), dtype=np.int64),
        np.ones((2, 3, 5), dtype=np.int64),
    ]
    scores = batch_family_scores(stacks, config_sizes, None, 5, True)
    assert scores.conciseness.shape == (2, 2)
    assert not scores.informative[:, 0].any()
    assert scores.informative[:, 1].all()
    # no candidates
    none = batch_family_scores(
        [np.zeros((0, 3, 5), dtype=np.int64)], np.zeros(0, dtype=np.int64),
        None, 5, True,
    )
    assert none.conciseness.shape == (0, 1)


def test_zeroed_candidates_score_zero():
    """A candidate with every row below support gets zero everywhere but
    stays informative when two rows hold any ratings at all."""
    stack = np.zeros((1, 3, 5), dtype=np.int64)
    stack[0, 0, 0] = 1
    stack[0, 1, 1] = 1
    scores = batch_family_scores(
        [stack], np.array([100], dtype=np.int64), None, 5, True
    )
    assert scores.informative[0, 0]  # two non-empty rows
    assert scores.n_subgroups[0, 0] == 0  # but neither passes support
    assert scores.agreement[0, 0] == 0.0
    assert scores.pec_self[0, 0] == 0.0
    assert scores.conciseness[0, 0] == 0.0
