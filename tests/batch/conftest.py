"""Fixtures for the family-batched scoring suite.

The equivalence tests run the same request through three engines — the
naive full-pipeline oracle, the indexed per-candidate path and the
batched path — and demand *exact* fingerprint equality, across databases
with missing grouping values, multi-valued attributes, NaN rating scores
and empty groups.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SubDEx, SubDExConfig, SubjectiveDatabase
from repro.core.recommend import RecommenderConfig
from repro.db import Table


def make_db(
    seed: int = 0,
    n_users: int = 60,
    n_items: int = 24,
    n_ratings: int = 800,
    missing: float = 0.0,
    name: str = "batchdb",
) -> SubjectiveDatabase:
    """A deterministic database; ``missing`` drops values and rating scores."""
    rng = np.random.default_rng(seed)

    def drop(value):
        return None if missing and rng.random() < missing else value

    users = Table.from_columns(
        {
            "user_id": list(range(n_users)),
            "gender": [drop(str(rng.choice(["M", "F"]))) for __ in range(n_users)],
            "age_group": [
                drop(str(rng.choice(["young", "adult", "senior"])))
                for __ in range(n_users)
            ],
            "occupation": [
                drop(str(rng.choice(["student", "artist", "lawyer"])))
                for __ in range(n_users)
            ],
        },
        explorable={"user_id": False},
    )
    items = Table.from_columns(
        {
            "item_id": list(range(n_items)),
            "city": [
                drop(str(rng.choice(["NYC", "Austin", "Detroit"])))
                for __ in range(n_items)
            ],
            # multi-valued: FILTERs on cuisine take the residue (rows) path
            "cuisine": [
                frozenset()
                if missing and rng.random() < missing
                else frozenset(
                    rng.choice(
                        ["Pizza", "Sushi", "Tacos", "Burgers"],
                        size=int(rng.integers(1, 3)),
                        replace=False,
                    )
                )
                for __ in range(n_items)
            ],
        },
        explorable={"item_id": False},
    )
    overall = rng.integers(1, 6, n_ratings).astype(float)
    food = rng.integers(1, 6, n_ratings).astype(float)
    if missing:
        overall[rng.random(n_ratings) < missing / 2] = np.nan
        food[rng.random(n_ratings) < missing / 2] = np.nan
    ratings = Table.from_columns(
        {
            "user_id": rng.integers(0, n_users, n_ratings).tolist(),
            "item_id": rng.integers(0, n_items, n_ratings).tolist(),
            "overall": overall.tolist(),
            "food": food.tolist(),
        },
        explorable={"user_id": False, "item_id": False},
    )
    return SubjectiveDatabase(
        users, items, ratings, ("overall", "food"), scale=5, name=name
    )


def build_engine(
    db: SubjectiveDatabase,
    *,
    use_index: bool = True,
    batch: bool = True,
    **recommender_kwargs,
) -> SubDEx:
    recommender_kwargs.setdefault("max_values_per_attribute", 3)
    return SubDEx(
        db,
        SubDExConfig(
            use_index=use_index,
            batch_scoring=batch,
            recommender=RecommenderConfig(**recommender_kwargs),
        ),
    )


@pytest.fixture(scope="session")
def batch_db_factory():
    return make_db


@pytest.fixture(scope="session")
def batch_engine_factory():
    return build_engine
