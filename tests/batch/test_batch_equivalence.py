"""Batched vs indexed vs naive: exact fingerprint equivalence.

The batched path must be *fingerprint-identical* (exact float equality,
via :func:`repro.index.verify.diff_recommendations`) to the naive
full-pipeline oracle — across missing values, multi-valued attributes,
NaN scores, empty groups and every quality-ladder rung.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import SubDEx, SubDExConfig
from repro.anytime import QualityLadder, QualityRung
from repro.core.normalization import NormalizationStrategy
from repro.core.recommend import RecommenderConfig
from repro.core.utility import SeenMaps
from repro.index.verify import diff_recommendations
from repro.model.database import Side
from repro.model.groups import AVPair, SelectionCriteria

EVERYTHING = 10**6


def _seen(engine) -> SeenMaps:
    return SeenMaps(
        engine.database.dimensions,
        n_attributes=len(engine.database.grouping_attributes()),
    )


def _keys(scored) -> list[tuple[str, float]]:
    return [(s.describe(), s.utility) for s in scored]


@pytest.mark.parametrize(
    "missing",
    [0.0, 0.35, 0.6],
    ids=["clean", "missing", "sparse"],
)
def test_recommend_matches_naive_oracle(
    batch_db_factory, batch_engine_factory, missing
):
    """Root-level top-o: batched == indexed == naive, bit for bit.

    ``missing`` > 0 puts NaN scores in the rating columns, drops grouping
    values (empty-label groups) and empties some cuisine sets; 0.6 leaves
    several attribute values with empty or sub-floor groups.
    """
    def db():
        return batch_db_factory(seed=11, missing=missing, name=f"m{missing}")

    naive = batch_engine_factory(db(), use_index=False, batch=False)
    indexed = batch_engine_factory(db(), use_index=True, batch=False)
    batched = batch_engine_factory(db(), use_index=True, batch=True)
    oracle = naive.recommend(o=7)
    assert not diff_recommendations(oracle, indexed.recommend(o=7))
    assert not diff_recommendations(oracle, batched.recommend(o=7))
    stats = batched.recommender.batch_stats()
    assert stats["requests"] == 1
    # multi-valued cuisine FILTERs ride the residue (rows) path, clean
    # single-valued FILTERs the family path — both count as batched
    assert stats["batched"] > 0
    assert stats["families"] > 0
    assert indexed.recommender.batch_stats()["requests"] == 0


def test_recommend_matches_after_a_filter_step(
    batch_db_factory, batch_engine_factory
):
    """Equivalence away from the root (delta-maintained neighbourhoods)."""
    criteria = SelectionCriteria((AVPair(Side.REVIEWER, "gender", "F"),))
    naive = batch_engine_factory(
        batch_db_factory(seed=5, missing=0.2, name="stepdb"),
        use_index=False,
        batch=False,
    )
    batched = batch_engine_factory(
        batch_db_factory(seed=5, missing=0.2, name="stepdb")
    )
    oracle = naive.recommend(criteria, o=7)
    assert not diff_recommendations(oracle, batched.recommend(criteria, o=7))


def test_session_recommendations_identical_across_steps(
    batch_db_factory, batch_engine_factory
):
    """A whole exploration session: seen-map state feeds back identically."""
    records = {}
    for name, batch in [("indexed", False), ("batched", True)]:
        engine = batch_engine_factory(
            batch_db_factory(seed=2, missing=0.25, name="sessiondb"),
            batch=batch,
        )
        session = engine.session()
        records[name] = [
            _keys(session.step(with_recommendations=True).recommendations)
            for __ in range(3)
        ]
    assert records["indexed"] == records["batched"]


@pytest.mark.parametrize("missing", [0.0, 0.3], ids=["clean", "missing"])
def test_every_ladder_rung_matches_unbatched(
    batch_db_factory, batch_engine_factory, missing
):
    """Each rung's cap/stride slices the same candidates either way."""
    def engine(batch):
        return batch_engine_factory(
            batch_db_factory(seed=3, missing=missing, name=f"rung{missing}"),
            batch=batch,
        )

    unbatched, batched = engine(False), engine(True)
    ladder = QualityLadder()
    for rung in QualityRung:
        plan = ladder.plan(rung)
        if plan.use_cached:
            continue
        results = {}
        for name, eng in [("unbatched", unbatched), ("batched", batched)]:
            results[name] = eng.recommender.recommend_anytime(
                SelectionCriteria.root(),
                _seen(eng),
                o=EVERYTHING,
                plan=plan,
            )
        assert _keys(results["unbatched"].recommendations) == _keys(
            results["batched"].recommendations
        ), rung
        assert (
            results["unbatched"].completeness.candidates_scanned
            == results["batched"].completeness.candidates_scanned
        ), rung


def test_uncovered_utility_config_falls_back(batch_db_factory):
    """Non-SQUASH normalisation is outside the kernel contract: the
    request silently takes the per-candidate path and stays correct."""
    def config(use_index):
        base = SubDExConfig(
            use_index=use_index,
            recommender=RecommenderConfig(max_values_per_attribute=3),
        )
        generator = replace(
            base.generator,
            utility=replace(
                base.generator.utility,
                normalization=NormalizationStrategy.MINMAX,
            ),
        )
        return replace(base, generator=generator)

    naive = SubDEx(batch_db_factory(seed=4, name="ablate"), config(False))
    batched = SubDEx(batch_db_factory(seed=4, name="ablate"), config(True))
    oracle = naive.recommend(o=5)
    assert not diff_recommendations(oracle, batched.recommend(o=5))
    assert batched.recommender.batch_stats()["requests"] == 0


def test_anytime_unbudgeted_equals_one_shot(
    batch_db_factory, batch_engine_factory
):
    """The scan-ordered lazy-family path converges to the one-shot
    global-queue path: same exact utilities, same top-o, bit for bit."""
    engine = batch_engine_factory(
        batch_db_factory(seed=8, missing=0.15, name="anytimedb")
    )
    plain = engine.recommend(o=6)
    result = engine.recommender.recommend_anytime(
        SelectionCriteria.root(), _seen(engine), o=6
    )
    assert result.completeness.complete
    assert not diff_recommendations(plain, list(result.recommendations))
