"""End-to-end tests: every endpoint through :class:`SubDExClient` against
an in-process server on an ephemeral port, including error paths."""

from __future__ import annotations

import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.history import SCHEMA_VERSION
from repro.server import ServerError, SubDExClient


class TestServiceEndpoints:
    def test_health(self, client):
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["datasets"] == ["tiny"]

    def test_metrics_reflect_traffic(self, client):
        client.health()
        session = client.create_session()
        session.apply_recommendation(1)
        metrics = client.metrics()
        requests = metrics["requests"]
        assert requests["total"] >= 3
        assert requests["by_endpoint"]["POST /sessions"]["count"] == 1
        latency = requests["by_endpoint"]["POST /sessions"]["latency_seconds"]
        assert latency["p50"] > 0.0 and latency["p95"] >= latency["p50"]
        assert metrics["sessions"]["live"] == 1
        assert metrics["caches"]["tiny"]["group"]["requests"] > 0

    def test_unmatched_route_404(self, client):
        with pytest.raises(ServerError) as exc:
            client.request("GET", "/frobnicate")
        assert exc.value.status == 404
        assert exc.value.code == "not_found"

    def test_method_not_allowed_405(self, client):
        with pytest.raises(ServerError) as exc:
            client.request("DELETE", "/sessions")
        assert exc.value.status == 405


class TestSessionLifecycle:
    def test_create_session_opening_step(self, client):
        session = client.create_session()
        step = session.step
        assert step["index"] == 1
        assert step["criteria"] == {"reviewer": {}, "item": {}}
        assert len(step["maps"]) == 3
        assert [r["number"] for r in step["recommendations"]] == [1, 2, 3]

    def test_create_with_starting_criteria(self, client):
        session = client.create_session(
            criteria={"reviewer": {"gender": "F"}}
        )
        assert session.step["criteria"]["reviewer"] == {"gender": "F"}

    def test_create_with_impossible_criteria_400(self, client):
        with pytest.raises(ServerError) as exc:
            client.create_session(criteria={"reviewer": {"gender": "XYZ"}})
        assert exc.value.status == 400
        assert exc.value.code == "empty_group"

    def test_create_unknown_dataset_400(self, client):
        with pytest.raises(ServerError) as exc:
            client.create_session(dataset="nope")
        assert exc.value.status == 400
        assert exc.value.code == "unknown_dataset"

    def test_list_and_summary(self, client):
        session = client.create_session()
        listed = client.sessions()
        assert [s["session_id"] for s in listed] == [session.id]
        summary = session.summary()
        assert summary["dataset"] == "tiny"
        assert summary["n_steps"] == 1
        assert summary["criteria"] == {"reviewer": {}, "item": {}}

    def test_close_then_gone_410(self, client):
        session = client.create_session()
        assert session.close()["closed"] is True
        with pytest.raises(ServerError) as exc:
            session.maps()
        assert exc.value.status == 410
        assert exc.value.code == "session_gone"
        with pytest.raises(ServerError) as exc:
            session.close()
        assert exc.value.status == 410

    def test_unknown_session_404(self, client):
        with pytest.raises(ServerError) as exc:
            client.request("GET", f"/sessions/{'f' * 32}/maps")
        assert exc.value.status == 404
        assert exc.value.code == "unknown_session"

    def test_session_cap_429(self, make_server):
        server = make_server(max_sessions=2)
        with SubDExClient(server.url) as client:
            client.create_session()
            client.create_session()
            with pytest.raises(ServerError) as exc:
                client.create_session()
            assert exc.value.status == 429
            assert exc.value.code == "too_many_sessions"

    def test_idle_eviction_410(self, make_server):
        server = make_server(max_sessions=4, session_ttl_seconds=0.05)
        with SubDExClient(server.url) as client:
            session = client.create_session()
            time.sleep(0.1)
            with pytest.raises(ServerError) as exc:
                session.maps()
            assert exc.value.status == 410
            assert "evicted" in exc.value.message


class TestExploration:
    def test_maps_endpoint_matches_step(self, client):
        session = client.create_session()
        payload = session.maps()
        assert payload["step_index"] == 1
        assert payload["maps"] == session.step["maps"]

    def test_recommendations_endpoint(self, client):
        session = client.create_session()
        recommendations = session.recommendations()
        assert recommendations == session.step["recommendations"]
        assert len(session.recommendations(o=2)) == 2

    def test_recommendations_bad_o_400(self, client):
        session = client.create_session()
        for bad in ("abc", "0"):
            with pytest.raises(ServerError) as exc:
                client.request(
                    "GET",
                    f"/sessions/{session.id}/recommendations",
                    query={"o": bad},
                )
            assert exc.value.status == 400

    def test_apply_recommendation(self, client):
        session = client.create_session()
        target = session.step["recommendations"][0]["target"]
        step = session.apply_recommendation(1)
        assert step["index"] == 2
        assert step["criteria"] == target
        assert step["operation"] is not None

    def test_apply_invalid_recommendation_400(self, client):
        session = client.create_session()
        for bad in (0, 99, "one", True):
            with pytest.raises(ServerError) as exc:
                session.apply_recommendation(bad)
            assert exc.value.status == 400
            assert exc.value.code == "invalid_recommendation"

    def test_apply_sql_edit(self, client):
        session = client.create_session()
        step = session.apply_sql("reviewer", "gender = 'F'")
        assert step["criteria"]["reviewer"] == {"gender": "F"}

    def test_apply_add_then_drop(self, client):
        session = client.create_session()
        step = session.apply_add("item", "city", "NYC")
        assert step["criteria"]["item"] == {"city": "NYC"}
        step = session.apply_drop("item", "city")
        assert step["criteria"]["item"] == {}

    def test_apply_empty_body_400(self, client):
        session = client.create_session()
        with pytest.raises(ServerError) as exc:
            client.request("POST", f"/sessions/{session.id}/apply", {})
        assert exc.value.status == 400

    def test_apply_two_directives_400(self, client):
        session = client.create_session()
        body = {
            "recommendation": 1,
            "sql": {"side": "reviewer", "where": "gender = 'F'"},
        }
        with pytest.raises(ServerError) as exc:
            client.request("POST", f"/sessions/{session.id}/apply", body)
        assert exc.value.status == 400
        assert exc.value.code == "invalid_edit"
        assert session.maps()["step_index"] == 1  # nothing was applied

    def test_history_round_trip(self, client):
        session = client.create_session()
        session.apply_recommendation(1)
        session.apply_sql("reviewer", "gender = 'M'")
        log = session.history()
        assert log["schema_version"] == SCHEMA_VERSION
        assert log["dataset"] == "tiny"
        assert log["mode"] == "user-driven"
        assert len(log["steps"]) == 3
        assert log["metadata"]["session_id"] == session.id
        # the payload is a loadable exploration log
        from repro.core.history import ExplorationLog

        loaded = ExplorationLog.from_json(json.dumps(log))
        assert len(loaded.steps) == 3


class TestWireErrors:
    def test_oversized_body_413(self, make_server):
        server = make_server(max_body_bytes=256)
        with SubDExClient(server.url) as client:
            with pytest.raises(ServerError) as exc:
                client.request(
                    "POST", "/sessions", {"criteria": {"reviewer": {"x": "y" * 512}}}
                )
            assert exc.value.status == 413
            assert exc.value.code == "payload_too_large"

    def test_invalid_json_400(self, server):
        connection = http.client.HTTPConnection(*server.server_address)
        try:
            connection.request(
                "POST",
                "/sessions",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["error"]["code"] == "invalid_json"
        finally:
            connection.close()

    def test_non_object_body_400(self, client):
        with pytest.raises(ServerError) as exc:
            client.request("POST", "/sessions", [1, 2, 3])
        assert exc.value.status == 400
        assert exc.value.code == "invalid_json"


class TestConcurrentClients:
    def test_eight_users_identical_opening_steps(self, server):
        """8 concurrent users: everyone gets the single-thread answer."""
        n_users = 8
        barrier = threading.Barrier(n_users)

        def explore(user: int):
            with SubDExClient(server.url) as client:
                barrier.wait()
                session = client.create_session()
                opening = [
                    (rm["side"], rm["attribute"], rm["dimension"])
                    for rm in session.step["maps"]
                ]
                step = session.apply_recommendation(1)
                session.history()
                session.close()
                return opening, step["index"]

        with ThreadPoolExecutor(max_workers=n_users) as pool:
            results = [
                f.result()
                for f in [pool.submit(explore, u) for u in range(n_users)]
            ]

        openings = {tuple(opening) for opening, _ in results}
        assert len(openings) == 1  # identical across all users
        assert all(index == 2 for _, index in results)
        # the shared per-dataset cache amortised the identical opening steps
        metrics = SubDExClient(server.url).metrics()
        assert metrics["caches"]["tiny"]["result"]["hits"] > 0
        assert metrics["sessions"]["created"] == n_users
        assert metrics["sessions"]["closed"] == n_users
