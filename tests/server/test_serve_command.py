"""Acceptance: ``python -m repro serve --dataset yelp`` starts a real server
process a :class:`SubDExClient` can explore against."""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.server import ServerError, SubDExClient

_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def serve_process():
    """``python -m repro serve`` on an ephemeral port, at test scale."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--dataset",
            "yelp",
            "--scale",
            "0.01",
            "--port",
            "0",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = process.stdout.readline()  # "SubDEx serving yelp on http://..."
        assert "http://" in banner, f"unexpected serve banner: {banner!r}"
        url = banner.strip().rsplit(" ", 1)[-1]
        deadline = time.monotonic() + 30.0
        while True:
            try:
                with SubDExClient(url, timeout=5.0) as client:
                    client.health()
                break
            except (ServerError, OSError):
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.1)
        yield url
    finally:
        process.terminate()
        process.wait(timeout=10)


def test_serve_command_end_to_end(serve_process):
    with SubDExClient(serve_process) as client:
        assert client.health()["datasets"] == ["yelp"]
        session = client.create_session()
        maps = session.maps()["maps"]
        assert len(maps) == 3 and all(m["subgroups"] for m in maps)
        recommendations = session.recommendations()
        assert recommendations and recommendations[0]["number"] == 1
        step = session.apply_recommendation(1)
        assert step["index"] == 2
        history = session.history()
        assert len(history["steps"]) == 2 and history["dataset"] == "yelp"
        assert client.metrics()["requests"]["total"] >= 5
        session.close()
