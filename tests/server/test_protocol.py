"""Tests for the JSON wire protocol payloads and selection edits."""

import pytest

from repro.model import AVPair, SelectionCriteria, Side
from repro.server.metrics import pure_percentile
from repro.server.protocol import (
    ProtocolError,
    apply_edit,
    criteria_from_json,
    criteria_to_json,
    error_payload,
    step_to_json,
)


class TestCriteriaJson:
    def test_round_trip(self):
        criteria = SelectionCriteria.of(
            reviewer={"gender": "F", "age_group": "young"},
            item={"city": "NYC"},
        )
        assert criteria_from_json(criteria_to_json(criteria)) == criteria

    def test_root_round_trip(self):
        root = SelectionCriteria.root()
        payload = criteria_to_json(root)
        assert payload == {"reviewer": {}, "item": {}}
        assert criteria_from_json(payload) == root

    def test_none_is_root(self):
        assert criteria_from_json(None) == SelectionCriteria.root()

    def test_unknown_side_rejected(self):
        with pytest.raises(ProtocolError, match="unknown criteria side"):
            criteria_from_json({"robots": {"gender": "F"}})

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            criteria_from_json([1, 2, 3])
        with pytest.raises(ProtocolError):
            criteria_from_json({"reviewer": "gender=F"})


class TestApplyEdit:
    @pytest.fixture
    def current(self):
        return SelectionCriteria.of(reviewer={"gender": "F"})

    def test_add(self, current):
        edited = apply_edit(
            current,
            {"add": {"side": "item", "attribute": "city", "value": "NYC"}},
        )
        assert AVPair(Side.ITEM, "city", "NYC") in edited
        assert AVPair(Side.REVIEWER, "gender", "F") in edited

    def test_drop(self, current):
        edited = apply_edit(
            current, {"drop": {"side": "reviewer", "attribute": "gender"}}
        )
        assert edited == SelectionCriteria.root()

    def test_drop_missing_rejected(self, current):
        with pytest.raises(ProtocolError, match="not part of the current"):
            apply_edit(current, {"drop": {"side": "item", "attribute": "city"}})

    def test_sql_replaces_one_side(self, current):
        edited = apply_edit(
            current,
            {
                "sql": {
                    "side": "reviewer",
                    "where": "gender = 'M' AND age_group = 'young'",
                }
            },
        )
        assert edited == SelectionCriteria.of(
            reviewer={"gender": "M", "age_group": "young"}
        )

    def test_sql_keeps_other_side(self):
        current = SelectionCriteria.of(item={"city": "NYC"})
        edited = apply_edit(
            current, {"sql": {"side": "reviewer", "where": "gender = 'F'"}}
        )
        assert AVPair(Side.ITEM, "city", "NYC") in edited
        assert AVPair(Side.REVIEWER, "gender", "F") in edited

    def test_sql_rejects_disjunction(self, current):
        with pytest.raises(ProtocolError, match="conjunctions"):
            apply_edit(
                current,
                {
                    "sql": {
                        "side": "reviewer",
                        "where": "gender = 'F' OR gender = 'M'",
                    }
                },
            )

    def test_full_criteria_replacement(self, current):
        edited = apply_edit(
            current, {"criteria": {"item": {"city": "Austin"}}}
        )
        assert edited == SelectionCriteria.of(item={"city": "Austin"})

    def test_exactly_one_edit_kind_required(self, current):
        with pytest.raises(ProtocolError, match="exactly one"):
            apply_edit(current, {})
        with pytest.raises(ProtocolError, match="exactly one"):
            apply_edit(
                current,
                {
                    "add": {"side": "item", "attribute": "city", "value": "NYC"},
                    "drop": {"side": "reviewer", "attribute": "gender"},
                },
            )

    def test_missing_fields_rejected(self, current):
        with pytest.raises(ProtocolError, match="missing field"):
            apply_edit(current, {"add": {"side": "item", "attribute": "city"}})
        with pytest.raises(ProtocolError, match="unknown side"):
            apply_edit(
                current,
                {"add": {"side": "x", "attribute": "city", "value": "NYC"}},
            )


class TestStepPayload:
    def test_step_shape(self, tiny_engine):
        session = tiny_engine.session()
        record = session.step(with_recommendations=True)
        payload = step_to_json(record)
        assert payload["index"] == 1
        assert payload["group_size"] == record.group_size
        assert payload["operation"] is None
        assert len(payload["maps"]) == len(record.result.selected)
        for rm_payload, rm in zip(payload["maps"], record.result.selected):
            assert rm_payload["dimension"] == rm.dimension
            assert rm_payload["n_subgroups"] == rm.n_subgroups
            assert len(rm_payload["subgroups"]) == rm.n_subgroups
            for sg in rm_payload["subgroups"]:
                assert sum(sg["counts"]) == sg["size"]
        numbers = [r["number"] for r in payload["recommendations"]]
        assert numbers == list(range(1, len(numbers) + 1))

    def test_payload_is_json_serialisable(self, tiny_engine):
        import json

        record = tiny_engine.session().step(with_recommendations=True)
        json.dumps(step_to_json(record))  # labels/values all coerced


class TestErrorPayload:
    def test_shape(self):
        payload = error_payload("nope", "went wrong")
        assert payload == {"error": {"code": "nope", "message": "went wrong"}}


class TestPurePercentile:
    def test_median(self):
        assert pure_percentile([1.0, 2.0, 3.0], 50.0) == 2.0

    def test_interpolates(self):
        assert pure_percentile([0.0, 10.0], 50.0) == 5.0

    def test_empty_is_nan(self):
        import math

        assert math.isnan(pure_percentile([], 95.0))

    def test_matches_numpy(self):
        import numpy as np

        samples = list(np.random.default_rng(3).uniform(0, 1, 101))
        for q in (0.0, 25.0, 50.0, 95.0, 100.0):
            assert pure_percentile(samples, q) == pytest.approx(
                float(np.percentile(samples, q))
            )
