"""Server observability: trace headers, debug breakdowns, scrape formats."""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.server import ServerError, SubDExClient


def raw_get(server, path, headers=None):
    """One GET outside the client, returning (status, headers, body)."""
    connection = http.client.HTTPConnection(*server.server_address)
    try:
        connection.request("GET", path, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.headers), response.read()
    finally:
        connection.close()


class TestTraceHeaders:
    def test_every_response_carries_a_trace_id(self, client, server):
        client.health()
        assert client.last_trace_id is not None
        assert len(client.last_trace_id) == 32

    def test_client_supplied_trace_id_is_adopted(self, server):
        with SubDExClient(server.url, trace_id="deadbeef00112233") as client:
            client.health()
            assert client.last_trace_id == "deadbeef00112233"

    def test_malformed_trace_id_is_ignored(self, server):
        status, headers, __ = raw_get(
            server, "/health", headers={"X-Trace-Id": "not valid!!"}
        )
        assert status == 200
        assert headers["X-Trace-Id"] != "not valid!!"

    def test_server_errors_quote_the_trace_id(self, client):
        with pytest.raises(ServerError) as exc:
            client.request("GET", "/sessions/" + "0" * 32)
        assert exc.value.trace_id is not None
        assert f"[trace {exc.value.trace_id}]" in str(exc.value)

    def test_tracing_disabled_omits_the_header(self, make_server):
        server = make_server(tracing_enabled=False)
        status, headers, __ = raw_get(server, "/health")
        assert status == 200
        assert "X-Trace-Id" not in headers
        assert server.trace_buffer.total_recorded == 0


class TestDebugMode:
    def test_debug_attaches_a_span_tree(self, client):
        data = client.request(
            "POST", "/sessions?debug=1", {"dataset": "tiny"}
        )
        debug = data["debug"]
        assert debug["trace_id"] == client.last_trace_id
        tree = debug["spans"]
        assert tree["name"] == "request"
        assert tree["attributes"]["route"] == "POST /sessions"
        names = {child["name"] for child in tree["children"]}
        assert "session.step" in names

    def test_debug_span_durations_sum_close_to_wall_time(self, client):
        started = time.perf_counter()
        data = client.request(
            "POST", "/sessions?debug=1", {"dataset": "tiny"}
        )
        wall_ms = (time.perf_counter() - started) * 1000.0
        tree = data["debug"]["spans"]
        root_ms = tree["duration_ms"]
        # the root span covers the handler, which dominates the request:
        # it must account for most of the observed wall time and its
        # children must never sum past their parent
        assert root_ms <= wall_ms
        assert root_ms >= 0.1

        def max_child_sum(node):
            total = sum(c["duration_ms"] for c in node["children"])
            assert total <= node["duration_ms"] * 1.10
            for child in node["children"]:
                max_child_sum(child)

        max_child_sum(tree)

    def test_without_debug_no_breakdown(self, client):
        data = client.request("POST", "/sessions", {"dataset": "tiny"})
        assert "debug" not in data


class TestDebugTracesEndpoint:
    def test_recent_traces_most_recent_first(self, client):
        client.health()
        client.request("GET", "/sessions")
        data = client.request("GET", "/debug/traces")
        assert data["tracing_enabled"] is True
        assert data["returned"] >= 2
        routes = [
            t["spans"][0]["attributes"]["route"] for t in data["traces"]
        ]
        assert routes[0] == "GET /sessions"  # the most recent completed

    def test_min_ms_and_limit_filters(self, client):
        for _ in range(3):
            client.health()
        data = client.request(
            "GET", "/debug/traces", query={"limit": 1, "min_ms": 0}
        )
        assert data["returned"] == 1
        data = client.request(
            "GET", "/debug/traces", query={"min_ms": 60_000}
        )
        assert data["returned"] == 0

    def test_bad_parameters_400(self, client):
        for query in ({"min_ms": "soon"}, {"limit": "few"}, {"limit": 0}):
            with pytest.raises(ServerError) as exc:
                client.request("GET", "/debug/traces", query=query)
            assert exc.value.status == 400

    def test_ring_eviction_is_visible(self, make_server):
        server = make_server(trace_buffer_size=2)
        with SubDExClient(server.url) as client:
            for _ in range(4):
                client.health()
            data = client.request("GET", "/debug/traces")
        # the 4 health checks plus this request overflowed the 2-slot ring
        assert data["returned"] <= 2
        assert data["total_recorded"] >= 4


class TestMetricsFormats:
    def test_json_metrics_are_strictly_valid(self, client, server):
        client.health()
        __, __, body = raw_get(server, "/metrics")

        def reject(constant):
            raise ValueError(f"invalid JSON constant {constant!r}")

        payload = json.loads(body.decode(), parse_constant=reject)
        endpoint = payload["requests"]["by_endpoint"]["GET /health"]
        assert endpoint["latency_seconds"]["p95"] > 0.0

    def test_empty_reservoir_renders_null_not_nan(self):
        # regression: an endpoint snapshot with an empty latency reservoir
        # used to emit float("nan"), which json.dumps writes as the bare
        # NaN token strict JSON parsers reject
        from repro.server.metrics import _EndpointStats

        snapshot = _EndpointStats(maxlen=4).snapshot()
        encoded = json.dumps(snapshot)
        assert "NaN" not in encoded

        def reject(constant):
            raise ValueError(f"invalid JSON constant {constant!r}")

        decoded = json.loads(encoded, parse_constant=reject)
        assert decoded["latency_seconds"] == {
            "mean": None, "p50": None, "p95": None, "p99": None,
        }

    def test_prometheus_exposition(self, client, server):
        client.health()
        client.create_session()
        status, headers, body = raw_get(server, "/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert "# TYPE subdex_requests_total counter" in text
        assert "# TYPE subdex_request_seconds histogram" in text
        assert 'subdex_requests_total{endpoint="GET /health",status="200"} 1' in text
        assert 'subdex_sessions{kind="live"} 1' in text
        assert 'subdex_cache_events_total{dataset="tiny",cache="group",kind="hits"}' in text
        assert 'subdex_breaker_open{dataset="tiny"} 0' in text
        assert 'subdex_traces{kind="recorded"}' in text

    def test_unknown_format_400(self, client):
        with pytest.raises(ServerError) as exc:
            client.request("GET", "/metrics", query={"format": "xml"})
        assert exc.value.status == 400

    def test_flight_waits_reported_in_cache_snapshot(self, client):
        client.create_session()
        metrics = client.metrics()
        assert metrics["caches"]["tiny"]["flight_waits"] == 0


class TestTraceFileSink:
    def test_trace_file_receives_every_request(self, tmp_path, make_server):
        path = tmp_path / "traces.jsonl"
        server = make_server(trace_file=str(path))
        with SubDExClient(server.url) as client:
            client.health()
            client.request("GET", "/sessions")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        routes = [
            json.loads(line)["spans"][0]["attributes"]["route"]
            for line in lines
        ]
        assert routes == ["GET /health", "GET /sessions"]


class TestTraceSearchEndpoint:
    """0-worker ``/debug/traces`` search + full-tree fetch parity."""

    def test_filters_and_full_tree_fetch(self, client):
        client.health()
        session = client.create_session()
        client.request("GET", f"/sessions/{session.id}/maps")

        hits = client.traces(op="maps")
        assert hits["returned"] >= 1
        hit = hits["traces"][0]
        assert hit["route"] == "GET /sessions/{id}/maps"

        record = client.trace(hit["trace_id"])
        assert record["trace_id"] == hit["trace_id"]
        assert record["workers"] == []  # no fleet, same record shape
        assert record["partial"] is False
        assert record["tree"]["name"] == "request"
        assert record["tree"]["attributes"]["route"] == hit["route"]

    def test_dataset_and_status_filters(self, client):
        client.create_session()
        assert client.traces(dataset="tiny")["returned"] >= 1
        assert client.traces(dataset="elsewhere")["returned"] == 0
        assert client.traces(status="error")["returned"] == 0
        assert client.traces(status="ok")["returned"] >= 1
        assert client.traces(status="201")["returned"] >= 1

    def test_sampling_counters_exposed(self, client):
        client.health()
        sampling = client.traces()["sampling"]
        assert sampling["kept"] >= 1
        assert sampling["dropped"] == 0
        assert sampling["sample_rate"] == 1.0
        assert "kept_by_reason" in sampling

    def test_invalid_status_filter_400(self, client):
        with pytest.raises(ServerError) as exc:
            client.request(
                "GET", "/debug/traces", query={"status": "teapot"}
            )
        assert exc.value.status == 400

    def test_unknown_trace_404(self, client):
        with pytest.raises(ServerError) as exc:
            client.trace("0" * 32)
        assert exc.value.status == 404
        assert exc.value.code == "unknown_trace"

    def test_sampled_out_traces_are_absent(self, make_server):
        server = make_server(trace_sample_rate=0.0)
        with SubDExClient(server.url) as client:
            client.health()
            trace_id = client.last_trace_id
            with pytest.raises(ServerError) as exc:
                client.trace(trace_id)
            assert exc.value.status == 404
            sampling = client.traces()["sampling"]
            assert sampling["dropped"] >= 1


class TestOpenMetricsFormat:
    def test_openmetrics_content_type_and_eof(self, client, server):
        client.health()
        status, headers, body = raw_get(
            server, "/metrics?format=openmetrics"
        )
        assert status == 200
        assert headers["Content-Type"].startswith(
            "application/openmetrics-text"
        )
        text = body.decode()
        assert text.endswith("\n# EOF\n")
        assert "# TYPE subdex_requests_total counter" in text

    def test_prometheus_format_carries_exemplars(self, client, server):
        client.create_session()
        __, __, body = raw_get(server, "/metrics?format=prometheus")
        text = body.decode()
        assert '} # {trace_id="' not in text  # exemplars have values too
        assert '# {trace_id="' in text
        # exemplars appear only on _bucket sample lines
        for line in text.splitlines():
            if '# {trace_id="' in line:
                assert "_bucket{" in line

    def test_collector_counters_in_scrape(self, client, server):
        client.health()
        __, __, body = raw_get(server, "/metrics?format=prometheus")
        text = body.decode()
        assert 'subdex_traces{kind="collect_kept"}' in text
        assert 'subdex_traces{kind="collect_stored"}' in text


class TestTraceFileRotation:
    def test_server_rotates_trace_file(self, tmp_path, make_server):
        path = tmp_path / "traces.jsonl"
        server = make_server(
            trace_file=str(path),
            trace_file_max_mb=2048 / (1024 * 1024),  # 2 KiB budget
        )
        with SubDExClient(server.url) as client:
            for _ in range(30):
                client.health()
        assert server.trace_file_sink.rotations >= 1
        assert path.exists()
        assert (tmp_path / "traces.jsonl.1").exists()
        for line in path.read_text().splitlines():
            json.loads(line)  # rotation never tears a line
