"""The TTL-vs-in-flight race: eviction must never yank a session mid-handler."""

from __future__ import annotations

import threading

import pytest

from repro.server import SessionGoneError, SessionRegistry


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class StubSession:
    """Just enough surface for the registry bookkeeping."""

    n_steps = 0


@pytest.fixture
def registry():
    clock = FakeClock()
    instance = SessionRegistry(max_sessions=4, ttl_seconds=10.0, clock=clock)
    instance.test_clock = clock  # type: ignore[attr-defined]
    return instance


def test_ttl_firing_during_a_request_does_not_evict_or_deadlock(registry):
    """The TTL expires while a handler holds the session lock: the handler
    completes normally, the *next* idle window evicts, and the late request
    gets a truthful 410 — no deadlock anywhere."""
    managed = registry.create("tiny", StubSession)
    sid = managed.session_id

    in_handler = threading.Event()
    release_handler = threading.Event()
    handler_result = {}

    def long_request():
        with registry.acquire(sid) as live:
            in_handler.set()
            assert release_handler.wait(10.0)
            handler_result["session"] = live.session_id

    worker = threading.Thread(target=long_request)
    worker.start()
    assert in_handler.wait(5.0)

    # the TTL fires mid-handler...
    registry.test_clock.advance(60.0)
    assert registry.evict_idle() == []  # ...but a locked session is not idle
    assert registry.live_count == 1

    release_handler.set()
    worker.join(5.0)
    assert not worker.is_alive(), "handler deadlocked against eviction"
    assert handler_result["session"] == sid

    # the handler's completion refreshed last_used: still alive now
    assert registry.evict_idle() == []

    # a *real* idle window later, the session goes - and stays queryable as 410
    registry.test_clock.advance(60.0)
    assert registry.evict_idle() == [sid]
    with pytest.raises(SessionGoneError) as excinfo:
        with registry.acquire(sid):
            pass
    assert excinfo.value.reason == "evicted"


def test_eviction_waits_out_a_race_on_the_session_lock(registry):
    """A request that grabbed the lock just before eviction keeps its
    session for the whole handler, even across many eviction attempts."""
    managed = registry.create("tiny", StubSession)
    sid = managed.session_id

    in_handler = threading.Event()
    release_handler = threading.Event()

    def long_request():
        with registry.acquire(sid):
            in_handler.set()
            release_handler.wait(10.0)

    worker = threading.Thread(target=long_request)
    worker.start()
    assert in_handler.wait(5.0)
    registry.test_clock.advance(100.0)
    for _ in range(10):  # an eviction storm during the handler
        assert registry.evict_idle() == []
    release_handler.set()
    worker.join(5.0)
    assert registry.live_count == 1  # survived every attempt


def test_close_while_waiting_on_the_lock_yields_gone_not_stale(registry):
    """acquire() re-checks liveness after winning the lock: a session closed
    while we queued must answer 410, not hand out a dead session."""
    managed = registry.create("tiny", StubSession)
    sid = managed.session_id

    in_handler = threading.Event()
    release_handler = threading.Event()
    waiter_error = {}

    def first_request():
        with registry.acquire(sid):
            in_handler.set()
            release_handler.wait(10.0)

    def queued_request():
        try:
            with registry.acquire(sid):
                waiter_error["outcome"] = "acquired"
        except SessionGoneError:
            waiter_error["outcome"] = "gone"

    holder = threading.Thread(target=first_request)
    holder.start()
    assert in_handler.wait(5.0)
    waiter = threading.Thread(target=queued_request)
    waiter.start()

    # while the waiter queues on the session lock, the session is closed
    # out from under it (close() only needs the registry lock)
    registry.close(sid)
    release_handler.set()
    holder.join(5.0)
    waiter.join(5.0)
    assert waiter_error["outcome"] == "gone"
