"""Performance introspection endpoints under concurrent load.

Exercises the tentpole surfaces end-to-end: ``GET /debug/profile`` while
8 client threads drive uncached engine work (the profile must show
``repro.core`` frames), ``GET /debug/spans/summary`` cost accounting,
process-level collectors in both expositions, ``X-Server-Ms`` /
``server_ms`` surfacing, and ``SubDExClient.explain``.
"""

from __future__ import annotations

import threading

import pytest

from repro.server import SubDExClient
from repro.server.client import RetryPolicy, ServerError


def _prometheus_text(client: SubDExClient) -> str:
    return client.request(
        "GET", "/metrics", query={"format": "prometheus"}
    )["text"]


def _load_worker(url: str, barrier: threading.Barrier, stop: threading.Event):
    """Drive uncached engine work: fresh sessions, applied recommendations.

    Fresh sessions with applied operations defeat the result cache — a
    cache-hit-only load would leave nothing of the engine on the sampled
    stacks.
    """
    with SubDExClient(url) as client:
        barrier.wait(timeout=10.0)
        while not stop.is_set():
            try:
                session = client.create_session(dataset="tiny")
                for number in (1, 2):
                    try:
                        session.apply_recommendation(number)
                    except ServerError:
                        break
                session.close()
            except ServerError:
                # racing workers can trip the live-session cap (429);
                # back off and keep hammering
                stop.wait(0.05)


@pytest.fixture
def under_load(server):
    """8 worker threads hammering the server for the test's duration."""
    barrier = threading.Barrier(9)
    stop = threading.Event()
    workers = [
        threading.Thread(
            target=_load_worker,
            args=(server.url, barrier, stop),
            daemon=True,
        )
        for __ in range(8)
    ]
    for worker in workers:
        worker.start()
    barrier.wait(timeout=10.0)
    yield server
    stop.set()
    for worker in workers:
        worker.join(timeout=10.0)


class TestDebugProfile:
    def test_profile_under_load_shows_engine_frames(self, under_load):
        with SubDExClient(under_load.url) as client:
            collapsed = client.profile(seconds=1.0, interval_ms=2.0)
        assert isinstance(collapsed, str) and collapsed.strip()
        # collapsed line format: "frame;frame;leaf count"
        first = collapsed.splitlines()[0]
        frames, count = first.rsplit(" ", 1)
        assert int(count) >= 1
        assert ";" in frames or ":" in frames
        assert "repro.core" in collapsed, (
            "no engine frames in profile under load:\n" + collapsed[:2000]
        )
        # the sampler must be gone once the request completed
        assert not any(
            "profiler" in thread.name for thread in threading.enumerate()
        )

    def test_profile_json_format(self, client):
        payload = client.profile(seconds=0.2, fmt="json")
        assert payload["n_samples"] >= 1
        assert payload["interval_seconds"] == pytest.approx(0.005)
        assert isinstance(payload["stacks"], list)
        assert payload["server_ms"] is not None

    def test_concurrent_profile_conflicts(self, server):
        results: dict[str, object] = {}

        def long_profile():
            with SubDExClient(server.url) as first:
                results["first"] = first.profile(seconds=1.2)

        thread = threading.Thread(target=long_profile, daemon=True)
        thread.start()
        # wait until the first profile is actually sampling — the server
        # runs in-process, so its profiler daemon thread is visible here
        pause = threading.Event()
        for __ in range(500):
            if any(
                "profiler" in worker.name
                for worker in threading.enumerate()
            ):
                break
            pause.wait(0.01)
        else:
            pytest.fail("first profile never started sampling")
        # the second request must be rejected while the first samples;
        # retries are off so the retryable 409 surfaces directly
        with SubDExClient(
            server.url, retry=RetryPolicy(max_attempts=1)
        ) as second:
            with pytest.raises(ServerError) as excinfo:
                second.request(
                    "GET", "/debug/profile", query={"seconds": 0.1}
                )
        thread.join(timeout=15.0)
        error = excinfo.value
        assert error.status == 409
        assert error.code == "profile_in_progress"
        assert error.retryable
        assert isinstance(results["first"], str)

    def test_profile_validates_parameters(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.profile(seconds=0.0)
        assert excinfo.value.status == 400
        with pytest.raises(ServerError) as excinfo:
            client.profile(seconds=0.2, fmt="svg")
        assert excinfo.value.status == 400
        with pytest.raises(ServerError) as excinfo:
            client.request(
                "GET",
                "/debug/profile",
                query={"seconds": 0.1, "interval_ms": 0.0},
            )
        assert excinfo.value.status == 400


class TestSpanSummary:
    def test_span_accounting_after_load(self, under_load):
        with SubDExClient(under_load.url) as client:
            # ensure at least one fully traced request of our own (the
            # live-session cap can 429 while the workers hold sessions)
            pause = threading.Event()
            for __ in range(100):
                try:
                    client.create_session(dataset="tiny").close()
                    break
                except ServerError as error:
                    if error.status != 429:
                        raise
                    pause.wait(0.05)
            summary = client.spans_summary()
        assert summary["tracing_enabled"] is True
        assert summary["traces_seen"] >= 1
        operations = summary["operations"]
        assert operations
        for row in operations:
            assert row["count"] >= 1
            assert row["exclusive_ms"] <= row["inclusive_ms"] + 1e-6
            assert row["errors"] >= 0
        # heaviest-exclusive first
        exclusives = [row["exclusive_ms"] for row in operations]
        assert exclusives == sorted(exclusives, reverse=True)

    def test_limit_parameter(self, client):
        client.create_session(dataset="tiny").close()
        summary = client.spans_summary(limit=1)
        assert len(summary["operations"]) <= 1

    def test_span_metrics_in_prometheus_exposition(self, client):
        client.create_session(dataset="tiny").close()
        text = _prometheus_text(client)
        assert "# TYPE subdex_span_count_total counter" in text
        assert "subdex_span_exclusive_seconds_total" in text


class TestProcessMetrics:
    def test_process_section_in_json_metrics(self, client):
        payload = client.metrics()
        process = payload["process"]
        assert process["rss_bytes"] > 0
        assert process["threads"] >= 1
        assert process["uptime_seconds"] >= 0.0
        assert "gen0" in process["gc_collections"]

    def test_process_families_in_prometheus(self, client):
        text = _prometheus_text(client)
        for family in (
            "subdex_process_resident_memory_bytes",
            "subdex_process_gc_collections_total",
            "subdex_process_threads",
            "subdex_process_uptime_seconds",
        ):
            assert f"# HELP {family}" in text
            assert f"# TYPE {family}" in text


class TestServerMs:
    def test_server_ms_on_responses(self, client):
        payload = client.health()
        assert payload["server_ms"] >= 0.0
        assert client.last_server_ms == payload["server_ms"]
        session = client.create_session(dataset="tiny")
        summary = session.summary()
        assert summary["server_ms"] >= 0.0


class TestExplain:
    def test_explain_returns_cost_breakdown(self, client):
        session = client.create_session(dataset="tiny")
        explained = client.explain("GET", f"/sessions/{session.id}/maps")
        assert explained["trace_id"]
        assert explained["server_ms"] >= 0.0
        assert explained["tree"], "no span tree in debug payload"
        assert explained["costs"], "no flattened costs"
        root = explained["tree"]
        assert root["duration_ms"] >= 0.0
        total_inclusive = max(
            row["inclusive_ms"] for row in explained["costs"]
        )
        assert total_inclusive >= root["duration_ms"] * 0.5
