"""Client retries: full-jitter backoff, Retry-After, typed exhaustion."""

from __future__ import annotations

import json
import random
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.server import RetryPolicy, ServerError, ServerUnavailable, SubDExClient


class ScriptedServer:
    """An HTTP server answering from a scripted list of responses.

    Each script entry is ``(status, payload, headers)``; once the script
    runs out, every further request gets 200 ``{"ok": true}``.
    """

    def __init__(self, script):
        self.script = list(script)
        self.requests = []  # (method, path) log
        self._lock = threading.Lock()
        outer = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args):
                pass

            def _answer(self):
                with outer._lock:
                    outer.requests.append((self.command, self.path))
                    entry = outer.script.pop(0) if outer.script else None
                status, payload, headers = entry or (200, {"ok": True}, {})
                body = json.dumps(payload).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                for name, value in headers.items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(body)

            do_GET = do_POST = do_DELETE = _answer

        self.server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()

    @property
    def url(self):
        return f"http://127.0.0.1:{self.server.server_address[1]}"

    def stop(self):
        self.server.shutdown()
        self.server.server_close()


@pytest.fixture
def scripted():
    servers = []

    def start(script):
        server = ScriptedServer(script)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.stop()


def overloaded(retry_after=None):
    payload = {
        "error": {"code": "overloaded", "message": "shed", "retryable": True}
    }
    headers = {}
    if retry_after is not None:
        payload["error"]["retry_after"] = retry_after
        headers["Retry-After"] = str(retry_after)
    return (503, payload, headers)


def recording_policy(max_attempts=4, **kwargs):
    sleeps = []
    policy = RetryPolicy(
        max_attempts=max_attempts,
        rng=random.Random(42),
        sleep=sleeps.append,
        **kwargs,
    )
    return policy, sleeps


def test_get_retries_transient_503s_until_success(scripted):
    server = scripted([overloaded(), overloaded()])
    policy, sleeps = recording_policy()
    with SubDExClient(server.url, retry=policy) as client:
        assert client.request("GET", "/health") == {"ok": True}
    assert len(server.requests) == 3
    assert len(sleeps) == 2
    # full jitter: each sleep is inside [0, min(cap, base * 2**attempt)]
    for attempt, slept in enumerate(sleeps):
        assert 0.0 <= slept <= min(
            policy.cap_seconds, policy.base_seconds * (2.0 ** attempt)
        )


def test_retry_after_is_honoured_as_a_floor(scripted):
    server = scripted([overloaded(retry_after=1.5)])
    policy, sleeps = recording_policy()
    with SubDExClient(server.url, retry=policy) as client:
        client.request("GET", "/health")
    assert sleeps and sleeps[0] >= 1.5


def test_429_with_retry_after_header_is_retried(scripted):
    server = scripted(
        [(429, {"error": {"code": "too_many_sessions", "message": "full"}},
          {"Retry-After": "2"})]
    )
    policy, sleeps = recording_policy()
    with SubDExClient(server.url, retry=policy) as client:
        client.request("GET", "/sessions")
    assert sleeps[0] >= 2.0


def test_budget_exhaustion_raises_typed_server_unavailable(scripted):
    server = scripted([overloaded()] * 10)
    policy, sleeps = recording_policy(max_attempts=3)
    with SubDExClient(server.url, retry=policy) as client:
        with pytest.raises(ServerUnavailable) as excinfo:
            client.request("GET", "/health")
    error = excinfo.value
    assert error.attempts == 3
    assert isinstance(error.last_error, ServerError)
    assert error.last_error.status == 503
    assert len(server.requests) == 3
    assert len(sleeps) == 2  # no sleep after the final attempt


def test_non_retryable_errors_surface_immediately(scripted):
    server = scripted(
        [(404, {"error": {"code": "unknown_session", "message": "nope"}}, {})]
    )
    policy, sleeps = recording_policy()
    with SubDExClient(server.url, retry=policy) as client:
        with pytest.raises(ServerError) as excinfo:
            client.request("GET", "/sessions/feed")
    assert excinfo.value.status == 404
    assert not isinstance(excinfo.value, ServerUnavailable)
    assert sleeps == []
    assert len(server.requests) == 1


def test_mutating_requests_are_never_replayed(scripted):
    """POST through an overloaded server: one attempt, the error surfaces."""
    server = scripted([overloaded()] * 5)
    policy, sleeps = recording_policy()
    with SubDExClient(server.url, retry=policy) as client:
        with pytest.raises(ServerError) as excinfo:
            client.request("POST", "/sessions", {})
    assert excinfo.value.status == 503
    assert len(server.requests) == 1
    assert sleeps == []


def test_connection_refused_get_raises_server_unavailable():
    # grab a port nothing listens on
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    policy, sleeps = recording_policy(max_attempts=3)
    with SubDExClient(f"http://127.0.0.1:{port}", retry=policy) as client:
        with pytest.raises(ServerUnavailable) as excinfo:
            client.request("GET", "/health")
    assert isinstance(excinfo.value.last_error, OSError)
    assert len(sleeps) == 2


def test_seeded_policies_are_deterministic():
    policy_a = RetryPolicy(rng=random.Random(7), sleep=lambda s: None)
    policy_b = RetryPolicy(rng=random.Random(7), sleep=lambda s: None)
    assert [policy_a.backoff(i) for i in range(4)] == [
        policy_b.backoff(i) for i in range(4)
    ]


class FlakySocketServer:
    """A raw TCP server scripting connection-level failures.

    Behaviours: ``"close"`` — accept then close without a byte (the peer
    sees ``RemoteDisconnected``); ``"garbage"`` — answer a non-HTTP blob
    (``BadStatusLine``); ``"ok"`` — one well-formed JSON 200.
    """

    def __init__(self, behaviours):
        self.listener = socket.socket()
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.behaviours = list(behaviours)
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    @property
    def url(self):
        return f"http://127.0.0.1:{self.listener.getsockname()[1]}"

    def _serve(self):
        for behaviour in self.behaviours:
            try:
                connection, _ = self.listener.accept()
            except OSError:
                return
            try:
                connection.recv(65536)
                if behaviour == "garbage":
                    connection.sendall(b"!!this is not HTTP!!\r\n\r\n")
                elif behaviour == "ok":
                    body = b'{"ok": true}'
                    connection.sendall(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                        b"Connection: close\r\n\r\n" + body
                    )
            finally:
                connection.close()

    def stop(self):
        self.listener.close()


def test_get_retries_disconnects_and_garbage_status_lines():
    """Worker restarts look like resets/garbage mid-response: a dropped
    connection (RemoteDisconnected) and a non-HTTP answer (BadStatusLine)
    must both burn one retry attempt each, then succeed."""
    server = FlakySocketServer(["close", "garbage", "ok"])
    try:
        policy, sleeps = recording_policy()
        with SubDExClient(server.url, retry=policy) as client:
            assert client.request("GET", "/health") == {"ok": True}
        # "close" is absorbed by the transport's single reconnect; the
        # "garbage" BadStatusLine that follows costs one backoff sleep
        assert len(sleeps) == 1
    finally:
        server.stop()


def test_post_does_not_retry_disconnects():
    """Non-idempotent requests must surface transport failures instead of
    silently replaying them."""
    server = FlakySocketServer(["close", "close", "ok"])
    try:
        policy, sleeps = recording_policy()
        with SubDExClient(server.url, retry=policy) as client:
            with pytest.raises(Exception) as excinfo:
                client.request("POST", "/sessions", {})
        assert not isinstance(excinfo.value, ServerError)
        assert sleeps == []
    finally:
        server.stop()
