"""GET /slo end to end: live scorecard, config knobs, Prometheus lines."""

from __future__ import annotations

import json

from repro.server import ServerConfig, SubDExClient, build_server


class TestSloEndpoint:
    def test_scorecard_reflects_traffic(self, client):
        session = client.create_session()
        session.maps()
        session.recommendations()
        session.close()
        card = client.slo()
        assert card["enabled"] is True
        assert card["state"] in ("ok", "slow_burn", "fast_burn")
        classes = card["classes"]
        assert set(classes) == {"recommendations", "steps", "reads", "ops"}
        # POST /sessions landed in steps, maps/close in reads
        assert classes["steps"]["windows"]["total"]["count"] >= 1
        assert classes["reads"]["windows"]["total"]["count"] >= 2
        assert (
            classes["recommendations"]["windows"]["total"]["count"] >= 1
        )
        json.dumps(card, allow_nan=False)  # raises if NaN leaks in

    def test_objectives_and_budget_present(self, client):
        card = client.slo()
        recommendations = card["classes"]["recommendations"]
        assert recommendations["objectives"]["latency_ms"] == 800.0
        assert set(recommendations["budget_remaining"]) == {
            "availability",
            "latency",
            "degraded",
        }
        assert recommendations["burn"]["fast_threshold"] == 14.4

    def test_prometheus_families_exported(self, client):
        client.create_session().close()
        text = client.request("GET", "/metrics", query={"format": "prometheus"})[
            "text"
        ]
        assert "subdex_slo_requests_total" in text
        assert 'subdex_slo_request_seconds_bucket{class="steps",le="+Inf"}' in text
        assert "subdex_slo_request_seconds_sum" in text
        assert "subdex_slo_objective" in text

    def test_disabled_via_config(self, make_server):
        server = make_server(slo_enabled=False)
        with SubDExClient(server.url) as client:
            card = client.slo()
            assert card["enabled"] is False
            assert "classes" not in card
            text = client.request(
                "GET", "/metrics", query={"format": "prometheus"}
            )["text"]
            assert "subdex_slo_requests_total" not in text

    def test_custom_slo_config_file(self, tiny_db, tmp_path):
        import threading

        from repro import SubDEx, SubDExConfig
        from repro.core.recommend import RecommenderConfig

        path = tmp_path / "slo.json"
        path.write_text(
            json.dumps({"classes": {"reads": {"latency_ms": 1}}})
        )
        server = build_server(
            {
                "tiny": lambda: SubDEx(
                    tiny_db,
                    SubDExConfig(
                        recommender=RecommenderConfig(
                            max_values_per_attribute=3
                        )
                    ),
                )
            },
            port=0,
            config=ServerConfig(slo_config_path=str(path)),
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with SubDExClient(server.url) as client:
                card = client.slo()
                assert (
                    card["classes"]["reads"]["objectives"]["latency_ms"]
                    == 1.0
                )
        finally:
            server.shutdown()
            server.server_close()

    def test_slo_events_land_in_server_metrics(self, server):
        # burn-rate transitions reach /metrics through the on_event hook
        server.slo._on_event({"class": "reads", "to": "fast_burn"})
        assert server.metrics.event_count("slo_fast_burn") == 1

    def test_uptime_reported(self, client):
        card = client.slo()
        assert card["uptime_seconds"] >= 0.0
        assert card["recent_events"] == []
