"""Fixtures: an in-process server over the tiny database, on an ephemeral port."""

from __future__ import annotations

import threading

import pytest

from repro import SubDEx, SubDExConfig
from repro.core.recommend import RecommenderConfig
from repro.server import ServerConfig, SubDExClient, build_server


def _tiny_factory(tiny_db):
    return lambda: SubDEx(
        tiny_db,
        SubDExConfig(recommender=RecommenderConfig(max_values_per_attribute=3)),
    )


@pytest.fixture
def server(tiny_db):
    """A live server on an ephemeral port, torn down after the test."""
    instance = build_server(
        {"tiny": _tiny_factory(tiny_db)},
        port=0,
        config=ServerConfig(
            max_sessions=8,
            session_ttl_seconds=300.0,
            max_body_bytes=8192,
        ),
    )
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()


@pytest.fixture
def client(server):
    with SubDExClient(server.url) as instance:
        yield instance


@pytest.fixture
def make_server(tiny_db):
    """Factory for servers with custom configs (cap/TTL/body-limit tests)."""
    servers = []

    def build(**config_kwargs):
        instance = build_server(
            {"tiny": _tiny_factory(tiny_db)},
            port=0,
            config=ServerConfig(**config_kwargs),
        )
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        servers.append(instance)
        return instance

    yield build
    for instance in servers:
        instance.shutdown()
        instance.server_close()
