"""Tests for the session registry: locks, cap, TTL eviction, tombstones."""

from types import SimpleNamespace

import pytest

from repro.server.registry import (
    SessionGoneError,
    SessionLimitError,
    SessionRegistry,
    UnknownSessionError,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def _session():
    return SimpleNamespace(n_steps=0)


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def registry(clock):
    return SessionRegistry(max_sessions=2, ttl_seconds=10.0, clock=clock)


class TestLifecycle:
    def test_create_and_acquire(self, registry):
        managed = registry.create("tiny", _session)
        assert registry.live_count == 1
        with registry.acquire(managed.session_id) as live:
            assert live is managed
        assert registry.counters()["created"] == 1

    def test_ids_are_unique(self, registry):
        a = registry.create("tiny", _session)
        b = registry.create("tiny", _session)
        assert a.session_id != b.session_id

    def test_unknown_session(self, registry):
        with pytest.raises(UnknownSessionError):
            with registry.acquire("f" * 32):
                pass

    def test_close_tombstones(self, registry):
        managed = registry.create("tiny", _session)
        registry.close(managed.session_id)
        assert registry.live_count == 0
        with pytest.raises(SessionGoneError, match="closed"):
            with registry.acquire(managed.session_id):
                pass
        with pytest.raises(SessionGoneError):
            registry.close(managed.session_id)

    def test_factory_failure_releases_slot(self, registry):
        def boom():
            raise RuntimeError("dataset exploded")

        with pytest.raises(RuntimeError):
            registry.create("tiny", boom)
        assert registry.live_count == 0
        registry.create("tiny", _session)  # the slot is reusable


class TestCap:
    def test_limit_enforced(self, registry):
        registry.create("tiny", _session)
        registry.create("tiny", _session)
        with pytest.raises(SessionLimitError):
            registry.create("tiny", _session)
        assert registry.counters()["rejected"] == 1

    def test_close_frees_capacity(self, registry):
        a = registry.create("tiny", _session)
        registry.create("tiny", _session)
        registry.close(a.session_id)
        registry.create("tiny", _session)  # no SessionLimitError


class TestTTLEviction:
    def test_idle_session_evicted(self, registry, clock):
        managed = registry.create("tiny", _session)
        clock.advance(11.0)
        assert registry.evict_idle() == [managed.session_id]
        with pytest.raises(SessionGoneError, match="evicted"):
            with registry.acquire(managed.session_id):
                pass
        assert registry.counters()["evicted"] == 1

    def test_fresh_session_kept(self, registry, clock):
        registry.create("tiny", _session)
        clock.advance(5.0)
        assert registry.evict_idle() == []
        assert registry.live_count == 1

    def test_acquire_refreshes_ttl(self, registry, clock):
        managed = registry.create("tiny", _session)
        clock.advance(8.0)
        with registry.acquire(managed.session_id):
            pass  # releases at t=8 → last_used refreshed
        clock.advance(8.0)
        assert registry.evict_idle() == []  # only 8s idle, not 16

    def test_busy_session_not_evicted(self, registry, clock):
        managed = registry.create("tiny", _session)
        with registry.acquire(managed.session_id):
            clock.advance(100.0)
            # a request is mid-flight: the session's lock is held, so the
            # sweep must skip it no matter how stale the timestamp looks
            assert registry.evict_idle() == []
        assert registry.live_count == 1

    def test_eviction_is_opportunistic_on_create(self, registry, clock):
        stale = registry.create("tiny", _session)
        registry.create("tiny", _session)
        clock.advance(11.0)
        # the registry is at capacity, but creating sweeps first
        registry.create("tiny", _session)
        assert stale.session_id not in [
            s["session_id"] for s in registry.summaries()
        ]


class TestIntrospection:
    def test_summaries(self, registry, clock):
        managed = registry.create("tiny", _session)
        clock.advance(3.0)
        (summary,) = registry.summaries()
        assert summary["session_id"] == managed.session_id
        assert summary["dataset"] == "tiny"
        assert summary["idle_seconds"] == pytest.approx(3.0)

    def test_counters_shape(self, registry):
        counters = registry.counters()
        assert counters == {
            "live": 0,
            "capacity": 2,
            "created": 0,
            "closed": 0,
            "evicted": 0,
            "rejected": 0,
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionRegistry(max_sessions=0)
        with pytest.raises(ValueError):
            SessionRegistry(ttl_seconds=0.0)
