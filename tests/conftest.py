"""Shared fixtures: a small deterministic subjective database."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SubDEx, SubDExConfig, SubjectiveDatabase
from repro.core.recommend import RecommenderConfig
from repro.db import Table


@pytest.fixture(scope="session")
def tiny_db() -> SubjectiveDatabase:
    """50 reviewers × 20 restaurants × 600 ratings, 2 dimensions, seeded."""
    rng = np.random.default_rng(0)
    n_users, n_items, n_ratings = 50, 20, 600
    users = Table.from_columns(
        {
            "user_id": list(range(n_users)),
            "gender": [str(rng.choice(["M", "F"])) for __ in range(n_users)],
            "age_group": [
                str(rng.choice(["young", "adult", "senior"]))
                for __ in range(n_users)
            ],
            "occupation": [
                str(rng.choice(["student", "artist", "lawyer", "teacher"]))
                for __ in range(n_users)
            ],
        },
        explorable={"user_id": False},
    )
    items = Table.from_columns(
        {
            "item_id": list(range(n_items)),
            "cuisine": [
                frozenset(
                    rng.choice(
                        ["Pizza", "Sushi", "Tacos", "Burgers"],
                        size=int(rng.integers(1, 3)),
                        replace=False,
                    )
                )
                for __ in range(n_items)
            ],
            "city": [
                str(rng.choice(["NYC", "Austin", "Detroit"]))
                for __ in range(n_items)
            ],
        },
        explorable={"item_id": False},
    )
    ratings = Table.from_columns(
        {
            "user_id": rng.integers(0, n_users, n_ratings).tolist(),
            "item_id": rng.integers(0, n_items, n_ratings).tolist(),
            "overall": rng.integers(1, 6, n_ratings).tolist(),
            "food": rng.integers(1, 6, n_ratings).tolist(),
        },
        explorable={"user_id": False, "item_id": False},
    )
    return SubjectiveDatabase(
        users, items, ratings, ("overall", "food"), scale=5, name="tiny"
    )


@pytest.fixture(scope="session")
def tiny_engine(tiny_db: SubjectiveDatabase) -> SubDEx:
    """An engine over the tiny database with bounded recommendation fan-out."""
    return SubDEx(
        tiny_db,
        SubDExConfig(recommender=RecommenderConfig(max_values_per_attribute=3)),
    )
