"""Deadlines: budget accounting, cooperative checks, ambient propagation."""

from __future__ import annotations

import pytest

from repro.resilience import (
    Deadline,
    DeadlineExceeded,
    check_deadline,
    current_deadline,
    deadline_scope,
)


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_remaining_and_expiry_follow_the_clock():
    clock = FakeClock()
    deadline = Deadline(2.0, clock=clock)
    assert deadline.budget_seconds == 2.0
    assert deadline.remaining == pytest.approx(2.0)
    assert not deadline.expired
    clock.advance(1.5)
    assert deadline.remaining == pytest.approx(0.5)
    deadline.check()  # still inside the budget: no exception
    clock.advance(1.0)
    assert deadline.expired
    assert deadline.remaining == pytest.approx(-0.5)


def test_check_raises_with_budget_and_overrun():
    clock = FakeClock()
    deadline = Deadline(0.1, clock=clock)
    clock.advance(0.35)
    with pytest.raises(DeadlineExceeded) as excinfo:
        deadline.check()
    assert excinfo.value.budget_seconds == pytest.approx(0.1)
    assert excinfo.value.overrun_seconds == pytest.approx(0.25)
    assert "100ms" in str(excinfo.value)


def test_non_positive_budget_rejected():
    with pytest.raises(ValueError):
        Deadline(0.0)
    with pytest.raises(ValueError):
        Deadline(-1.0)


def test_check_deadline_is_noop_without_ambient_deadline():
    assert current_deadline() is None
    check_deadline()  # must not raise


def test_deadline_scope_installs_and_restores():
    clock = FakeClock()
    expired = Deadline(0.5, clock=clock)
    clock.advance(1.0)
    with deadline_scope(expired) as installed:
        assert installed is expired
        assert current_deadline() is expired
        with pytest.raises(DeadlineExceeded):
            check_deadline()
    assert current_deadline() is None
    check_deadline()  # ambient deadline gone: no-op again


def test_deadline_scopes_nest():
    clock = FakeClock()
    outer = Deadline(10.0, clock=clock)
    inner = Deadline(5.0, clock=clock)
    with deadline_scope(outer):
        with deadline_scope(inner):
            assert current_deadline() is inner
        assert current_deadline() is outer


def test_scope_accepts_none():
    with deadline_scope(None):
        assert current_deadline() is None
        check_deadline()
