"""Fixtures for the resilience/chaos suite: engines and fault-injectable servers."""

from __future__ import annotations

import threading

import pytest

from repro import SubDEx, SubDExConfig
from repro.core.recommend import RecommenderConfig
from repro.server import ServerConfig, SubDExClient, build_server
from repro.server.client import RetryPolicy


@pytest.fixture
def tiny_engine(tiny_db) -> SubDEx:
    """A fresh, fully seeded engine over the tiny database."""
    return SubDEx(
        tiny_db,
        SubDExConfig(recommender=RecommenderConfig(max_values_per_attribute=3)),
    )


@pytest.fixture
def make_server(tiny_db):
    """Factory for live servers with injectable faults and custom configs.

    ``build(fault_plan=..., factories=..., **config_kwargs)`` starts a
    server on an ephemeral port; every server is torn down after the test.
    """
    servers = []

    def default_factories():
        return {
            "tiny": lambda: SubDEx(
                tiny_db,
                SubDExConfig(
                    recommender=RecommenderConfig(max_values_per_attribute=3)
                ),
            )
        }

    def build(fault_plan=None, factories=None, **config_kwargs):
        instance = build_server(
            factories if factories is not None else default_factories(),
            port=0,
            config=ServerConfig(**config_kwargs),
            fault_plan=fault_plan,
        )
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        servers.append(instance)
        return instance

    yield build
    for instance in servers:
        try:
            instance.shutdown()
            instance.server_close()
        except OSError:
            pass  # already closed by a graceful-shutdown test


@pytest.fixture
def no_retry_client():
    """Client factory with retries disabled, so error statuses surface raw."""
    clients = []

    def connect(url: str) -> SubDExClient:
        client = SubDExClient(url, retry=RetryPolicy(max_attempts=1))
        clients.append(client)
        return client

    yield connect
    for client in clients:
        client.close()
