"""Fault injection: seeded determinism, stalls, errors, partial writes."""

from __future__ import annotations

import pytest

from repro.resilience import FaultPlan, InjectedFault


def run_sites(plan: FaultPlan, sites: list[str]) -> list[str]:
    """Drive the plan through a call sequence; returns which calls failed."""
    failed = []
    for site in sites:
        try:
            plan.check(site)
        except InjectedFault:
            failed.append(site)
    return failed


def test_same_seed_replays_identically():
    sequence = ["handler"] * 50 + ["pool.get"] * 50
    plan_a = FaultPlan(seed=7, error_rates={"handler": 0.3}, sleep=lambda s: None)
    plan_b = FaultPlan(seed=7, error_rates={"handler": 0.3}, sleep=lambda s: None)
    assert run_sites(plan_a, sequence) == run_sites(plan_b, sequence)
    assert plan_a.counters() == plan_b.counters()


def test_different_seeds_differ():
    sequence = ["handler"] * 200
    plan_a = FaultPlan(seed=1, error_rates={"handler": 0.5}, sleep=lambda s: None)
    plan_b = FaultPlan(seed=2, error_rates={"handler": 0.5}, sleep=lambda s: None)
    assert run_sites(plan_a, sequence) != run_sites(plan_b, sequence)


def test_unlisted_sites_never_fault():
    plan = FaultPlan(seed=0, error_rates={"handler": 1.0}, sleep=lambda s: None)
    for _ in range(100):
        plan.check("pool.get")  # must not raise
    assert "pool.get" not in plan.counters()


def test_error_rate_one_always_raises_and_counts():
    plan = FaultPlan(seed=0, error_rates={"handler": 1.0}, sleep=lambda s: None)
    for _ in range(10):
        with pytest.raises(InjectedFault) as excinfo:
            plan.check("handler")
        assert excinfo.value.site == "handler"
    assert plan.counters()["handler"]["errors"] == 10


def test_latency_uses_the_injected_sleep():
    slept = []
    plan = FaultPlan(
        seed=0,
        latency_rates={"pool.get": 1.0},
        latency_seconds=0.25,
        sleep=slept.append,
    )
    for _ in range(5):
        plan.check("pool.get")
    assert slept == [0.25] * 5
    assert plan.counters()["pool.get"]["stalls"] == 5


def test_stall_and_error_are_independent_decisions():
    slept = []
    plan = FaultPlan(
        seed=0,
        error_rates={"handler": 1.0},
        latency_rates={"handler": 1.0},
        latency_seconds=0.1,
        sleep=slept.append,
    )
    with pytest.raises(InjectedFault):
        plan.check("handler")
    # the stall happened before the error was raised
    assert slept == [0.1]
    counters = plan.counters()["handler"]
    assert counters["errors"] == 1 and counters["stalls"] == 1


def test_truncate_returns_a_proper_prefix_or_none():
    plan = FaultPlan(seed=0, partial_write_rates={"checkpoint.partial_write": 1.0})
    data = b"0123456789abcdef"
    prefix = plan.truncate("checkpoint.partial_write", data)
    assert prefix == data[:8]
    assert plan.counters()["checkpoint.partial_write"]["partial_writes"] == 1
    # a site with no partial-write rate never truncates
    assert plan.truncate("other.site", data) is None


def test_rates_validated():
    with pytest.raises(ValueError):
        FaultPlan(error_rates={"handler": 1.5})
    with pytest.raises(ValueError):
        FaultPlan(latency_rates={"handler": -0.1})
