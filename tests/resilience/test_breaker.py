"""Circuit breaker: closed → open → half-open transitions, single probe."""

from __future__ import annotations

import pytest

from repro.resilience import BreakerOpenError, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def breaker():
    clock = FakeClock()
    instance = CircuitBreaker(
        "dataset 'bad'", failure_threshold=3, reset_seconds=30.0, clock=clock
    )
    instance.test_clock = clock  # type: ignore[attr-defined]
    return instance


def test_stays_closed_below_the_threshold(breaker):
    for _ in range(2):
        breaker.before_call()
        breaker.record_failure(RuntimeError("corrupt shard"))
    assert breaker.state == "closed"
    assert breaker.consecutive_failures == 2
    breaker.before_call()  # still admitted


def test_success_resets_the_failure_streak(breaker):
    breaker.record_failure(RuntimeError("x"))
    breaker.record_failure(RuntimeError("x"))
    breaker.record_success()
    assert breaker.consecutive_failures == 0
    breaker.record_failure(RuntimeError("x"))
    assert breaker.state == "closed"  # streak restarted, not resumed


def test_opens_at_the_threshold_and_fails_fast(breaker):
    for _ in range(3):
        breaker.record_failure(RuntimeError("corrupt shard"))
    assert breaker.state == "open"
    with pytest.raises(BreakerOpenError) as excinfo:
        breaker.before_call()
    assert excinfo.value.retry_after == pytest.approx(30.0)
    assert "corrupt shard" in excinfo.value.last_error
    breaker.test_clock.advance(10.0)
    with pytest.raises(BreakerOpenError) as excinfo:
        breaker.before_call()
    assert excinfo.value.retry_after == pytest.approx(20.0)  # truthful countdown


def test_half_open_admits_exactly_one_probe(breaker):
    for _ in range(3):
        breaker.record_failure(RuntimeError("x"))
    breaker.test_clock.advance(30.0)
    assert breaker.state == "half_open"
    breaker.before_call()  # the single probe
    with pytest.raises(BreakerOpenError):
        breaker.before_call()  # a second caller must not pile on


def test_probe_success_closes(breaker):
    for _ in range(3):
        breaker.record_failure(RuntimeError("x"))
    breaker.test_clock.advance(30.0)
    breaker.before_call()
    breaker.record_success()
    assert breaker.state == "closed"
    breaker.before_call()  # normal service resumed


def test_probe_failure_reopens_for_a_full_window(breaker):
    for _ in range(3):
        breaker.record_failure(RuntimeError("x"))
    breaker.test_clock.advance(30.0)
    breaker.before_call()
    breaker.record_failure(RuntimeError("still corrupt"))
    assert breaker.state == "open"
    with pytest.raises(BreakerOpenError) as excinfo:
        breaker.before_call()
    assert excinfo.value.retry_after == pytest.approx(30.0)


def test_snapshot_reports_state(breaker):
    snap = breaker.snapshot()
    assert snap == {
        "state": "closed",
        "consecutive_failures": 0,
        "last_error": "never failed",
    }
    for _ in range(3):
        breaker.record_failure(RuntimeError("boom"))
    assert breaker.snapshot()["state"] == "open"
    assert "boom" in breaker.snapshot()["last_error"]


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        CircuitBreaker("x", failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker("x", reset_seconds=0.0)
