"""End-to-end resilience: deadlines, shedding, breakers, restarts, drains."""

from __future__ import annotations

import threading
import time

import pytest

from repro import SubDEx, SubDExConfig
from repro.core.recommend import RecommenderConfig
from repro.resilience import FaultPlan
from repro.server import ServerError, SubDExClient


# -- deadlines ---------------------------------------------------------------

def test_expired_deadline_answers_structured_504(make_server, no_retry_client):
    server = make_server()
    client = no_retry_client(server.url)
    with pytest.raises(ServerError) as excinfo:
        client.request("POST", "/sessions", {}, deadline_ms=1)
    error = excinfo.value
    assert error.status == 504
    assert error.code == "deadline_exceeded"
    assert error.retryable is True
    assert "deadline" in error.message


def test_generous_deadline_succeeds(make_server, no_retry_client):
    server = make_server()
    client = no_retry_client(server.url)
    data = client.request("POST", "/sessions", {}, deadline_ms=60_000)
    assert data["step"]["index"] == 1


def test_invalid_deadline_header_is_400(make_server, no_retry_client):
    server = make_server()
    client = no_retry_client(server.url)
    with pytest.raises(ServerError) as excinfo:
        client.request("GET", "/health", deadline_ms=0)
    assert excinfo.value.status == 400
    assert excinfo.value.code == "invalid_deadline"


def test_server_default_deadline_applies(make_server, no_retry_client):
    server = make_server(default_deadline_ms=1)
    client = no_retry_client(server.url)
    with pytest.raises(ServerError) as excinfo:
        client.request("POST", "/sessions", {})
    assert excinfo.value.status == 504
    assert server.metrics.event_count("deadline_exceeded") == 1


# -- fault injection ----------------------------------------------------------

def test_injected_handler_fault_is_a_well_formed_500(make_server, no_retry_client):
    plan = FaultPlan(seed=0, error_rates={"handler": 1.0})
    server = make_server(fault_plan=plan)
    client = no_retry_client(server.url)
    with pytest.raises(ServerError) as excinfo:
        client.request("GET", "/sessions")
    error = excinfo.value
    assert error.status == 500
    assert error.code == "injected_fault"
    assert error.retryable is True
    assert plan.counters()["handler"]["errors"] >= 1


# -- the engine-pool circuit breaker ------------------------------------------

def test_failed_dataset_load_is_not_cached(tiny_db, make_server, no_retry_client):
    """Satellite 1: a failed load answers 503 and the next attempt rebuilds."""
    attempts = []

    def flaky_factory():
        attempts.append(1)
        if len(attempts) == 1:
            raise RuntimeError("transient shard corruption")
        return SubDEx(
            tiny_db,
            SubDExConfig(
                recommender=RecommenderConfig(max_values_per_attribute=3)
            ),
        )

    server = make_server(
        factories={"flaky": flaky_factory},
        breaker_failure_threshold=3,
    )
    client = no_retry_client(server.url)
    with pytest.raises(ServerError) as excinfo:
        client.create_session()
    assert excinfo.value.status == 503
    assert excinfo.value.code == "dataset_unavailable"
    assert excinfo.value.retryable is True
    # the failure was evicted, not cached: the retry gets a working engine
    session = client.create_session()
    assert session.step["index"] == 1
    assert len(attempts) == 2


def test_breaker_opens_after_repeated_load_failures(make_server, no_retry_client):
    def doomed_factory():
        raise RuntimeError("corrupt dataset")

    server = make_server(
        factories={"bad": doomed_factory},
        breaker_failure_threshold=2,
        breaker_reset_seconds=300.0,
    )
    client = no_retry_client(server.url)
    for _ in range(2):  # two real (failing) load attempts
        with pytest.raises(ServerError) as excinfo:
            client.create_session()
        assert excinfo.value.status == 503
    assert server.pool.breaker("bad").state == "open"
    # now the breaker answers instantly, without re-running the load
    started = time.perf_counter()
    with pytest.raises(ServerError) as excinfo:
        client.create_session()
    assert time.perf_counter() - started < 1.0
    assert excinfo.value.status == 503
    assert excinfo.value.retry_after is not None and excinfo.value.retry_after > 0
    snapshot = client.metrics()["resilience"]["breakers"]["bad"]
    assert snapshot["state"] == "open"


# -- load shedding and degradation --------------------------------------------

def slow_plan(seconds: float) -> FaultPlan:
    """Stall every session-lock handoff, holding requests in the gate."""
    return FaultPlan(
        seed=0,
        latency_rates={"registry.acquire": 1.0},
        latency_seconds=seconds,
    )


def test_hard_limit_sheds_with_retry_after(make_server, no_retry_client):
    server = make_server(
        fault_plan=slow_plan(1.0), max_inflight=1, soft_inflight=1
    )
    client = no_retry_client(server.url)
    session = client.create_session()

    errors = []

    def stalled_read():
        with SubDExClient(server.url) as other:
            try:
                other.request("GET", f"/sessions/{session.id}")
            except ServerError as error:  # pragma: no cover - defensive
                errors.append(error)

    reader = threading.Thread(target=stalled_read)
    reader.start()
    time.sleep(0.3)  # let the reader stall inside the gate
    try:
        with pytest.raises(ServerError) as excinfo:
            client.request("POST", "/sessions", {})
        assert excinfo.value.status == 503
        assert excinfo.value.code == "overloaded"
        assert excinfo.value.retry_after is not None
        # critical introspection still works on a saturated server
        assert client.health()["status"] == "ok"
    finally:
        reader.join(10.0)
    assert not errors
    assert server.metrics.event_count("shed_requests") == 1


def test_soft_limit_degrades_heavy_work(make_server, no_retry_client):
    server = make_server(
        fault_plan=slow_plan(1.2), max_inflight=8, soft_inflight=1
    )
    client = no_retry_client(server.url)
    session = client.create_session()

    def stalled_read():
        with SubDExClient(server.url) as other:
            other.request("GET", f"/sessions/{session.id}")

    reader = threading.Thread(target=stalled_read)
    reader.start()
    time.sleep(0.3)
    try:
        step = session.apply_recommendation(1)
    finally:
        reader.join(10.0)
    assert step["degraded"] is True
    assert step["recommendations"]  # degraded, not empty
    assert server.metrics.event_count("degraded_responses") >= 1


# -- crash-safe sessions -------------------------------------------------------

def test_restart_restores_sessions_with_identical_history(
    tmp_path, make_server, no_retry_client
):
    checkpoint_dir = str(tmp_path / "checkpoints")
    first = make_server(checkpoint_dir=checkpoint_dir)
    client = no_retry_client(first.url)
    session = client.create_session()
    session.apply_recommendation(1)
    before = session.history()
    first.graceful_shutdown(drain_seconds=5.0)

    second = make_server(checkpoint_dir=checkpoint_dir)
    assert second.metrics.event_count("sessions_restored") == 1
    reborn = no_retry_client(second.url)
    after = reborn.request("GET", f"/sessions/{session.id}/history")
    # server_ms is per-request transport metadata, not history
    before.pop("server_ms", None)
    after.pop("server_ms", None)
    assert after == before
    # the restored session is live, not a read-only ghost
    step = reborn.request(
        "POST", f"/sessions/{session.id}/apply", {"recommendation": 1}
    )
    assert step["step"]["index"] == 3


def test_close_deletes_the_checkpoint(tmp_path, make_server, no_retry_client):
    checkpoint_dir = tmp_path / "checkpoints"
    server = make_server(checkpoint_dir=str(checkpoint_dir))
    client = no_retry_client(server.url)
    session = client.create_session()
    assert (checkpoint_dir / f"{session.id}.jsonl").exists()
    session.close()
    assert not (checkpoint_dir / f"{session.id}.jsonl").exists()
    # restart: nothing to restore
    second = make_server(checkpoint_dir=str(checkpoint_dir))
    assert second.registry.live_count == 0


# -- graceful shutdown ---------------------------------------------------------

def test_graceful_shutdown_drains_inflight_requests(make_server):
    """Satellite 3: no request is dropped mid-handler during shutdown."""
    server = make_server(fault_plan=slow_plan(0.6), drain_seconds=10.0)
    with SubDExClient(server.url) as client:
        session = client.create_session()

    outcome = {}

    def slow_request():
        with SubDExClient(server.url) as other:
            outcome["summary"] = other.request("GET", f"/sessions/{session.id}")

    worker = threading.Thread(target=slow_request)
    worker.start()
    time.sleep(0.2)  # the request is now stalled inside the handler
    assert server.gate.inflight >= 1
    drained = server.graceful_shutdown()
    worker.join(10.0)
    assert drained is True
    # the in-flight request completed with a real answer, not a reset
    assert outcome["summary"]["session_id"] == session.id
    # and the server is really down afterwards
    with pytest.raises(OSError):
        import http.client

        probe = http.client.HTTPConnection(
            server.server_address[0], server.server_address[1], timeout=1.0
        )
        probe.request("GET", "/health")
        probe.getresponse()


def test_shutdown_flushes_final_checkpoints(tmp_path, make_server, no_retry_client):
    checkpoint_dir = tmp_path / "checkpoints"
    server = make_server(
        checkpoint_dir=str(checkpoint_dir),
        checkpoint_interval_seconds=3600.0,  # periodic flush will not fire
    )
    client = no_retry_client(server.url)
    session = client.create_session()
    # wipe the on-mutation checkpoint to prove the shutdown flush rewrites it
    (checkpoint_dir / f"{session.id}.jsonl").unlink()
    server.graceful_shutdown(drain_seconds=5.0)
    assert (checkpoint_dir / f"{session.id}.jsonl").exists()
