"""Admission gate: priority shedding, pressure signalling, drains."""

from __future__ import annotations

import threading
from contextlib import ExitStack

import pytest

from repro.resilience import (
    AdmissionGate,
    OverloadedError,
    Priority,
    pressure_scope,
    under_pressure,
)


def test_admit_tracks_inflight():
    gate = AdmissionGate(hard_limit=4)
    assert gate.inflight == 0
    with gate.admit():
        assert gate.inflight == 1
    assert gate.inflight == 0


def test_sheds_normal_work_at_the_hard_limit():
    gate = AdmissionGate(hard_limit=2, soft_limit=2, retry_after_seconds=3.0)
    with ExitStack() as stack:
        stack.enter_context(gate.admit())
        stack.enter_context(gate.admit())
        with pytest.raises(OverloadedError) as excinfo:
            with gate.admit(Priority.NORMAL):
                pass
        assert excinfo.value.inflight == 2
        assert excinfo.value.limit == 2
        assert excinfo.value.retry_after == pytest.approx(3.0)
    assert gate.counters()["shed"] == 1


def test_critical_work_is_never_shed():
    gate = AdmissionGate(hard_limit=1, soft_limit=1)
    with gate.admit():
        # health/metrics/close must get through a saturated gate
        with gate.admit(Priority.CRITICAL) as degraded:
            assert degraded is False
            assert gate.inflight == 2


def test_heavy_work_degrades_past_the_soft_limit():
    gate = AdmissionGate(hard_limit=4, soft_limit=1)
    with gate.admit():  # occupies the soft limit
        with gate.admit(Priority.HEAVY) as degraded:
            assert degraded is True
            assert under_pressure()
        assert not under_pressure()
    assert gate.counters()["degraded"] == 1


def test_normal_reads_do_not_degrade_past_the_soft_limit():
    gate = AdmissionGate(hard_limit=4, soft_limit=1)
    with gate.admit():
        with gate.admit(Priority.NORMAL) as degraded:
            assert degraded is False
            assert not under_pressure()


def test_default_soft_limit_is_three_quarters():
    gate = AdmissionGate(hard_limit=32)
    assert gate.soft_limit == 24
    assert gate.hard_limit == 32


def test_invalid_limits_rejected():
    with pytest.raises(ValueError):
        AdmissionGate(hard_limit=0)
    with pytest.raises(ValueError):
        AdmissionGate(hard_limit=4, soft_limit=5)


def test_pressure_scope_is_thread_local_context():
    gate = AdmissionGate(hard_limit=4, soft_limit=1)
    observed = {}

    def other_thread():
        observed["pressure"] = under_pressure()

    with gate.admit():
        with gate.admit(Priority.HEAVY):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
    # a fresh thread has a fresh context: no pressure leaks across threads
    assert observed["pressure"] is False


def test_drain_returns_immediately_when_idle():
    gate = AdmissionGate(hard_limit=2)
    assert gate.drain(0.01) is True


def test_drain_waits_for_inflight_work():
    gate = AdmissionGate(hard_limit=2)
    release = threading.Event()
    started = threading.Event()

    def request():
        with gate.admit():
            started.set()
            release.wait(5.0)

    worker = threading.Thread(target=request)
    worker.start()
    assert started.wait(5.0)
    assert gate.drain(0.05) is False  # request still running: drain times out
    release.set()
    assert gate.drain(5.0) is True
    worker.join(5.0)


def test_explicit_pressure_scope():
    assert not under_pressure()
    with pressure_scope():
        assert under_pressure()
        with pressure_scope(False):
            assert not under_pressure()
        assert under_pressure()
    assert not under_pressure()
