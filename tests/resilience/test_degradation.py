"""Graceful degradation under pressure: cheaper answers, clearly flagged."""

from __future__ import annotations

from repro.core.caching import CachingEngine
from repro.model.groups import RatingGroup, SelectionCriteria
from repro.core.utility import SeenMaps
from repro.resilience import pressure_scope


def fresh_seen(engine):
    return SeenMaps(
        engine.database.dimensions,
        n_attributes=len(engine.database.grouping_attributes()),
    )


def test_generator_skips_the_gmm_pass_under_pressure(tiny_engine):
    group = RatingGroup(tiny_engine.database, SelectionCriteria.root())

    normal = tiny_engine.generator.generate(group, fresh_seen(tiny_engine))
    assert normal.degraded is False

    with pressure_scope():
        degraded = tiny_engine.generator.generate(group, fresh_seen(tiny_engine))
    assert degraded.degraded is True
    # the degraded selection is the utility-ranked prefix — no diversity
    # optimisation, but still the k best individual maps
    assert list(degraded.selected) == list(degraded.pool)[: len(degraded.selected)]
    assert len(degraded.selected) == len(normal.selected)


def test_session_steps_flag_degradation(tiny_engine):
    session = tiny_engine.session()
    with pressure_scope():
        record = session.step(with_recommendations=False)
    assert record.degraded is True

    fresh = tiny_engine.session()
    assert fresh.step(with_recommendations=False).degraded is False


def test_caching_engine_serves_stale_results_under_pressure(tiny_engine):
    caching = CachingEngine(tiny_engine)
    root = SelectionCriteria.root()

    # full-quality result cached for the root selection under one history
    first = caching.rating_maps(root, fresh_seen(tiny_engine))
    assert first.degraded is False

    # same selection, *different* display history: an exact-key miss —
    # under pressure the engine reuses the latest full-quality result
    seen = fresh_seen(tiny_engine)
    for rating_map in first.selected:
        seen.add(rating_map)
    with pressure_scope():
        stale = caching.rating_maps(root, seen)
    assert stale.degraded is True
    assert [rm.spec for rm in stale.selected] == [rm.spec for rm in first.selected]
    assert caching.stale_hits == 1

    # without pressure the same miss pays the full, exact computation
    recomputed = caching.rating_maps(root, seen)
    assert recomputed.degraded is False


def test_degraded_results_never_enter_the_shared_caches(tiny_engine):
    caching = CachingEngine(tiny_engine)
    root = SelectionCriteria.root()
    with pressure_scope():
        degraded = caching.rating_maps(root, fresh_seen(tiny_engine))
    # nothing cached for the root yet, so the degraded path had to compute
    # — but a degraded answer must not poison the cache
    assert degraded.degraded is True
    after = caching.rating_maps(root, fresh_seen(tiny_engine))
    assert after.degraded is False


def test_pressure_caps_recommendation_candidates(tiny_engine):
    session = tiny_engine.session()
    record = session.step(with_recommendations=True)
    assert record.degraded is False
    with pressure_scope():
        degraded = session.step(
            record.recommendations[0].operation, with_recommendations=True
        )
    assert degraded.degraded is True
    assert degraded.recommendations  # degraded, not empty
