"""Crash-safe checkpoints: round-trip, torn files, atomic writes, replay."""

from __future__ import annotations

import json

import pytest

from repro.core.history import ExplorationLog
from repro.core.modes import ExplorationMode, ExplorationPath
from repro.resilience import (
    CheckpointStore,
    FaultPlan,
    PartialWrite,
    SessionCheckpoint,
    SessionCheckpointer,
    restore_session,
)
from repro.resilience.checkpoint import CheckpointError


@pytest.fixture
def explored_session(tiny_engine):
    """A session with three steps: open, one recommendation, one edit."""
    session = tiny_engine.session()
    record = session.step(with_recommendations=True)
    assert record.recommendations, "tiny fixture must produce recommendations"
    session.step(
        record.recommendations[0].operation, with_recommendations=True
    )
    latest = session.steps[-1]
    if latest.recommendations:
        session.step(
            latest.recommendations[0].operation, with_recommendations=False
        )
    return session


def capture(session) -> SessionCheckpoint:
    return SessionCheckpoint.capture("a" * 32, "tiny", 1700000000.0, session)


def test_jsonl_round_trip(explored_session):
    checkpoint = capture(explored_session)
    text = checkpoint.to_jsonl()
    restored = SessionCheckpoint.from_jsonl(text)
    assert restored == checkpoint
    # the file really is JSONL: one header line + one line per step
    lines = [json.loads(line) for line in text.strip().split("\n")]
    assert lines[0]["record"] == "header"
    assert [line["record"] for line in lines[1:]] == ["step"] * len(
        checkpoint.steps
    )


def test_criteria_values_round_trip_including_sets(explored_session):
    checkpoint = capture(explored_session)
    restored = SessionCheckpoint.from_jsonl(checkpoint.to_jsonl())
    # replay needs the real values (e.g. frozenset cuisine labels), not the
    # wire protocol's flattened display strings
    for original, rebuilt in zip(checkpoint.steps, restored.steps):
        assert rebuilt.operation == original.operation


def test_torn_trailing_line_drops_only_the_newest_step(explored_session):
    checkpoint = capture(explored_session)
    text = checkpoint.to_jsonl()
    torn = text.rstrip("\n")[:-10]  # crash mid-append of the last step
    restored = SessionCheckpoint.from_jsonl(torn)
    assert restored.session_id == checkpoint.session_id
    assert restored.steps == checkpoint.steps[:-1]


def test_unreadable_header_is_fatal():
    with pytest.raises(CheckpointError):
        SessionCheckpoint.from_jsonl("not json\n")
    with pytest.raises(CheckpointError):
        SessionCheckpoint.from_jsonl("")
    with pytest.raises(CheckpointError):
        SessionCheckpoint.from_jsonl('{"record": "step"}\n')


def test_store_save_load_delete(tmp_path, explored_session):
    store = CheckpointStore(tmp_path / "checkpoints")
    checkpoint = capture(explored_session)
    path = store.save(checkpoint)
    assert path.exists() and path.suffix == ".jsonl"
    assert store.load(checkpoint.session_id) == checkpoint
    assert store.load_all() == [checkpoint]
    store.delete(checkpoint.session_id)
    assert not path.exists()
    store.delete(checkpoint.session_id)  # idempotent


def test_load_all_skips_corrupt_files(tmp_path, explored_session):
    store = CheckpointStore(tmp_path)
    checkpoint = capture(explored_session)
    store.save(checkpoint)
    (tmp_path / ("b" * 32 + ".jsonl")).write_text("garbage\n")
    loaded = store.load_all()
    assert loaded == [checkpoint]
    assert store.skipped == 1


def test_partial_write_fault_preserves_the_previous_checkpoint(
    tmp_path, explored_session
):
    healthy = CheckpointStore(tmp_path)
    checkpoint = capture(explored_session)
    healthy.save(checkpoint)

    faulty = CheckpointStore(
        tmp_path,
        fault_plan=FaultPlan(
            seed=0, partial_write_rates={"checkpoint.partial_write": 1.0}
        ),
    )
    with pytest.raises(PartialWrite) as excinfo:
        faulty.save(checkpoint)
    assert 0 < excinfo.value.written < excinfo.value.total
    # the truncated bytes went to the temp file; the rename never happened,
    # so the atomic-write protocol kept the previous checkpoint intact
    assert healthy.load(checkpoint.session_id) == checkpoint


def test_write_error_fault_counts_not_crashes(tmp_path, explored_session):
    store = CheckpointStore(
        tmp_path,
        fault_plan=FaultPlan(
            seed=0, error_rates={"checkpoint.write": 1.0}, sleep=lambda s: None
        ),
    )
    checkpointer = SessionCheckpointer(store)
    assert checkpointer.save(capture(explored_session)) is False
    assert checkpointer.counters()["failures"] == 1
    assert store.load_all() == []


def test_restore_replays_identical_history(tiny_db, tiny_engine, explored_session):
    """The acceptance bar: kill/restart reproduces the history export."""
    checkpoint = capture(explored_session)
    rebuilt_checkpoint = SessionCheckpoint.from_jsonl(checkpoint.to_jsonl())

    # a *fresh* engine, as after a process restart
    from repro import SubDEx, SubDExConfig
    from repro.core.recommend import RecommenderConfig

    fresh = SubDEx(
        tiny_db,
        SubDExConfig(recommender=RecommenderConfig(max_values_per_attribute=3)),
    )
    restored = restore_session(fresh, rebuilt_checkpoint)

    def export(session):
        path = ExplorationPath(ExplorationMode.USER_DRIVEN, session.steps)
        return ExplorationLog.from_path(path, dataset="tiny").to_dict()

    assert export(restored) == export(explored_session)


def test_checkpointer_flush_walks_the_source(tmp_path, explored_session):
    store = CheckpointStore(tmp_path)
    checkpoint = capture(explored_session)
    checkpointer = SessionCheckpointer(store, source=lambda: [checkpoint])
    assert checkpointer.flush() == 1
    assert store.load_all() == [checkpoint]
    counters = checkpointer.counters()
    assert counters["saves"] == 1 and counters["flushes"] == 1


def test_checkpointer_background_thread_flushes(tmp_path, explored_session):
    import threading

    store = CheckpointStore(tmp_path)
    checkpoint = capture(explored_session)
    flushed = threading.Event()

    def source():
        flushed.set()
        return [checkpoint]

    checkpointer = SessionCheckpointer(
        store, source=source, interval_seconds=0.02
    )
    checkpointer.start()
    try:
        assert flushed.wait(5.0)
    finally:
        checkpointer.stop()
    assert store.load_all() == [checkpoint]
