"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import _parse_edit, build_parser, cmd_interactive, main
from repro.model import AVPair, Side


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_summary_defaults(self):
        args = build_parser().parse_args(["summary"])
        assert args.dataset == "yelp"
        assert args.scale == 0.05

    def test_explore_options(self):
        args = build_parser().parse_args(
            ["explore", "--dataset", "movielens", "--steps", "4", "--maps", "2"]
        )
        assert args.steps == 4 and args.maps == 2

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8642
        assert args.max_sessions == 64
        assert args.session_ttl == 1800.0


class TestSummaryCommand:
    def test_prints_table2_fields(self, capsys):
        assert main(["summary", "--dataset", "yelp", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        for field in ("n_attributes", "n_ratings", "n_reviewers", "n_items"):
            assert field in out

    def test_unknown_dataset_exits_2(self, capsys):
        assert main(["summary", "--dataset", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: unknown dataset")
        assert err.count("\n") == 1  # a one-line message, not a traceback


class TestUsageErrors:
    def test_unknown_dataset_explore_exits_2(self, capsys):
        assert main(["explore", "--dataset", "nope"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_log_in_missing_directory_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "no" / "such" / "dir" / "run.json"
        code = main(
            [
                "explore",
                "--dataset",
                "yelp",
                "--scale",
                "0.01",
                "--log",
                str(missing),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "does not exist" in err and err.startswith("repro: ")

    def test_log_path_is_directory_exits_2(self, tmp_path, capsys):
        code = main(
            [
                "explore",
                "--dataset",
                "yelp",
                "--scale",
                "0.01",
                "--log",
                str(tmp_path),
            ]
        )
        assert code == 2
        assert "is a directory" in capsys.readouterr().err

    def test_log_checked_before_exploring(self, tmp_path, capsys):
        # the bad path must fail fast, not after minutes of exploration —
        # the interactive command checks it before loading the dataset
        code = main(
            [
                "interactive",
                "--dataset",
                "yelp",
                "--log",
                str(tmp_path / "nope" / "log.json"),
            ]
        )
        assert code == 2

    def test_serve_unknown_dataset_exits_2(self, capsys):
        assert main(["serve", "--dataset", "nope"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_serve_missing_slo_config_exits_2(self, capsys):
        code = main(["serve", "--slo-config", "/no/such/slo.json"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: --slo-config:")
        assert err.count("\n") == 1  # a one-line message, not a traceback

    def test_serve_invalid_slo_config_exits_2(self, tmp_path, capsys):
        path = tmp_path / "slo.json"
        path.write_text('{"classes": 3}')
        assert main(["serve", "--slo-config", str(path)]) == 2
        err = capsys.readouterr().err
        assert "--slo-config:" in err and "JSON object" in err


class TestExploreCommand:
    def test_explore_writes_log(self, tmp_path, capsys):
        log_path = tmp_path / "run.json"
        code = main(
            [
                "explore",
                "--dataset",
                "yelp",
                "--scale",
                "0.01",
                "--steps",
                "2",
                "--log",
                str(log_path),
            ]
        )
        assert code == 0
        data = json.loads(log_path.read_text())
        assert len(data["steps"]) == 2
        out = capsys.readouterr().out
        assert "Step 1" in out and "Recommended next steps" in out


class TestInteractive:
    def _run(self, commands, tmp_path):
        args = build_parser().parse_args(
            [
                "interactive",
                "--dataset",
                "yelp",
                "--scale",
                "0.01",
                "--log",
                str(tmp_path / "log.json"),
            ]
        )
        feed = iter(commands)
        out = io.StringIO()
        code = cmd_interactive(
            args, out=out, input_fn=lambda prompt: next(feed)
        )
        return code, out.getvalue()

    def test_apply_recommendation_and_quit(self, tmp_path):
        code, out = self._run(["1", "quit"], tmp_path)
        assert code == 0
        assert "Step 2" in out

    def test_add_and_drop(self, tmp_path):
        code, out = self._run(
            ["add reviewer.gender=F", "drop reviewer.gender", "q"], tmp_path
        )
        assert code == 0
        assert "gender=F" in out

    def test_sql_command(self, tmp_path):
        code, out = self._run(["sql reviewer gender = 'M'", "quit"], tmp_path)
        assert code == 0
        assert "gender=M" in out

    def test_bad_command_reports_error(self, tmp_path):
        code, out = self._run(["frobnicate", "quit"], tmp_path)
        assert code == 0
        assert "error:" in out

    def test_out_of_range_recommendation(self, tmp_path):
        code, out = self._run(["99", "quit"], tmp_path)
        assert code == 0
        assert "no recommendation" in out

    def test_eof_terminates(self, tmp_path):
        args = build_parser().parse_args(
            ["interactive", "--dataset", "yelp", "--scale", "0.01"]
        )

        def raise_eof(prompt):
            raise EOFError

        assert cmd_interactive(args, out=io.StringIO(), input_fn=raise_eof) == 0


class TestParseEdit:
    def test_add(self, tiny_engine):
        session = tiny_engine.session()
        criteria = _parse_edit("add reviewer.gender=F", session)
        assert AVPair(Side.REVIEWER, "gender", "F") in criteria

    def test_drop_missing_raises(self, tiny_engine):
        session = tiny_engine.session()
        with pytest.raises(Exception):
            _parse_edit("drop item.city", session)

    def test_sql_rejects_disjunction(self, tiny_engine):
        session = tiny_engine.session()
        with pytest.raises(Exception):
            _parse_edit("sql reviewer gender = 'F' OR gender = 'M'", session)


class TestProfileCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["profile", "--", "summary", "--scale", "0.02"]
        )
        assert args.interval_ms == 5.0
        assert args.format == "collapsed"
        assert args.output is None
        assert args.inner == ["--", "summary", "--scale", "0.02"]

    def test_profiles_inner_command(self, capsys):
        code = main(
            ["profile", "--interval-ms", "1", "--", "summary",
             "--dataset", "yelp", "--scale", "0.02"]
        )
        captured = capsys.readouterr()
        assert code == 0
        # the inner command's own output still prints
        assert "yelp" in captured.out
        assert "profile:" in captured.out and "samples" in captured.out

    def test_output_file_is_pure_collapsed(self, tmp_path, capsys):
        target = tmp_path / "profile.txt"
        code = main(
            ["profile", "--interval-ms", "1", "--output", str(target),
             "--", "summary", "--dataset", "yelp", "--scale", "0.02"]
        )
        assert code == 0
        content = target.read_text()
        # pure collapsed-stack lines: "frame;frame count"
        for line in content.splitlines():
            frames, count = line.rsplit(" ", 1)
            assert int(count) >= 1
        assert f"profile written to {target}" in capsys.readouterr().out

    def test_json_format(self, tmp_path):
        target = tmp_path / "profile.json"
        code = main(
            ["profile", "--interval-ms", "1", "--format", "json",
             "--output", str(target),
             "--", "summary", "--dataset", "yelp", "--scale", "0.02"]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["n_samples"] >= 0
        assert "stacks" in payload

    def test_missing_inner_command_exits_2(self, capsys):
        assert main(["profile", "--"]) == 2
        assert "needs a command" in capsys.readouterr().err

    def test_nested_profile_rejected(self, capsys):
        assert main(["profile", "--", "profile", "--", "summary"]) == 2
        assert "nest" in capsys.readouterr().err
