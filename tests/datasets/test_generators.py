"""Tests for the dataset generators (Table 2 shapes, effects, enrichment)."""

import numpy as np
import pytest

from repro.datasets import (
    CategoricalAttribute,
    GroupEffect,
    MultiValuedAttribute,
    NumericAttribute,
    age_group_of,
    generate_entities,
    generate_ratings,
    ground_truth_insights,
    hotels,
    location_of,
    movielens,
    verify_insight,
    yelp,
)
from repro.model import Side


@pytest.fixture(scope="module")
def small_yelp():
    return yelp(seed=1, scale_factor=0.02)


@pytest.fixture(scope="module")
def small_movielens():
    return movielens(seed=1, scale_factor=0.1)


class TestTable2Shapes:
    def test_movielens_full_scale_statistics(self):
        # construct at full scale to check Table 2 numbers (fast enough)
        db = movielens(seed=0, scale_factor=1.0)
        s = db.summary()
        assert s["n_reviewers"] == 943
        assert s["n_items"] == 1682
        assert s["n_ratings"] == 100_000
        assert s["n_dimensions"] == 1

    def test_yelp_attribute_counts(self, small_yelp):
        s = small_yelp.summary()
        assert s["n_attributes"] == 24
        assert s["max_values"] == 13
        assert s["n_dimensions"] == 4
        assert s["n_items"] == 93

    def test_hotels_attribute_counts(self):
        db = hotels(seed=0, scale_factor=0.05)
        s = db.summary()
        assert s["n_attributes"] == 8
        assert s["max_values"] <= 62
        assert s["n_dimensions"] == 4

    def test_scale_factor_scales(self):
        small = movielens(seed=0, scale_factor=0.05)
        assert small.n_ratings == 5000

    def test_invalid_scale(self):
        for factory in (movielens, yelp, hotels):
            with pytest.raises(ValueError):
                factory(scale_factor=0)

    def test_deterministic_given_seed(self):
        a = yelp(seed=3, scale_factor=0.01)
        b = yelp(seed=3, scale_factor=0.01)
        assert (
            a.dimension_scores("overall") == b.dimension_scores("overall")
        ).all()

    def test_scores_on_scale(self, small_yelp):
        for dim in small_yelp.dimensions:
            scores = small_yelp.dimension_scores(dim)
            finite = scores[np.isfinite(scores)]
            assert finite.min() >= 1 and finite.max() <= 5


class TestEffects:
    def test_movielens_insights_hold(self, small_movielens):
        held = 0
        for insight in ground_truth_insights("movielens"):
            inside, outside = verify_insight(small_movielens, insight)
            if np.isnan(inside) or np.isnan(outside):
                continue
            held += (inside < outside) == (insight.direction == "low")
        assert held >= 4

    def test_yelp_insights_hold(self):
        db = yelp(seed=1, scale_factor=0.1)
        held = 0
        for insight in ground_truth_insights("yelp"):
            inside, outside = verify_insight(db, insight)
            held += (inside < outside) == (insight.direction == "low")
        assert held >= 4

    def test_ground_truth_lookup_strips_suffixes(self):
        assert ground_truth_insights("yelp+irregular") == ground_truth_insights(
            "yelp"
        )
        assert ground_truth_insights("movielens[20% reviewers]")

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            ground_truth_insights("nope")

    def test_effect_describe(self):
        effect = GroupEffect(Side.ITEM, "genre", "Horror", "rating", -0.5)
        assert "lower" in effect.describe()


class TestSyntheticPrimitives:
    def test_categorical_sampling_skewed(self):
        attr = CategoricalAttribute("x", tuple("abcdef"), zipf_s=1.5)
        rng = np.random.default_rng(0)
        values = attr.sample(2000, rng)
        assert values.count("a") > values.count("f")

    def test_multivalued_sampling(self):
        attr = MultiValuedAttribute("x", ("p", "q", "r"), max_members=2)
        rng = np.random.default_rng(0)
        rows = attr.sample(100, rng)
        assert all(1 <= len(r) <= 2 for r in rows)

    def test_numeric_sampling_range(self):
        attr = NumericAttribute("year", 1990, 1999)
        rng = np.random.default_rng(0)
        values = attr.sample(200, rng)
        assert min(values) >= 1990 and max(values) <= 1999

    def test_generate_entities_schema(self):
        rng = np.random.default_rng(0)
        table = generate_entities(
            10, "user_id", [CategoricalAttribute("g", ("a", "b"))], rng
        )
        assert table.attribute_names == ("user_id", "g")
        assert "user_id" not in table.explorable_attributes

    def test_generate_ratings_applies_effect(self):
        rng = np.random.default_rng(0)
        users = generate_entities(
            200, "user_id", [CategoricalAttribute("g", ("a", "b"), zipf_s=0.1)], rng
        )
        items = generate_entities(20, "item_id", [], rng)
        effect = GroupEffect(Side.REVIEWER, "g", "a", "score", -1.5)
        ratings = generate_ratings(
            users, items, 8000, ("score",), rng, effects=[effect], noise_sd=0.3
        )
        mask_a = users.column("g").equals_mask("a")
        user_rows = {int(u): i for i, u in enumerate(users.numeric("user_id"))}
        scores = ratings.numeric("score")
        rated_by_a = np.array(
            [mask_a[user_rows[int(u)]] for u in ratings.numeric("user_id")]
        )
        assert scores[rated_by_a].mean() < scores[~rated_by_a].mean() - 0.5


class TestEnrichment:
    def test_location_known_prefix(self):
        assert location_of("10001") == ("New York", "NY")

    def test_location_unknown_prefix_total(self):
        city, state = location_of("99999")
        assert city and state

    def test_location_deterministic(self):
        assert location_of("55555") == location_of("55555")

    @pytest.mark.parametrize(
        "age,expected",
        [(13, "teen"), (18, "young"), (29, "young"), (30, "adult"), (55, "senior")],
    )
    def test_age_group(self, age, expected):
        assert age_group_of(age) == expected

    def test_age_group_invalid(self):
        with pytest.raises(ValueError):
            age_group_of(-1)

    def test_movielens_city_state_consistent(self, small_movielens):
        table = small_movielens.reviewers
        for i in range(min(50, len(table))):
            row = table.row(i)
            assert (row["city"], row["state"]) == location_of(row["zip_code"])

    def test_movielens_age_group_consistent(self, small_movielens):
        table = small_movielens.reviewers
        for i in range(min(50, len(table))):
            row = table.row(i)
            assert row["age_group"] == age_group_of(int(row["age"]))

    def test_movielens_decade_consistent(self, small_movielens):
        table = small_movielens.items
        for i in range(min(50, len(table))):
            row = table.row(i)
            assert row["release_decade"] == f"{(int(row['release_year']) // 10) * 10}s"


class TestViaText:
    def test_yelp_via_text_builds(self):
        db = yelp(seed=5, scale_factor=0.002, via_text=True)
        assert db.n_ratings >= 500
        # mined dimensions still on scale, with possible missing values
        food = db.dimension_scores("food")
        finite = food[np.isfinite(food)]
        assert finite.size > 0
        assert finite.min() >= 1 and finite.max() <= 5

    def test_via_text_correlates_with_latent(self):
        plain = yelp(seed=5, scale_factor=0.002, via_text=False)
        mined = yelp(seed=5, scale_factor=0.002, via_text=True)
        a = plain.dimension_scores("food")
        b = mined.dimension_scores("food")
        mask = np.isfinite(a) & np.isfinite(b)
        corr = np.corrcoef(a[mask], b[mask])[0, 1]
        assert corr > 0.5
