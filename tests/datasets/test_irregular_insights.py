"""Tests for irregular-group injection and insight machinery."""

import numpy as np
import pytest

from repro.datasets import inject_irregular_groups, yelp
from repro.datasets.insights import Insight
from repro.model import RatingGroup, SelectionCriteria, Side


@pytest.fixture(scope="module")
def base():
    return yelp(seed=4, scale_factor=0.02)


@pytest.fixture(scope="module")
def injected(base):
    return inject_irregular_groups(base, seed=7)


class TestInjection:
    def test_returns_both_sides(self, injected):
        __, groups = injected
        assert {g.side for g in groups} == {Side.REVIEWER, Side.ITEM}

    def test_original_database_untouched(self, base, injected):
        modified, groups = injected
        for group in groups:
            original = base.dimension_scores(group.dimension)
            rows = sorted(group.record_rows)
            assert not (original[rows] == 1).all() or len(rows) == 0

    def test_forced_records_are_one(self, injected):
        modified, groups = injected
        for group in groups:
            scores = modified.dimension_scores(group.dimension)
            rows = sorted(group.record_rows)
            assert rows, "group must cover records"
            assert (scores[rows] == 1).all()

    def test_group_size_at_least_five(self, injected):
        __, groups = injected
        assert all(len(g.entity_ids) >= 5 for g in groups)

    def test_description_matches_entities(self, injected):
        modified, groups = injected
        for group in groups:
            criteria = SelectionCriteria(group.pairs)
            table = modified.entity_table(group.side)
            mask = table.mask(criteria.predicate(group.side))
            key = modified.key(group.side)
            ids = set(int(i) for i in table.numeric(key)[mask])
            assert ids == set(group.entity_ids)

    def test_record_rows_match_entities(self, injected):
        modified, groups = injected
        for group in groups:
            criteria = SelectionCriteria(group.pairs)
            rg = RatingGroup(modified, criteria)
            assert set(int(r) for r in rg.rows) == set(group.record_rows)

    def test_record_fraction_capped(self, base, injected):
        __, groups = injected
        for group in groups:
            assert group.n_records <= 0.08 * base.n_ratings + 1

    def test_pair_count_choices(self, base):
        __, groups = inject_irregular_groups(
            base, seed=3, n_pairs_choices=(2,)
        )
        assert all(len(g.pairs) == 2 for g in groups)

    def test_describe(self, injected):
        __, groups = injected
        assert "forced to 1" in groups[0].describe()

    def test_deterministic(self, base):
        __, g1 = inject_irregular_groups(base, seed=11)
        __, g2 = inject_irregular_groups(base, seed=11)
        assert [g.pairs for g in g1] == [g.pairs for g in g2]


class TestInsightObject:
    def test_direction_validation(self):
        with pytest.raises(ValueError):
            Insight(Side.ITEM, "a", "b", "d", "sideways")

    def test_describe(self):
        insight = Insight(Side.ITEM, "genre", "Horror", "rating", "low")
        assert "lowest" in insight.describe()
