"""Tests for repro.db.table."""

import numpy as np
import pytest

from repro.db import ColumnType, Table
from repro.db.column import NumericColumn
from repro.db.predicates import Cmp, Eq, TruePredicate
from repro.db.schema import AttributeSpec, TableSchema
from repro.exceptions import SchemaError, UnknownAttributeError


@pytest.fixture()
def table() -> Table:
    return Table.from_columns(
        {
            "id": [1, 2, 3, 4],
            "color": ["red", "blue", "red", None],
            "tags": [{"a"}, {"b"}, {"a", "b"}, set()],
        },
        explorable={"id": False},
    )


class TestConstruction:
    def test_from_columns_infers_schema(self, table):
        assert table.schema.ctype("id") is ColumnType.NUMERIC
        assert table.schema.ctype("color") is ColumnType.CATEGORICAL
        assert table.schema.ctype("tags") is ColumnType.MULTI_VALUED

    def test_explorable_flag_respected(self, table):
        assert "id" not in table.explorable_attributes
        assert "color" in table.explorable_attributes

    def test_from_rows(self):
        t = Table.from_rows([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert len(t) == 2
        assert t.row(1) == {"a": 2, "b": "y"}

    def test_from_rows_missing_key_becomes_none(self):
        t = Table.from_rows([{"a": 1, "b": "x"}, {"a": 2}])
        assert t.row(1)["b"] is None

    def test_empty(self):
        schema = TableSchema.of(AttributeSpec("x", ColumnType.NUMERIC))
        assert len(Table.empty(schema)) == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_columns({"a": [1, 2], "b": [1]})

    def test_schema_column_mismatch_rejected(self):
        schema = TableSchema.of(AttributeSpec("x", ColumnType.NUMERIC))
        with pytest.raises(SchemaError):
            Table(schema, {})


class TestAccess:
    def test_unknown_column_raises(self, table):
        with pytest.raises(UnknownAttributeError):
            table.column("nope")

    def test_row_materialisation(self, table):
        assert table.row(0) == {"id": 1, "color": "red", "tags": frozenset({"a"})}

    def test_rows_iterates_all(self, table):
        assert len(list(table.rows())) == 4

    def test_numeric_accessor(self, table):
        assert table.numeric("id").tolist() == [1, 2, 3, 4]

    def test_numeric_on_categorical_raises(self, table):
        with pytest.raises(SchemaError):
            table.numeric("color")

    def test_distinct(self, table):
        assert table.distinct("color") == ["blue", "red"]


class TestRelationalOps:
    def test_filter(self, table):
        filtered = table.filter(Eq("color", "red"))
        assert len(filtered) == 2
        assert filtered.numeric("id").tolist() == [1, 3]

    def test_filter_true_keeps_all(self, table):
        assert len(table.filter(TruePredicate())) == 4

    def test_filter_cmp(self, table):
        assert len(table.filter(Cmp("id", ">", 2))) == 2

    def test_take_order(self, table):
        taken = table.take(np.array([3, 0]))
        assert taken.numeric("id").tolist() == [4, 1]

    def test_select_projection(self, table):
        projected = table.select(["color"])
        assert projected.attribute_names == ("color",)
        assert len(projected) == 4

    def test_drop(self, table):
        assert table.drop({"tags"}).attribute_names == ("id", "color")

    def test_replace_column(self, table):
        new = table.replace_column("id", NumericColumn.from_values([9, 8, 7, 6]))
        assert new.numeric("id").tolist() == [9, 8, 7, 6]
        assert table.numeric("id").tolist() == [1, 2, 3, 4]  # original intact

    def test_replace_column_wrong_length(self, table):
        with pytest.raises(SchemaError):
            table.replace_column("id", NumericColumn.from_values([1]))

    def test_replace_column_wrong_type(self, table):
        with pytest.raises(SchemaError):
            table.replace_column("color", NumericColumn.from_values([1, 2, 3, 4]))

    def test_replace_unknown_column(self, table):
        with pytest.raises(UnknownAttributeError):
            table.replace_column("nope", NumericColumn.from_values([1, 2, 3, 4]))


class TestDisplay:
    def test_repr_mentions_shape(self, table):
        assert "4 rows" in repr(table)

    def test_head_str_truncates(self, table):
        preview = table.head_str(2)
        assert "more rows" in preview
        assert "color" in preview
