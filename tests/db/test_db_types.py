"""Tests for repro.db.types (column-type inference)."""

from repro.db.types import ColumnType, infer_column_type


class TestInferColumnType:
    def test_numeric_ints(self):
        assert infer_column_type([1, 2, 3]) is ColumnType.NUMERIC

    def test_numeric_floats(self):
        assert infer_column_type([1.5, 2.0]) is ColumnType.NUMERIC

    def test_numeric_with_none(self):
        assert infer_column_type([1, None, 3]) is ColumnType.NUMERIC

    def test_strings_are_categorical(self):
        assert infer_column_type(["a", "b"]) is ColumnType.CATEGORICAL

    def test_mixed_numeric_string_is_categorical(self):
        assert infer_column_type([1, "a"]) is ColumnType.CATEGORICAL

    def test_bools_are_categorical(self):
        assert infer_column_type([True, False]) is ColumnType.CATEGORICAL

    def test_sets_are_multivalued(self):
        assert infer_column_type([{"a"}, {"b"}]) is ColumnType.MULTI_VALUED

    def test_frozensets_are_multivalued(self):
        assert (
            infer_column_type([frozenset({"a", "b"})]) is ColumnType.MULTI_VALUED
        )

    def test_lists_are_multivalued(self):
        assert infer_column_type([["a", "b"]]) is ColumnType.MULTI_VALUED

    def test_one_set_forces_multivalued(self):
        assert infer_column_type([1, 2, {"a"}]) is ColumnType.MULTI_VALUED

    def test_empty_defaults_categorical(self):
        assert infer_column_type([]) is ColumnType.CATEGORICAL

    def test_all_none_defaults_categorical(self):
        assert infer_column_type([None, None]) is ColumnType.CATEGORICAL
