"""Tests for repro.db.catalog, csvio and schema."""

import pytest

from repro.db import (
    AttributeSpec,
    Catalog,
    ColumnType,
    Table,
    TableSchema,
    load_table,
    save_table,
)
from repro.exceptions import SchemaError, UnknownAttributeError


@pytest.fixture()
def table() -> Table:
    return Table.from_columns(
        {
            "id": [1, 2, 3],
            "color": ["red", "red", "blue"],
            "tags": [{"a", "b"}, {"a"}, set()],
        },
        explorable={"id": False},
    )


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema.of(AttributeSpec("x"), AttributeSpec("x"))

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            AttributeSpec("")

    def test_lookup(self):
        schema = TableSchema.of(AttributeSpec("x", ColumnType.NUMERIC))
        assert schema["x"].ctype is ColumnType.NUMERIC
        assert "x" in schema and "y" not in schema

    def test_unknown_lookup_raises(self):
        schema = TableSchema.of(AttributeSpec("x"))
        with pytest.raises(UnknownAttributeError):
            schema["zzz"]

    def test_with_and_without(self):
        schema = TableSchema.of(AttributeSpec("a"), AttributeSpec("b"))
        grown = schema.with_attribute(AttributeSpec("c"))
        assert grown.names == ("a", "b", "c")
        shrunk = grown.without_attributes({"a", "c"})
        assert shrunk.names == ("b",)

    def test_explorable_names(self):
        schema = TableSchema.of(
            AttributeSpec("a"), AttributeSpec("b", explorable=False)
        )
        assert schema.explorable_names == ("a",)


class TestCatalog:
    def test_categorical_domain(self, table):
        domain = Catalog(table).domain("color")
        assert domain.values == ("blue", "red")
        assert dict(zip(domain.values, domain.counts)) == {"red": 2, "blue": 1}

    def test_numeric_domain(self, table):
        domain = Catalog(table).domain("id")
        assert domain.values == (1, 2, 3)

    def test_multivalued_domain_counts_members(self, table):
        domain = Catalog(table).domain("tags")
        assert dict(zip(domain.values, domain.counts)) == {"a": 2, "b": 1}

    def test_frequent_values_order(self, table):
        domain = Catalog(table).domain("color")
        assert domain.frequent_values() == ("red", "blue")
        assert domain.frequent_values(min_count=2) == ("red",)

    def test_explorable_domains_skips_keys(self, table):
        domains = Catalog(table).explorable_domains()
        assert set(domains) == {"color", "tags"}

    def test_total_values(self, table):
        assert Catalog(table).total_values() == 4  # red, blue + a, b

    def test_domain_cached(self, table):
        catalog = Catalog(table)
        assert catalog.domain("color") is catalog.domain("color")


class TestCsvIO:
    def test_roundtrip(self, table, tmp_path):
        path = tmp_path / "t.csv"
        save_table(table, path)
        loaded = load_table(path, schema=table.schema)
        assert len(loaded) == len(table)
        assert loaded.row(0) == table.row(0)
        assert loaded.row(2)["tags"] is None

    def test_roundtrip_without_schema_infers(self, table, tmp_path):
        path = tmp_path / "t.csv"
        save_table(table, path)
        loaded = load_table(path)
        assert loaded.column("id").type is ColumnType.NUMERIC
        assert loaded.row(0)["tags"] == frozenset({"a", "b"})

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert len(load_table(path)) == 0

    def test_leading_zero_preserved_as_text(self, tmp_path):
        path = tmp_path / "z.csv"
        path.write_text("zip\n02139\n10001\n")
        loaded = load_table(path)
        assert loaded.row(0)["zip"] == "02139"
