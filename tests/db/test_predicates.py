"""Tests for repro.db.predicates, including algebra property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db import Table
from repro.db.predicates import (
    And,
    Cmp,
    Eq,
    In,
    Not,
    Or,
    TruePredicate,
    conjunction,
)
from repro.exceptions import PredicateError


@pytest.fixture(scope="module")
def table() -> Table:
    return Table.from_columns(
        {
            "color": ["red", "blue", "red", "green", None],
            "size": [1, 2, 3, 4, 5],
            "tags": [{"a"}, {"a", "b"}, {"b"}, set(), {"c"}],
        }
    )


class TestLeaves:
    def test_true_matches_all(self, table):
        assert TruePredicate().mask(table).all()

    def test_eq_categorical(self, table):
        assert Eq("color", "red").mask(table).tolist() == [
            True, False, True, False, False,
        ]

    def test_eq_multivalued_containment(self, table):
        assert Eq("tags", "a").mask(table).tolist() == [
            True, True, False, False, False,
        ]

    def test_in(self, table):
        assert In("color", ("red", "green")).mask(table).sum() == 3

    def test_cmp(self, table):
        assert Cmp("size", ">=", 4).mask(table).tolist() == [
            False, False, False, True, True,
        ]

    def test_cmp_on_categorical_raises(self, table):
        with pytest.raises(PredicateError):
            Cmp("color", ">", 1).mask(table)

    def test_cmp_invalid_op_rejected_at_construction(self):
        with pytest.raises(PredicateError):
            Cmp("size", "=", 1)


class TestCombinators:
    def test_and(self, table):
        mask = (Eq("color", "red") & Cmp("size", ">", 1)).mask(table)
        assert mask.tolist() == [False, False, True, False, False]

    def test_or(self, table):
        mask = (Eq("color", "blue") | Eq("color", "green")).mask(table)
        assert mask.sum() == 2

    def test_not(self, table):
        mask = (~Eq("color", "red")).mask(table)
        assert mask.tolist() == [False, True, False, True, True]

    def test_and_flattens(self):
        pred = Eq("a", 1) & (Eq("b", 2) & Eq("c", 3))
        assert isinstance(pred, And)
        assert len(pred.operands) == 3

    def test_and_drops_true(self):
        pred = Eq("a", 1) & TruePredicate()
        assert pred == Eq("a", 1)

    def test_or_flattens(self):
        pred = Eq("a", 1) | (Eq("b", 2) | Eq("c", 3))
        assert isinstance(pred, Or)
        assert len(pred.operands) == 3

    def test_attributes_collected(self):
        pred = (Eq("a", 1) & Eq("b", 2)) | Not(Eq("c", 3))
        assert pred.attributes() == frozenset({"a", "b", "c"})

    def test_value_equality_and_hash(self):
        assert Eq("a", 1) == Eq("a", 1)
        assert hash(Eq("a", 1)) == hash(Eq("a", 1))
        assert Eq("a", 1) != Eq("a", 2)


class TestConjunction:
    def test_empty_is_true(self, table):
        assert conjunction({}).mask(table).all()

    def test_single_pair(self):
        assert conjunction({"a": 1}) == Eq("a", 1)

    def test_multiple_pairs(self, table):
        pred = conjunction({"color": "red", "size": 3})
        assert pred.mask(table).tolist() == [False, False, True, False, False]


# -- property-based: boolean algebra laws over random predicates ------------

_colors = st.sampled_from(["red", "blue", "green", "purple"])
_sizes = st.integers(min_value=0, max_value=6)


def _leaf(draw_color, draw_size):
    return st.one_of(
        st.builds(Eq, st.just("color"), draw_color),
        st.builds(lambda v: Cmp("size", ">=", float(v)), draw_size),
    )


_predicates = st.recursive(
    _leaf(_colors, _sizes),
    lambda children: st.one_of(
        st.builds(lambda a, b: And((a, b)), children, children),
        st.builds(lambda a, b: Or((a, b)), children, children),
        st.builds(Not, children),
    ),
    max_leaves=6,
)


@pytest.fixture(scope="module")
def algebra_table() -> Table:
    return Table.from_columns(
        {
            "color": ["red", "blue", "green", "purple", "red", "blue"],
            "size": [0, 1, 2, 3, 4, 5],
        }
    )


class TestAlgebraProperties:
    @given(p=_predicates)
    def test_double_negation(self, p):
        table = Table.from_columns(
            {"color": ["red", "blue", "green"], "size": [1, 3, 5]}
        )
        assert (Not(Not(p)).mask(table) == p.mask(table)).all()

    @given(p=_predicates, q=_predicates)
    def test_de_morgan(self, p, q):
        table = Table.from_columns(
            {"color": ["red", "blue", "green", "purple"], "size": [0, 2, 4, 6]}
        )
        left = Not(And((p, q))).mask(table)
        right = Or((Not(p), Not(q))).mask(table)
        assert (left == right).all()

    @given(p=_predicates)
    def test_excluded_middle(self, p):
        table = Table.from_columns(
            {"color": ["red", "purple"], "size": [2, 5]}
        )
        assert Or((p, Not(p))).mask(table).all()
