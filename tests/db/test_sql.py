"""Tests for the tiny SQL WHERE dialect."""

import pytest

from repro.db import Table, parse_select, parse_where
from repro.db.predicates import And, Cmp, Eq, In, Not, Or, TruePredicate
from repro.exceptions import SQLParseError


@pytest.fixture(scope="module")
def table() -> Table:
    return Table.from_columns(
        {
            "city": ["NYC", "Austin", "NYC", "Detroit"],
            "year": [1990, 1995, 2000, 2005],
        }
    )


class TestParseWhere:
    def test_simple_equality(self):
        assert parse_where("city = 'NYC'") == Eq("city", "NYC")

    def test_numeric_equality(self):
        assert parse_where("year = 1995") == Eq("year", 1995)

    def test_comparison(self):
        assert parse_where("year >= 2000") == Cmp("year", ">=", 2000.0)

    def test_not_equal_both_spellings(self):
        assert parse_where("year != 3") == parse_where("year <> 3")

    def test_in_list(self):
        pred = parse_where("city IN ('NYC', 'Austin')")
        assert pred == In("city", ("NYC", "Austin"))

    def test_and_or_precedence(self):
        pred = parse_where("city = 'NYC' OR city = 'Austin' AND year > 1993")
        # AND binds tighter than OR
        assert isinstance(pred, Or)

    def test_parentheses(self):
        pred = parse_where("(city = 'NYC' OR city = 'Austin') AND year > 1993")
        assert isinstance(pred, And)

    def test_not(self):
        pred = parse_where("NOT city = 'NYC'")
        assert isinstance(pred, Not)

    def test_escaped_quote(self):
        assert parse_where("city = 'Joe''s'") == Eq("city", "Joe's")

    def test_bare_word_literal(self):
        assert parse_where("city = NYC") == Eq("city", "NYC")

    def test_empty_is_true(self):
        assert parse_where("") == TruePredicate()
        assert parse_where("   ") == TruePredicate()

    def test_case_insensitive_keywords(self):
        pred = parse_where("city = 'NYC' and year > 1990")
        assert isinstance(pred, And)

    def test_evaluates_against_table(self, table):
        pred = parse_where("city = 'NYC' AND year >= 2000")
        assert table.filter(pred).numeric("year").tolist() == [2000]

    @pytest.mark.parametrize(
        "bad",
        [
            "city =",
            "= 'NYC'",
            "city = 'NYC' AND",
            "city IN ('a'",
            "city ~ 3",
            "year > 'abc' zz",
            "city = 'NYC' trailing",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(SQLParseError):
            parse_where(bad)

    def test_comparison_needs_numeric_literal(self):
        with pytest.raises(SQLParseError):
            parse_where("year > abc")


class TestParseSelect:
    def test_full_select(self):
        name, pred = parse_select("SELECT * FROM reviewers WHERE gender = 'F'")
        assert name == "reviewers"
        assert pred == Eq("gender", "F")

    def test_select_without_where(self):
        name, pred = parse_select("SELECT * FROM items")
        assert name == "items"
        assert pred == TruePredicate()

    def test_bare_where_expression(self):
        name, pred = parse_select("gender = 'F'")
        assert name is None
        assert pred == Eq("gender", "F")

    def test_case_insensitive(self):
        name, __ = parse_select("select * from T where x = 1")
        assert name == "T"


# -- to_sql round-trip property tests ---------------------------------------

from hypothesis import given
from hypothesis import strategies as st

from repro.db.predicates import to_sql

_idents = st.sampled_from(["city", "year", "genre", "occupation"])
_strings = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=" '_-"),
    min_size=1,
    max_size=10,
)
_sql_leaves = st.one_of(
    st.builds(Eq, _idents, _strings),
    st.builds(Eq, _idents, st.integers(-100, 100)),
    st.builds(
        lambda op, v: Cmp("year", op, float(v)),  # the only numeric column
        st.sampled_from(["<", "<=", ">", ">=", "!="]),
        st.integers(-50, 50),
    ),
    st.builds(lambda a, vs: In(a, tuple(vs)), _idents, st.lists(_strings, min_size=1, max_size=3)),
    st.just(TruePredicate()),
)
_sql_predicates = st.recursive(
    _sql_leaves,
    lambda children: st.one_of(
        st.builds(lambda a, b: And((a, b)), children, children),
        st.builds(lambda a, b: Or((a, b)), children, children),
        st.builds(Not, children),
    ),
    max_leaves=5,
)


class TestToSqlRoundtrip:
    @given(p=_sql_predicates)
    def test_roundtrip_semantics(self, p):
        """Parsing to_sql(p) yields a predicate with identical semantics."""
        reparsed = parse_where(to_sql(p))
        table = Table.from_columns(
            {
                "city": ["NYC", "Austin", None, "NY C"],
                "year": [1990, 2000, 2010, None],
                "genre": ["a", "b", "c", "d"],
                "occupation": ["x", "y", "x", None],
            }
        )
        assert (p.mask(table) == reparsed.mask(table)).all()

    def test_numeric_eq_roundtrip(self):
        p = Eq("year", 1995)
        assert parse_where(to_sql(p)) == p

    def test_string_with_quote(self):
        p = Eq("city", "Joe's")
        assert parse_where(to_sql(p)) == p
