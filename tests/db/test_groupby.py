"""Tests for repro.db.groupby (shared scans, accumulators, phase slices)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db import Table
from repro.db.groupby import (
    Grouping,
    HistogramAccumulator,
    SharedGroupByScan,
    build_grouping,
    group_histograms,
    phase_slices,
)
from repro.exceptions import SchemaError


@pytest.fixture()
def table() -> Table:
    return Table.from_columns(
        {"g": ["a", "b", "a", "c", None, "b"], "x": [1, 2, 3, 4, 5, None]}
    )


class TestBuildGrouping:
    def test_labels_and_codes(self, table):
        grouping = build_grouping(table, "g")
        assert set(grouping.labels) == {"a", "b", "c"}
        assert grouping.codes[4] == -1

    def test_group_sizes(self, table):
        grouping = build_grouping(table, "g")
        sizes = dict(zip(grouping.labels, grouping.group_sizes()))
        assert sizes == {"a": 2, "b": 2, "c": 1}


class TestGroupHistograms:
    def test_counts_match_naive(self):
        codes = np.array([0, 0, 1, 1, -1])
        scores = np.array([1.0, 5.0, 3.0, 3.0, 2.0])
        hist = group_histograms(codes, 2, scores, scale=5)
        assert hist[0].tolist() == [1, 0, 0, 0, 1]
        assert hist[1].tolist() == [0, 0, 2, 0, 0]

    def test_out_of_scale_ignored(self):
        codes = np.array([0, 0, 0])
        scores = np.array([0.0, 6.0, np.nan])
        hist = group_histograms(codes, 1, scores, scale=5)
        assert hist.sum() == 0

    def test_row_subset(self):
        codes = np.array([0, 0, 0])
        scores = np.array([1.0, 2.0, 3.0])
        hist = group_histograms(codes, 1, scores, scale=5, rows=np.array([1]))
        assert hist[0].tolist() == [0, 1, 0, 0, 0]


class TestHistogramAccumulator:
    def _make(self):
        grouping = Grouping("g", np.array([0, 1, 0, 1]), ("a", "b"))
        scores = np.array([1.0, 2.0, 3.0, 4.0])
        return HistogramAccumulator(grouping, scores, scale=5)

    def test_incremental_equals_full(self):
        acc1, acc2 = self._make(), self._make()
        acc1.update_all()
        acc2.update(np.array([0, 1]))
        acc2.update(np.array([2, 3]))
        assert (acc1.counts == acc2.counts).all()
        assert acc2.rows_seen == 4

    def test_scale_too_small_rejected(self):
        grouping = Grouping("g", np.array([0]), ("a",))
        with pytest.raises(SchemaError):
            HistogramAccumulator(grouping, np.array([1.0]), scale=1)


class TestSharedScan:
    def test_shares_grouping_across_dimensions(self, table):
        grouping = build_grouping(table, "g")
        scores = {"d1": table.numeric("x"), "d2": table.numeric("x")}
        scan = SharedGroupByScan(grouping, scores, scale=5)
        scan.update(np.arange(len(table)))
        assert (
            scan.accumulator("d1").counts == scan.accumulator("d2").counts
        ).all()

    def test_drop_dimension(self, table):
        grouping = build_grouping(table, "g")
        scan = SharedGroupByScan(grouping, {"d1": table.numeric("x")}, scale=5)
        scan.drop_dimension("d1")
        assert scan.dimensions == ()
        scan.update(np.arange(len(table)))  # no-op, no error


class TestPhaseSlices:
    def test_cover_exactly_once(self):
        blocks = phase_slices(17, 5)
        joined = np.concatenate(blocks)
        assert sorted(joined.tolist()) == list(range(17))

    def test_near_equal_sizes(self):
        sizes = [len(b) for b in phase_slices(100, 10)]
        assert max(sizes) - min(sizes) <= 1

    def test_fewer_rows_than_phases(self):
        blocks = phase_slices(3, 10)
        assert sum(len(b) for b in blocks) == 3

    def test_empty(self):
        blocks = phase_slices(0, 10)
        assert len(blocks) == 1 and len(blocks[0]) == 0

    @given(n=st.integers(0, 500), k=st.integers(1, 20))
    def test_property_partition(self, n, k):
        blocks = phase_slices(n, k)
        joined = np.concatenate(blocks) if blocks else np.array([])
        assert sorted(joined.tolist()) == list(range(n))
