"""Tests for repro.db.column (all three column implementations)."""

import numpy as np
import pytest

from repro.db.column import (
    CategoricalColumn,
    MultiValuedColumn,
    NumericColumn,
    column_from_values,
)
from repro.db.types import ColumnType
from repro.exceptions import ColumnTypeError


class TestCategoricalColumn:
    def test_roundtrip_values(self):
        col = CategoricalColumn.from_values(["a", "b", "a", None])
        assert col.to_list() == ["a", "b", "a", None]

    def test_length(self):
        assert len(CategoricalColumn.from_values(["x"] * 7)) == 7

    def test_equals_mask(self):
        col = CategoricalColumn.from_values(["a", "b", "a"])
        assert col.equals_mask("a").tolist() == [True, False, True]

    def test_equals_mask_unknown_value(self):
        col = CategoricalColumn.from_values(["a", "b"])
        assert not col.equals_mask("zzz").any()

    def test_missing_never_matches(self):
        col = CategoricalColumn.from_values([None, "a"])
        assert col.equals_mask("a").tolist() == [False, True]

    def test_isin_mask(self):
        col = CategoricalColumn.from_values(["a", "b", "c"])
        assert col.isin_mask(["a", "c"]).tolist() == [True, False, True]

    def test_isin_mask_empty_and_unknown_values(self):
        col = CategoricalColumn.from_values(["a", None, "b"])
        assert not col.isin_mask([]).any()
        assert not col.isin_mask(["zzz"]).any()
        assert col.isin_mask(["b", "zzz"]).tolist() == [False, False, True]

    def test_isin_mask_matches_equals_mask_union(self):
        """Regression for the vectorised (np.isin over codes) rewrite: the
        single-pass mask must equal the OR of per-value equals_mask."""
        rng = np.random.default_rng(5)
        values = [
            None if v == "none" else v
            for v in rng.choice(
                ["a", "b", "c", "d", "e", "none"], size=500
            ).tolist()
        ]
        col = CategoricalColumn.from_values(values)
        wanted = ["b", "d", "zzz"]
        expected = np.zeros(len(col), dtype=bool)
        for value in wanted:
            expected |= col.equals_mask(value)
        np.testing.assert_array_equal(col.isin_mask(wanted), expected)
        assert not col.isin_mask(wanted)[np.array(values) == None].any()  # noqa: E711

    def test_take_preserves_categories(self):
        col = CategoricalColumn.from_values(["a", "b", "c"])
        taken = col.take(np.array([2, 0]))
        assert taken.to_list() == ["c", "a"]

    def test_distinct_values_sorted(self):
        col = CategoricalColumn.from_values(["b", "a", "b", None])
        assert col.distinct_values() == ["a", "b"]

    def test_group_codes_disjoint_and_labelled(self):
        col = CategoricalColumn.from_values(["b", "a", "b"])
        codes, labels = col.group_codes()
        assert len(labels) == 2
        assert labels[codes[0]] == "b"
        assert labels[codes[1]] == "a"

    def test_group_codes_missing_is_minus_one(self):
        col = CategoricalColumn.from_values([None, "a"])
        codes, labels = col.group_codes()
        assert codes[0] == -1
        assert labels == ["a"]

    def test_code_out_of_range_rejected(self):
        with pytest.raises(ColumnTypeError):
            CategoricalColumn(np.array([5], dtype=np.int32), ["only"])

    def test_non_string_values_coerced(self):
        col = CategoricalColumn.from_values([1, 2, 1])
        assert col.to_list() == ["1", "2", "1"]


class TestNumericColumn:
    def test_roundtrip_with_missing(self):
        col = NumericColumn.from_values([1, None, 2.5])
        assert col.to_list() == [1, None, 2.5]

    def test_integers_come_back_as_int(self):
        col = NumericColumn.from_values([3.0])
        assert col.value_at(0) == 3
        assert isinstance(col.value_at(0), int)

    def test_equals_mask(self):
        col = NumericColumn.from_values([1, 2, 1])
        assert col.equals_mask(1).tolist() == [True, False, True]

    def test_equals_mask_non_numeric_value(self):
        col = NumericColumn.from_values([1, 2])
        assert not col.equals_mask("abc").any()

    @pytest.mark.parametrize(
        "op,expected",
        [
            ("<", [True, False, False]),
            ("<=", [True, True, False]),
            (">", [False, False, True]),
            (">=", [False, True, True]),
            ("!=", [True, False, True]),
        ],
    )
    def test_compare_mask(self, op, expected):
        col = NumericColumn.from_values([1, 2, 3])
        assert col.compare_mask(op, 2).tolist() == expected

    def test_compare_mask_nan_never_matches(self):
        col = NumericColumn.from_values([None, 1])
        assert col.compare_mask("!=", 5).tolist() == [False, True]

    def test_compare_mask_bad_op(self):
        with pytest.raises(ColumnTypeError):
            NumericColumn.from_values([1]).compare_mask("~", 1)

    def test_distinct_values(self):
        col = NumericColumn.from_values([2, 1, 2, None])
        assert col.distinct_values() == [1, 2]

    def test_group_codes(self):
        col = NumericColumn.from_values([3, 1, 3, None])
        codes, labels = col.group_codes()
        assert labels == [1, 3]
        assert codes.tolist() == [1, 0, 1, -1]


class TestMultiValuedColumn:
    def test_roundtrip(self):
        rows = [frozenset({"a", "b"}), frozenset(), frozenset({"c"})]
        col = MultiValuedColumn(rows)
        assert col.to_list() == [frozenset({"a", "b"}), None, frozenset({"c"})]

    def test_equals_mask_is_containment(self):
        col = MultiValuedColumn(
            [frozenset({"a", "b"}), frozenset({"b"}), frozenset({"c"})]
        )
        assert col.equals_mask("b").tolist() == [True, True, False]

    def test_equals_mask_unknown_member(self):
        col = MultiValuedColumn([frozenset({"a"})])
        assert not col.equals_mask("zzz").any()

    def test_from_values_scalar_becomes_singleton(self):
        col = MultiValuedColumn.from_values(["solo"])
        assert col.value_at(0) == frozenset({"solo"})

    def test_distinct_values_are_members(self):
        col = MultiValuedColumn([frozenset({"b", "a"}), frozenset({"c"})])
        assert col.distinct_values() == ["a", "b", "c"]

    def test_group_codes_key_is_full_set(self):
        col = MultiValuedColumn(
            [frozenset({"a", "b"}), frozenset({"a"}), frozenset({"b", "a"})]
        )
        codes, labels = col.group_codes()
        assert codes[0] == codes[2] != codes[1]
        assert "a | b" in labels

    def test_group_codes_empty_set_missing(self):
        col = MultiValuedColumn([frozenset(), frozenset({"x"})])
        codes, __ = col.group_codes()
        assert codes[0] == -1

    def test_take(self):
        col = MultiValuedColumn([frozenset({"a"}), frozenset({"b"})])
        assert col.take(np.array([1])).to_list() == [frozenset({"b"})]


class TestColumnFromValues:
    def test_dispatch_categorical(self):
        assert column_from_values(["a"]).type is ColumnType.CATEGORICAL

    def test_dispatch_numeric(self):
        assert column_from_values([1.0]).type is ColumnType.NUMERIC

    def test_dispatch_multivalued(self):
        assert column_from_values([{"a"}]).type is ColumnType.MULTI_VALUED

    def test_forced_type(self):
        col = column_from_values([1, 2], ColumnType.CATEGORICAL)
        assert col.type is ColumnType.CATEGORICAL
        assert col.to_list() == ["1", "2"]
