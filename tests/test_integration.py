"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import (
    SelectionCriteria,
    SubDEx,
    SubDExConfig,
)
from repro.baselines import Qagview, SDDConfig, SmartDrillDown, all_variants
from repro.core.modes import ExplorationMode, run_fully_automated
from repro.core.recommend import RecommenderConfig
from repro.datasets import movielens, yelp
from repro.model import RatingGroup, Side
from repro.userstudy import (
    StudyConfig,
    make_scenario1_task,
    make_scenario2_task,
    run_guidance_study,
    run_recommendation_quality,
    sample_path,
)


@pytest.fixture(scope="module")
def small_yelp():
    return yelp(seed=7, scale_factor=0.015)


@pytest.fixture(scope="module")
def engine(small_yelp):
    return SubDEx(
        small_yelp,
        SubDExConfig(recommender=RecommenderConfig(max_values_per_attribute=3)),
    )


class TestEndToEndSessions:
    def test_three_step_manual_session(self, engine):
        """The paper's Figure 1 flow: examine, drill by age, drill by gender."""
        session = engine.session()
        first = session.step(with_recommendations=True)
        assert first.maps and first.recommendations
        second = session.apply_criteria(
            SelectionCriteria.of(reviewer={"age_group": "young"})
        )
        assert second.group_size <= first.group_size
        third = session.apply_criteria(
            SelectionCriteria.of(reviewer={"age_group": "young", "gender": "F"})
        )
        assert third.group_size <= second.group_size
        assert session.seen.total == 9

    def test_automated_path_respects_seen_state(self, engine):
        path = run_fully_automated(engine.session(), n_steps=3)
        dims_shown = set()
        for step in path.steps:
            dims_shown.update(step.result.selected_dimensions())
        # DW weights should rotate through multiple dimensions over 9 maps
        assert len(dims_shown) >= 2

    def test_every_variant_produces_a_session(self, small_yelp):
        for name, config in all_variants().items():
            from dataclasses import replace

            config = replace(
                config,
                recommender=replace(
                    config.recommender, max_values_per_attribute=2
                ),
            )
            variant_engine = SubDEx(small_yelp, config)
            record = variant_engine.session().step()
            assert record.maps, name

    def test_movielens_end_to_end(self):
        database = movielens(seed=5, scale_factor=0.05)
        ml_engine = SubDEx(
            database,
            SubDExConfig(
                recommender=RecommenderConfig(max_values_per_attribute=3)
            ),
        )
        path = run_fully_automated(ml_engine.session(), n_steps=2)
        assert len(path) == 2


class TestScenarioPipelines:
    def test_scenario1_pipeline(self, small_yelp):
        task = make_scenario1_task(small_yelp, seed=1)
        task_engine = SubDEx(
            task.database,
            SubDExConfig(
                recommender=RecommenderConfig(max_values_per_attribute=3)
            ),
        )
        path = sample_path(
            task_engine, task, ExplorationMode.FULLY_AUTOMATED, "high", 3, seed=0
        )
        exposed = task.exposed_in_path(path)
        assert exposed <= set(range(task.max_score))

    def test_scenario2_pipeline(self, small_yelp):
        task = make_scenario2_task(small_yelp)
        task_engine = SubDEx(
            small_yelp,
            SubDExConfig(
                recommender=RecommenderConfig(max_values_per_attribute=3)
            ),
        )
        path = sample_path(
            task_engine,
            task,
            ExplorationMode.RECOMMENDATION_POWERED,
            "high",
            3,
            seed=0,
        )
        assert task.exposed_in_path(path) <= set(range(5))

    def test_guidance_study_smoke(self, small_yelp):
        task = make_scenario1_task(small_yelp, seed=2)
        task_engine = SubDEx(
            task.database,
            SubDExConfig(
                recommender=RecommenderConfig(max_values_per_attribute=2)
            ),
        )
        result = run_guidance_study(
            [(task_engine, task)],
            "I",
            StudyConfig(n_subjects_per_cell=3, n_path_samples=1, n_steps=2),
        )
        assert all(0 <= s <= 2 for cell in result.scores.values() for s in cell)

    def test_recommendation_quality_smoke(self, small_yelp):
        task = make_scenario1_task(small_yelp, seed=3)
        task_engine = SubDEx(
            task.database,
            SubDExConfig(
                recommender=RecommenderConfig(max_values_per_attribute=2)
            ),
        )
        sdd = SmartDrillDown(SDDConfig(k=3, min_support=2))
        scores = run_recommendation_quality(
            task_engine,
            task,
            {"SubDEx": None, "SDD": sdd.recommend},
            n_steps=2,
            n_subjects=3,
        )
        assert set(scores) == {"SubDEx", "SDD"}

    def test_baselines_on_live_group(self, small_yelp):
        group = RatingGroup(small_yelp, SelectionCriteria.root())
        for ops in (
            SmartDrillDown(SDDConfig(min_support=2)).recommend(group),
            Qagview().recommend(group),
        ):
            for op in ops:
                target_group = RatingGroup(small_yelp, op.target)
                assert len(target_group) >= 0  # valid, evaluable operations


class TestCrossChecks:
    def test_rating_map_counts_consistent_with_db(self, engine, small_yelp):
        result = engine.rating_maps()
        for rm in result.selected:
            # covered records never exceed the group and match a recount
            group = RatingGroup(small_yelp, rm.criteria)
            assert rm.covered <= len(group)
            scores = group.scores(rm.dimension)
            n_valid = int(np.isfinite(scores).sum())
            assert rm.covered <= n_valid

    def test_dimension_weights_monotone_along_path(self, engine):
        session = engine.session()
        session.step()
        shown = session.seen.dimension_history()
        weights = {
            d: session.seen.weight(d) for d in engine.database.dimensions
        }
        for dim in engine.database.dimensions:
            if dim not in shown:
                assert weights[dim] == 1.0
