"""Tests for the simulated user study (subjects, tasks, runners)."""

import math

import pytest

from repro import SubDEx, SubDExConfig
from repro.core import RatingDistribution
from repro.core.modes import ExplorationMode, ExplorationPath
from repro.core.rating_maps import RatingMap, RatingMapSpec, Subgroup
from repro.core.recommend import RecommenderConfig
from repro.datasets import yelp
from repro.datasets.insights import Insight
from repro.model import AVPair, SelectionCriteria, Side
from repro.userstudy import (
    SimulatedSubject,
    SubjectProfile,
    StudyConfig,
    format_guidance_table,
    format_simple_table,
    insight_exposed,
    irregular_group_exposed,
    make_scenario1_task,
    make_scenario2_task,
    run_guidance_study,
    sample_path,
    simulate_subject_score,
    suspicious_subgroup,
)
from repro.datasets.irregular import IrregularGroup


def _map(side, attribute, dimension, subgroups) -> RatingMap:
    spec = RatingMapSpec(side, attribute, dimension)
    sgs = [Subgroup(label, RatingDistribution(c)) for label, c in subgroups]
    size = sum(sum(c) for __, c in subgroups)
    return RatingMap(spec, SelectionCriteria.root(), sgs, size)


class TestSubjectProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            SubjectProfile("medium", "high")

    def test_detection_depends_on_cs_only(self):
        high = SimulatedSubject(SubjectProfile("high", "low"))
        low = SimulatedSubject(SubjectProfile("low", "high"))
        assert high.detection_probability > low.detection_probability

    def test_domain_knowledge_has_no_behavioural_effect(self):
        a = SimulatedSubject(SubjectProfile("high", "high"))
        b = SimulatedSubject(SubjectProfile("high", "low"))
        assert a.detection_probability == b.detection_probability
        assert a.investigate_probability == b.investigate_probability


class TestDetection:
    def test_detect_probabilistic(self):
        subject = SimulatedSubject(SubjectProfile("high", "high"), seed=1)
        hits = sum(len(subject.detect([0])) for __ in range(400))
        assert 0.75 * 400 < hits < 0.95 * 400

    def test_damp_reduces_detection(self):
        subject = SimulatedSubject(SubjectProfile("high", "high"), seed=1)
        hits = sum(len(subject.detect([0], damp=0.1)) for __ in range(400))
        assert hits < 100


class TestSuspiciousSubgroup:
    def test_absolute_threshold(self):
        rm = _map(
            Side.ITEM, "city", "food",
            [("bad", [20, 0, 0, 0, 0]), ("ok", [0, 0, 20, 20, 0])],
        )
        hit = suspicious_subgroup([rm])
        assert hit is not None and hit[1] == "bad"

    def test_gap_trigger(self):
        rm = _map(
            Side.ITEM, "city", "food",
            [("dip", [5, 10, 15, 5, 0]), ("high", [0, 0, 5, 20, 30])],
        )
        hit = suspicious_subgroup([rm], threshold=1.0, gap=0.45)
        assert hit is not None and hit[1] == "dip"

    def test_nothing_suspicious(self):
        rm = _map(
            Side.ITEM, "city", "food",
            [("a", [0, 0, 20, 20, 5]), ("b", [0, 0, 18, 22, 6])],
        )
        assert suspicious_subgroup([rm], gap=1.0) is None

    def test_small_support_ignored(self):
        rm = _map(
            Side.ITEM, "city", "food",
            [("tiny", [2, 0, 0, 0, 0]), ("big", [0, 0, 50, 50, 0])],
        )
        assert suspicious_subgroup([rm], min_support=10) is None


class TestExposureRules:
    def _group(self, dimension="food"):
        return IrregularGroup(
            side=Side.ITEM,
            pairs=(
                AVPair(Side.ITEM, "city", "NYC"),
                AVPair(Side.ITEM, "wifi", "free"),
            ),
            dimension=dimension,
            entity_ids=(1, 2, 3, 4, 5),
            n_records=40,
        )

    def test_description_exposure(self):
        rm = _map(
            Side.ITEM, "city", "food",
            [("NYC", [30, 0, 0, 0, 0]), ("LA", [0, 0, 10, 20, 10])],
        )
        assert irregular_group_exposed(rm, self._group())

    def test_wrong_dimension_not_exposed(self):
        rm = _map(
            Side.ITEM, "city", "service",
            [("NYC", [30, 0, 0, 0, 0]), ("LA", [0, 0, 10, 20, 10])],
        )
        assert not irregular_group_exposed(rm, self._group())

    def test_wrong_attribute_not_exposed(self):
        rm = _map(
            Side.ITEM, "noise", "food",
            [("loud", [30, 0, 0, 0, 0]), ("quiet", [0, 0, 10, 20, 10])],
        )
        assert not irregular_group_exposed(rm, self._group())

    def test_subgroup_must_be_extreme(self):
        rm = _map(
            Side.ITEM, "city", "food",
            [("NYC", [5, 5, 20, 0, 0]), ("LA", [30, 0, 0, 0, 0])],
        )
        assert not irregular_group_exposed(rm, self._group())

    def test_multivalued_label_matching(self):
        group = IrregularGroup(
            side=Side.ITEM,
            pairs=(AVPair(Side.ITEM, "cuisine", "Thai"),),
            dimension="food",
            entity_ids=(1,) * 5,
            n_records=30,
        )
        rm = _map(
            Side.ITEM, "cuisine", "food",
            [("Sushi | Thai", [30, 0, 0, 0, 0]), ("Pizza", [0, 0, 10, 20, 10])],
        )
        assert irregular_group_exposed(rm, group)


class TestInsightExposure:
    def _insight(self, direction="low"):
        return Insight(Side.ITEM, "city", "NYC", "food", direction)

    def test_low_insight_exposed_when_minimum(self):
        rm = _map(
            Side.ITEM, "city", "food",
            [("NYC", [10, 20, 5, 0, 0]), ("LA", [0, 0, 10, 20, 10])],
        )
        assert insight_exposed(rm, self._insight("low"))
        assert not insight_exposed(rm, self._insight("high"))

    def test_high_insight_exposed_when_maximum(self):
        rm = _map(
            Side.ITEM, "city", "food",
            [("NYC", [0, 0, 0, 10, 30]), ("LA", [0, 10, 20, 10, 0])],
        )
        assert insight_exposed(rm, self._insight("high"))

    def test_support_floor(self):
        rm = _map(
            Side.ITEM, "city", "food",
            [("NYC", [3, 0, 0, 0, 0]), ("LA", [0, 0, 10, 20, 10])],
        )
        assert not insight_exposed(rm, self._insight("low"), min_support=5)


@pytest.fixture(scope="module")
def small_instance():
    base = yelp(seed=3, scale_factor=0.02)
    task = make_scenario1_task(base, seed=2)
    engine = SubDEx(
        task.database,
        SubDExConfig(recommender=RecommenderConfig(max_values_per_attribute=3)),
    )
    return engine, task


class TestStudyRunners:
    def test_engine_task_mismatch_rejected(self, small_instance, tiny_engine):
        __, task = small_instance
        with pytest.raises(ValueError):
            run_guidance_study([(tiny_engine, task)], "I")

    def test_sample_path_all_modes(self, small_instance):
        engine, task = small_instance
        for mode in ExplorationMode:
            path = sample_path(engine, task, mode, "high", n_steps=2, seed=0)
            assert 1 <= len(path) <= 2
            assert path.mode is mode

    def test_simulate_subject_score_bounded(self, small_instance):
        engine, task = small_instance
        path = sample_path(
            engine, task, ExplorationMode.FULLY_AUTOMATED, "high", 2, seed=0
        )
        subject = SimulatedSubject(SubjectProfile("high", "high"), seed=0)
        score = simulate_subject_score(subject, task, path)
        assert 0 <= score <= task.max_score

    def test_guidance_study_shape(self, small_instance):
        result = run_guidance_study(
            [small_instance],
            "I",
            StudyConfig(n_subjects_per_cell=4, n_path_samples=1, n_steps=2),
        )
        assert len(result.scores) == 8  # 2 cs × 2 dk × 2 modes each
        for cell in result.scores.values():
            assert len(cell) == 4
        table = format_guidance_table(result)
        assert "High CS Expertise" in table

    def test_scenario2_task(self):
        base = yelp(seed=3, scale_factor=0.02)
        task = make_scenario2_task(base)
        assert task.max_score == 5

    def test_format_simple_table(self):
        text = format_simple_table({"SubDEx": 0.9, "SDD": 0.6})
        assert "SubDEx" in text and "0.90" in text
