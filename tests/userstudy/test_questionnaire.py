"""Tests for the pre-qualification questionnaire."""

import numpy as np
import pytest

from repro.userstudy.questionnaire import (
    LatentSubject,
    Questionnaire,
    prequalify,
)


class TestQuestionnaire:
    def test_score_bounds(self):
        rng = np.random.default_rng(0)
        q = Questionnaire()
        for ability in (0.0, 0.5, 1.0):
            score, __ = q.administer(ability, rng)
            assert 0 <= score <= 10

    def test_ability_out_of_range(self):
        with pytest.raises(ValueError):
            Questionnaire().administer(1.5, np.random.default_rng(0))

    def test_high_ability_mostly_passes(self):
        rng = np.random.default_rng(1)
        q = Questionnaire()
        passes = sum(q.administer(0.95, rng)[1] for __ in range(300))
        assert passes > 250

    def test_low_ability_mostly_fails(self):
        rng = np.random.default_rng(2)
        q = Questionnaire()
        passes = sum(q.administer(0.05, rng)[1] for __ in range(300))
        assert passes < 100

    def test_misclassification_exists_near_boundary(self):
        """A borderline subject lands in both groups across repetitions."""
        rng = np.random.default_rng(3)
        q = Questionnaire()
        outcomes = {q.administer(0.45, rng)[1] for __ in range(100)}
        assert outcomes == {True, False}


class TestPrequalify:
    def test_assigns_all_subjects(self):
        subjects = [
            LatentSubject(0.9, 0.1),
            LatentSubject(0.1, 0.9),
            LatentSubject(0.5, 0.5),
        ]
        profiles = prequalify(subjects, seed=4)
        assert len(profiles) == 3
        assert all(p.cs_expertise in ("high", "low") for p in profiles)

    def test_extreme_abilities_classified_correctly(self):
        subjects = [LatentSubject(0.99, 0.01)] * 20
        profiles = prequalify(subjects, seed=5)
        highs = sum(p.cs_expertise == "high" for p in profiles)
        low_dk = sum(p.domain_knowledge == "low" for p in profiles)
        assert highs >= 18
        assert low_dk >= 18

    def test_deterministic_given_seed(self):
        subjects = [LatentSubject(0.5, 0.5)] * 10
        assert prequalify(subjects, seed=6) == prequalify(subjects, seed=6)
