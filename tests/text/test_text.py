"""Tests for the sentiment / review-text pipeline (S15)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import (
    DIMENSION_KEYWORDS,
    DimensionExtractor,
    ReviewGenerator,
    SentimentAnalyzer,
    extract_dimension_scores,
    phrase_windows,
    tokenize,
)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("The Food was GREAT!") == ["the", "food", "was", "great"]

    def test_apostrophes_stripped(self):
        assert tokenize("isn't bad") == ["isnt", "bad"]

    def test_empty(self):
        assert tokenize("") == []


class TestSentimentAnalyzer:
    @pytest.fixture()
    def analyzer(self):
        return SentimentAnalyzer()

    def test_positive_words_positive(self, analyzer):
        assert analyzer.score("the food was amazing") > 0.5

    def test_negative_words_negative(self, analyzer):
        assert analyzer.score("a terrible, disgusting place") < -0.5

    def test_neutral_text_zero(self, analyzer):
        assert analyzer.score("we went there on a tuesday") == 0.0

    def test_negation_flips(self, analyzer):
        positive = analyzer.score("the food was good")
        negated = analyzer.score("the food was not good")
        assert positive > 0 > negated

    def test_intensifier_boosts(self, analyzer):
        plain = analyzer.score("the staff was good")
        boosted = analyzer.score("the staff was extremely good")
        assert boosted > plain

    def test_downtoner_dampens(self, analyzer):
        plain = analyzer.score("the staff was good")
        dampened = analyzer.score("the staff was slightly good")
        assert dampened < plain

    def test_exclamation_emphasis(self, analyzer):
        plain = analyzer.score("the food was great")
        emphatic = analyzer.score("the food was great!!!")
        assert emphatic > plain

    def test_bounded(self, analyzer):
        assert -1 <= analyzer.score("worst worst worst awful awful!!!") <= 1

    @pytest.mark.parametrize(
        "sentiment,expected",
        [(-1.0, 1), (-0.5, 2), (0.0, 3), (0.5, 4), (0.99, 5), (1.0, 5)],
    )
    def test_to_rating_bins(self, analyzer, sentiment, expected):
        assert analyzer.to_rating(sentiment, scale=5) == expected

    def test_to_rating_invalid_scale(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.to_rating(0.0, scale=1)

    @given(s=st.floats(-1, 1))
    def test_to_rating_always_in_scale(self, s):
        analyzer = SentimentAnalyzer()
        assert 1 <= analyzer.to_rating(s, 5) <= 5

    def test_custom_lexicon(self):
        analyzer = SentimentAnalyzer(valence={"blorpy": 0.9})
        assert analyzer.score("such a blorpy day") > 0
        assert analyzer.score("such an amazing day") == 0.0  # default lexicon gone


class TestPhraseWindows:
    def test_window_extent(self):
        tokens = "a b c d e food f g h i j".split()
        windows = phrase_windows(tokens, ["food"], window=2)
        assert windows == [["d", "e", "food", "f", "g"]]

    def test_multiple_occurrences(self):
        tokens = "food is food".split()
        assert len(phrase_windows(tokens, ["food"], window=1)) == 2

    def test_no_occurrence(self):
        assert phrase_windows(["a", "b"], ["food"]) == []

    def test_window_clipped_at_bounds(self):
        tokens = "food great".split()
        windows = phrase_windows(tokens, ["food"], window=5)
        assert windows == [["food", "great"]]


class TestExtraction:
    def test_per_dimension_scores(self):
        # sentences far enough apart that the ±5 window stays in-sentence
        text = (
            "The food here was truly amazing and we loved every single bite "
            "of it. On the other hand after a long wait we found the "
            "service honestly terrible from start to finish."
        )
        scores = extract_dimension_scores(
            text, {"food": ["food"], "service": ["service"]}
        )
        assert scores["food"] >= 4
        assert scores["service"] <= 2

    def test_smaller_window_localises(self):
        text = "The food was amazing. We found the service terrible."
        scores = extract_dimension_scores(
            text, {"service": ["service"]}, window=1
        )
        assert scores["service"] <= 2

    def test_missing_dimension_is_none(self):
        scores = extract_dimension_scores(
            "The food was fine.", {"food": ["food"], "ambiance": ["ambiance"]}
        )
        assert scores["ambiance"] is None

    def test_extractor_class(self):
        extractor = DimensionExtractor({"food": ("food", "meal")})
        assert extractor.dimensions == ("food",)
        assert extractor.extract("the meal was excellent")["food"] >= 4


class TestReviewGenerator:
    def test_review_mentions_all_dimensions(self):
        generator = ReviewGenerator(("food", "service"), seed=1)
        review = generator.review({"food": 5, "service": 1})
        tokens = set(tokenize(review))
        assert tokens & set(DIMENSION_KEYWORDS["food"])
        assert tokens & set(DIMENSION_KEYWORDS["service"])

    def test_unknown_dimension_rejected(self):
        with pytest.raises(KeyError):
            ReviewGenerator(("nonexistent",))

    def test_deterministic_with_seed(self):
        a = ReviewGenerator(("food",), seed=42).review({"food": 3})
        b = ReviewGenerator(("food",), seed=42).review({"food": 3})
        assert a == b

    def test_roundtrip_recovers_intent_direction(self):
        """Generated text mined back should correlate with intent."""
        dims = ("food", "service")
        generator = ReviewGenerator(dims, seed=9)
        extractor = DimensionExtractor({d: DIMENSION_KEYWORDS[d] for d in dims})
        agreements = 0
        trials = 30
        for i in range(trials):
            intent = {"food": 1 + (i % 5), "service": 1 + ((i * 2) % 5)}
            mined = extractor.extract(generator.review(intent))
            for d in dims:
                if mined[d] is not None and abs(mined[d] - intent[d]) <= 1:
                    agreements += 1
        assert agreements / (trials * 2) >= 0.6
