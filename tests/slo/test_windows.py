"""Rolling windows: rotation boundaries, merging, concurrent ingest."""

from __future__ import annotations

import threading

import pytest

from repro.slo import ClassWindows, WindowCounts, merge_counts
from repro.slo.windows import BUCKET_BOUNDS, _SlotRing


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def ingest_ok(windows: ClassWindows, seconds: float = 0.01, **kwargs) -> None:
    defaults = dict(
        error=False, shed=False, degraded=False, within_budget=True
    )
    defaults.update(kwargs)
    windows.ingest(seconds, **defaults)


class TestWindowCounts:
    def test_json_roundtrip(self):
        counts = WindowCounts()
        counts.add_sample(0.02, 3, True, False, True, False, "2")
        counts.add_sample(0.5, 9, False, True, False, True, "2")
        restored = WindowCounts.from_json(counts.to_json())
        assert restored.to_json() == counts.to_json()
        assert restored.count == 2
        assert restored.rungs == {"2": 2}

    def test_merge_adds_everything(self):
        a, b = WindowCounts(), WindowCounts()
        a.add_sample(0.1, 1, True, False, False, False, "0")
        b.add_sample(0.2, 1, False, True, True, True, "0")
        a.merge(b)
        assert a.count == 2
        assert a.errors == 1
        assert a.shed == 1
        assert a.degraded == 1
        assert a.within_budget == 1
        assert a.sum_seconds == pytest.approx(0.3)
        assert a.buckets[1] == 2
        assert a.rungs == {"0": 2}

    def test_merge_counts_over_json_parts(self):
        a, b = WindowCounts(), WindowCounts()
        a.add_sample(0.1, 0, False, False, False, True, None)
        b.add_sample(0.1, 0, True, False, False, False, None)
        merged = merge_counts([a.to_json(), b.to_json()])
        assert merged.count == 2
        assert merged.errors == 1


class TestSlotRing:
    def test_slots_rotate_and_reset(self):
        ring = _SlotRing(slot_seconds=1.0, n_slots=3)
        ring.slot(0.0).count = 5
        # same epoch → same live slot, no reset
        assert ring.slot(0.9).count == 5
        # three epochs later the position is reused and must come clean
        assert ring.slot(3.0).count == 0

    def test_totals_drop_expired_slots(self):
        ring = _SlotRing(slot_seconds=1.0, n_slots=3)
        ring.slot(0.0).count = 1
        ring.slot(1.0).count = 1
        assert ring.totals(1.0).count == 2
        # at t=3 the epoch-0 slot has left the [1..3] window
        assert ring.totals(3.0).count == 1
        assert ring.totals(10.0).count == 0


class TestClassWindows:
    def test_window_rotation_boundaries(self):
        clock = FakeClock()
        windows = ClassWindows(clock=clock)
        ingest_ok(windows)
        counts = windows.window_counts()
        assert counts["1m"].count == 1
        assert counts["5m"].count == 1
        assert counts["1h"].count == 1
        assert counts["total"].count == 1
        clock.advance(61.0)  # out of 1m, still inside 5m and 1h
        counts = windows.window_counts()
        assert counts["1m"].count == 0
        assert counts["5m"].count == 1
        assert counts["1h"].count == 1
        clock.advance(300.0)  # out of 5m too
        counts = windows.window_counts()
        assert counts["5m"].count == 0
        assert counts["1h"].count == 1
        clock.advance(3600.0)  # everything rolled off but the total
        counts = windows.window_counts()
        assert counts["1h"].count == 0
        assert counts["total"].count == 1

    def test_bucket_index_from_bounds(self):
        clock = FakeClock()
        windows = ClassWindows(clock=clock)
        ingest_ok(windows, seconds=0.0005)  # below the first bound
        ingest_ok(windows, seconds=99.0)  # above the last bound
        total = windows.window_counts()["total"]
        assert total.buckets[0] == 1
        assert total.buckets[len(BUCKET_BOUNDS)] == 1
        assert sum(total.buckets) == total.count

    def test_flags_accumulate(self):
        clock = FakeClock()
        windows = ClassWindows(clock=clock)
        ingest_ok(windows, error=True, within_budget=False)
        ingest_ok(windows, shed=True, degraded=True, rung="1")
        total = windows.window_counts()["total"]
        assert total.errors == 1
        assert total.shed == 1
        assert total.degraded == 1
        assert total.within_budget == 1
        assert total.rungs == {"1": 1}

    def test_concurrent_ingest_loses_nothing(self):
        """8 threads hammering one ClassWindows: every sample lands."""
        windows = ClassWindows()
        n_threads, per_thread = 8, 500
        barrier = threading.Barrier(n_threads)

        def worker(index: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                windows.ingest(
                    0.001 * (i % 7 + 1),
                    error=i % 10 == 0,
                    shed=False,
                    degraded=i % 5 == 0,
                    within_budget=True,
                    rung=str(index % 3),
                )

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = n_threads * per_thread
        counts = windows.window_counts()
        total = counts["total"]
        assert total.count == expected
        assert total.errors == n_threads * sum(
            1 for i in range(per_thread) if i % 10 == 0
        )
        assert total.degraded == n_threads * sum(
            1 for i in range(per_thread) if i % 5 == 0
        )
        assert sum(total.buckets) == expected
        assert sum(total.rungs.values()) == expected
        # the run takes well under a minute: the 1m window saw it all too
        assert counts["1m"].count == expected

    def test_totals_json_shape(self):
        clock = FakeClock()
        windows = ClassWindows(clock=clock)
        ingest_ok(windows)
        payload = windows.totals_json()
        assert set(payload) == {"1m", "5m", "1h", "total"}
        assert payload["total"]["count"] == 1
        assert isinstance(payload["total"]["buckets"], list)
