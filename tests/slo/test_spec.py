"""SLO spec: objective validation, classification, burn-rate math."""

from __future__ import annotations

import json
import math

import pytest

from repro.slo import (
    SLObjective,
    SLOConfig,
    burn_rate,
    default_slo_config,
    evaluate_counts,
    load_slo_config,
)
from repro.slo.spec import DEFAULT_CLASS_OBJECTIVES


class TestSLObjective:
    def test_defaults_are_the_paper_promise(self):
        objective = SLObjective()
        assert objective.latency_ms == 800.0
        assert objective.latency_target == 0.95
        assert objective.availability_target == 0.995

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency_ms": 0.0},
            {"latency_ms": -5.0},
            {"latency_target": 0.0},
            {"latency_target": 1.5},
            {"availability_target": -0.1},
            {"max_degraded_rate": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SLObjective(**kwargs)

    def test_json_roundtrip(self):
        objective = SLObjective(latency_ms=500.0, latency_target=0.99)
        assert SLObjective.from_json(objective.to_json()) == objective

    def test_from_json_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown SLO objective keys"):
            SLObjective.from_json({"latency_ms": 500, "p99": 1})


class TestSLOConfig:
    def test_default_classes(self):
        config = default_slo_config()
        assert set(config.classes) == {
            "recommendations",
            "steps",
            "reads",
            "ops",
        }

    def test_classify_known_routes(self):
        config = default_slo_config()
        assert (
            config.classify("GET /sessions/{id}/recommendations")
            == "recommendations"
        )
        assert config.classify("POST /sessions") == "steps"
        assert config.classify("GET /sessions/{id}/maps") == "reads"
        assert config.classify("GET /metrics") == "ops"

    def test_classify_fallback_for_unknown_routes(self):
        config = default_slo_config()
        assert (
            config.classify("GET /v2/sessions/{id}/recommendations")
            == "recommendations"
        )
        assert config.classify("POST /v2/things") == "steps"
        assert config.classify("GET /sessions/{id}/notes") == "reads"
        assert config.classify("GET /whatever") == "ops"
        assert config.classify("<unmatched>") == "ops"

    def test_classify_op(self):
        config = default_slo_config()
        assert config.classify_op("session.recommendations") == "recommendations"
        assert config.classify_op("session.apply") == "steps"
        assert config.classify_op("session.maps") == "reads"
        assert config.classify_op("mystery.op") == "ops"

    def test_json_roundtrip(self):
        config = default_slo_config()
        restored = SLOConfig.from_json(config.to_json())
        assert restored.classes == dict(config.classes)
        assert restored.route_classes == dict(config.route_classes)
        assert restored.op_classes == dict(config.op_classes)

    def test_from_json_merges_over_defaults(self):
        config = SLOConfig.from_json(
            {"classes": {"recommendations": {"latency_ms": 500}}}
        )
        assert config.objective("recommendations").latency_ms == 500.0
        # the untouched fields keep their defaults
        assert config.objective("recommendations").latency_target == 0.95
        assert (
            config.objective("steps")
            == DEFAULT_CLASS_OBJECTIVES["steps"]
        )

    def test_from_json_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown SLO config keys"):
            SLOConfig.from_json({"classez": {}})

    @pytest.mark.parametrize("key", ["classes", "routes", "ops"])
    def test_from_json_rejects_non_object_tables(self, key):
        with pytest.raises(ValueError, match="must be a JSON object"):
            SLOConfig.from_json({key: 3})

    def test_route_table_must_name_known_classes(self):
        with pytest.raises(ValueError, match="unknown class"):
            SLOConfig(
                classes={"reads": SLObjective()},
                route_classes={"GET /x": "nope"},
                op_classes={},
            )

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(
            json.dumps({"classes": {"reads": {"latency_ms": 100}}})
        )
        config = load_slo_config(str(path))
        assert config.objective("reads").latency_ms == 100.0
        assert load_slo_config(None).objective("reads").latency_ms == 250.0

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_slo_config(str(path))


class TestBurnRate:
    def test_empty_window_burns_nothing(self):
        assert burn_rate(0, 0, 0.95) == 0.0

    def test_at_budget_is_one(self):
        # 5% bad with a 95% target = burning exactly at budget
        assert burn_rate(5, 100, 0.95) == pytest.approx(1.0)

    def test_monotone_in_bad_count(self):
        rates = [burn_rate(bad, 100, 0.99) for bad in range(0, 101)]
        assert rates == sorted(rates)
        assert all(math.isfinite(rate) for rate in rates)

    def test_perfect_target_is_clamped_not_infinite(self):
        rate = burn_rate(1, 100, 1.0)
        assert math.isfinite(rate)
        assert rate > 0


class TestEvaluateCounts:
    def test_empty_window_yields_nulls_never_nan(self):
        report = evaluate_counts(SLObjective(), {})
        text = json.dumps(report, allow_nan=False)  # raises on NaN/Inf
        assert report["availability"] is None
        assert report["latency_attainment"] is None
        assert report["mean_latency_ms"] is None
        assert report["burn_rates"]["max"] == 0.0
        assert "NaN" not in text

    def test_rates(self):
        report = evaluate_counts(
            SLObjective(availability_target=0.9, latency_target=0.9),
            {
                "count": 10,
                "errors": 1,
                "shed": 2,
                "degraded": 3,
                "within_budget": 8,
                "sum_seconds": 5.0,
            },
        )
        assert report["availability"] == pytest.approx(0.9)
        assert report["latency_attainment"] == pytest.approx(0.8)
        assert report["shed_rate"] == pytest.approx(0.2)
        assert report["degraded_rate"] == pytest.approx(0.3)
        assert report["mean_latency_ms"] == pytest.approx(500.0)
        # 10% errors with a 90% target → burn exactly 1.0
        assert report["burn_rates"]["availability"] == pytest.approx(1.0)
        # 20% slow with a 10% allowance → burn 2.0
        assert report["burn_rates"]["latency"] == pytest.approx(2.0)

    def test_degraded_burn_uses_max_degraded_rate_as_allowance(self):
        objective = SLObjective(max_degraded_rate=0.1)
        report = evaluate_counts(
            objective, {"count": 100, "degraded": 10, "within_budget": 100}
        )
        assert report["burn_rates"]["degraded"] == pytest.approx(1.0)

    def test_fully_allowed_degradation_burns_proportionally(self):
        objective = SLObjective(max_degraded_rate=1.0)
        report = evaluate_counts(
            objective, {"count": 10, "degraded": 10, "within_budget": 10}
        )
        assert report["burn_rates"]["degraded"] == pytest.approx(1.0)
