"""Shared fixtures for the SLO test suite."""

from __future__ import annotations

import logging

import pytest


@pytest.fixture(autouse=True)
def _propagate_repro_logs():
    """Let ``repro.slo`` records reach caplog's root handler.

    Any earlier test that called ``setup_logging`` leaves the ``repro``
    logger with ``propagate = False`` (that is the library's documented
    behaviour), which would silently blind ``caplog`` here depending on
    suite order.  Re-enable propagation for the duration of each test
    and restore the previous state afterwards.
    """
    logger = logging.getLogger("repro")
    previous = logger.propagate
    logger.propagate = True
    yield
    logger.propagate = previous
