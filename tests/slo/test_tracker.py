"""SLOTracker: ingest classification, burn alerts, scorecards, metrics."""

from __future__ import annotations

import json
import logging
import threading

import pytest

from repro.slo import SLOTracker, merge_worker_totals, scorecard_from_totals
from repro.slo.spec import default_slo_config


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def make_tracker(**kwargs) -> tuple[SLOTracker, FakeClock]:
    clock = FakeClock()
    return SLOTracker(clock=clock, **kwargs), clock


class TestIngest:
    def test_routes_and_ops_classify_differently(self):
        tracker, __ = make_tracker()
        tracker.ingest("GET /sessions/{id}/recommendations", 200, 0.05)
        tracker.ingest("session.recommendations", 200, 0.05, op=True)
        tracker.ingest("GET /metrics", 200, 0.01)
        totals = tracker.totals()
        assert totals["recommendations"]["total"]["count"] == 2
        assert totals["ops"]["total"]["count"] == 1

    def test_error_and_budget_accounting(self):
        tracker, __ = make_tracker()
        tracker.ingest("GET /sessions/{id}/maps", 200, 0.01)  # within 250ms
        tracker.ingest("GET /sessions/{id}/maps", 200, 0.4)  # over budget
        tracker.ingest("GET /sessions/{id}/maps", 500, 0.01)
        total = tracker.totals()["reads"]["total"]
        assert total["count"] == 3
        assert total["errors"] == 1
        assert total["within_budget"] == 2

    def test_shed_degraded_rung(self):
        tracker, __ = make_tracker()
        tracker.ingest(
            "GET /sessions/{id}/recommendations",
            200,
            0.1,
            degraded=True,
            rung="1",
        )
        tracker.ingest(
            "GET /sessions/{id}/recommendations", 503, 0.001, shed=True
        )
        total = tracker.totals()["recommendations"]["total"]
        assert total["shed"] == 1
        assert total["degraded"] == 1
        assert total["rungs"] == {"1": 1}


class TestBurnAlerts:
    def test_sustained_errors_raise_fast_burn(self, caplog):
        events = []
        tracker, clock = make_tracker(on_event=events.append)
        with caplog.at_level(logging.WARNING, logger="repro.slo"):
            for __ in range(20):
                tracker.ingest("GET /sessions/{id}/maps", 500, 0.01)
                clock.advance(1.1)  # past the evaluation throttle
        assert any(e["to"] == "fast_burn" for e in events)
        assert "fast_burn" in caplog.text
        assert tracker.scorecard()["classes"]["reads"]["state"] == "fast_burn"
        assert any(
            e["to"] == "fast_burn" for e in tracker.recent_events()
        )

    def test_recovery_logs_at_info(self, caplog):
        events = []
        tracker, clock = make_tracker(on_event=events.append)
        for __ in range(20):
            tracker.ingest("GET /sessions/{id}/maps", 500, 0.01)
            clock.advance(1.1)
        # the bad minute rolls out of both burn windows
        clock.advance(3700.0)
        with caplog.at_level(logging.INFO, logger="repro.slo"):
            tracker.ingest("GET /sessions/{id}/maps", 200, 0.01)
        assert events[-1]["to"] == "ok"
        assert "-> ok" in caplog.text

    def test_on_event_exceptions_are_swallowed(self):
        def explode(event):
            raise RuntimeError("observer bug")

        tracker, clock = make_tracker(on_event=explode)
        for __ in range(20):
            tracker.ingest("GET /sessions/{id}/maps", 500, 0.01)
            clock.advance(1.1)
        assert tracker.totals()["reads"]["total"]["count"] == 20

    def test_evaluation_is_throttled(self):
        events = []
        tracker, clock = make_tracker(on_event=events.append)
        # clock frozen: only the first ingest may trigger an evaluation
        for __ in range(50):
            tracker.ingest("GET /sessions/{id}/maps", 500, 0.01)
        first = len(events)
        for __ in range(50):
            tracker.ingest("GET /sessions/{id}/maps", 500, 0.01)
        assert len(events) == first  # no re-evaluation while throttled


class TestScorecard:
    def test_empty_tracker_serializes_without_nan(self):
        tracker, __ = make_tracker()
        card = tracker.scorecard()
        text = json.dumps(card, allow_nan=False)
        assert "NaN" not in text
        assert card["state"] == "ok"
        for cls in card["classes"].values():
            assert cls["windows"]["total"]["availability"] is None
            assert cls["budget_remaining"]["availability"] == 1.0

    def test_budget_depletes_with_errors(self):
        tracker, __ = make_tracker()
        for index in range(100):
            status = 500 if index < 2 else 200
            tracker.ingest("GET /sessions/{id}/maps", status, 0.01)
        card = tracker.scorecard()
        reads = card["classes"]["reads"]
        # 2% errors against a 99.9% availability target: budget gone
        assert reads["budget_remaining"]["availability"] == 0.0
        assert reads["windows"]["total"]["availability"] == pytest.approx(
            0.98
        )

    def test_fleet_merge_equals_sum(self):
        config = default_slo_config()
        a, __ = make_tracker()
        b, __ = make_tracker()
        for __i in range(3):
            a.ingest("GET /sessions/{id}/maps", 200, 0.01)
        for __i in range(2):
            b.ingest("GET /sessions/{id}/maps", 500, 0.01)
        merged = merge_worker_totals([a.totals(), b.totals()])
        assert merged["reads"]["total"]["count"] == 5
        assert merged["reads"]["total"]["errors"] == 2
        card = scorecard_from_totals(config, merged)
        assert card["classes"]["reads"]["windows"]["total"][
            "availability"
        ] == pytest.approx(0.6)


class TestCollect:
    def test_families_and_cumulative_buckets(self):
        tracker, __ = make_tracker()
        tracker.ingest("GET /sessions/{id}/recommendations", 200, 0.05)
        tracker.ingest("GET /sessions/{id}/recommendations", 200, 0.3)
        families = {family.name: family for family in tracker.collect()}
        assert "subdex_slo_requests_total" in families
        histogram = families["subdex_slo_request_seconds"]
        assert histogram.kind == "histogram"
        buckets = [
            sample.value
            for sample in histogram.samples
            if sample.suffix == "_bucket"
            and sample.labels["class"] == "recommendations"
        ]
        assert buckets == sorted(buckets)  # cumulative → monotone
        assert buckets[-1] == 2  # +Inf sees everything
        rendered = histogram.render()
        assert 'le="+Inf"' in rendered
        assert "subdex_slo_request_seconds_bucket" in rendered

    def test_empty_windows_emit_no_attainment(self):
        tracker, __ = make_tracker()
        families = {family.name: family for family in tracker.collect()}
        assert families["subdex_slo_attainment"].samples == []
        # burn gauges exist and are zero (empty window burns nothing)
        burns = families["subdex_slo_burn_rate"].samples
        assert burns and all(sample.value == 0.0 for sample in burns)

    def test_alert_counter_after_transitions(self):
        tracker, clock = make_tracker()
        for __ in range(20):
            tracker.ingest("GET /sessions/{id}/maps", 500, 0.01)
            clock.advance(1.1)
        families = {family.name: family for family in tracker.collect()}
        alerts = families["subdex_slo_alerts_total"].samples
        assert any(
            sample.labels == {"class": "reads", "state": "fast_burn"}
            for sample in alerts
        )

    def test_collect_under_concurrent_ingest(self):
        tracker, __ = make_tracker()
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                tracker.ingest("GET /sessions/{id}/maps", 200, 0.01)

        threads = [threading.Thread(target=hammer) for __ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for __ in range(20):
                families = tracker.collect()
                assert len(families) == 12
        finally:
            stop.set()
            for thread in threads:
                thread.join()
