"""Fleet trace collection: stitching, tail sampling, budgets, concurrency."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs.collect import (
    TailSampler,
    ThreadLocalTraceCapture,
    TraceCollector,
    dict_span_tree,
    fragment_from_trace,
)
from repro.obs.tracing import Span, Trace

TRACE_ID = "a" * 32


def make_span(
    name,
    trace_id=TRACE_ID,
    span_id="root",
    parent_id=None,
    duration_s=0.01,
    span_status="ok",
    **attrs,
):
    span = Span(name, trace_id, span_id, parent_id, dict(attrs))
    span.end = span.start + duration_s
    span.status = span_status
    return span


def front_trace(
    trace_id=TRACE_ID, workers=(0, 1), status=200, duration_s=0.01, **root_attrs
):
    """A realistic front-process trace: request → scatter → worker.rpc×N."""
    root = make_span(
        "request",
        trace_id,
        "root",
        None,
        duration_s,
        route="GET /sessions/{id}/maps",
        status=status,
        **root_attrs,
    )
    scatter = make_span(
        "cluster.scatter",
        trace_id,
        "scatter",
        "root",
        duration_s * 0.8,
        dataset="synthetic",
        workers=len(workers),
    )
    spans = [root, scatter]
    for w in workers:
        spans.append(
            make_span(
                "worker.rpc",
                trace_id,
                f"rpc-{w}",
                "scatter",
                duration_s * 0.5,
                worker=w,
                op="session.maps",
            )
        )
    return Trace(trace_id, tuple(spans))


def make_fragment(trace_id=TRACE_ID, worker=0, pid=4242, extra_spans=0):
    """A worker-side fragment: worker.request → engine.maps → phase.scan."""
    base = time.time()

    def span_dict(name, span_id, parent_id, depth):
        return {
            "name": name,
            "trace_id": trace_id,
            "span_id": span_id,
            "parent_id": parent_id,
            "started_at": base + depth * 0.001,
            "duration_ms": 4.0 - depth,
            "status": "ok",
            "thread": "worker",
            "attributes": {"op": "session.maps"},
        }

    prefix = f"w{worker}"
    spans = [
        span_dict("worker.request", f"{prefix}-root", None, 0),
        span_dict("engine.maps", f"{prefix}-engine", f"{prefix}-root", 1),
        span_dict("phase.scan", f"{prefix}-scan", f"{prefix}-engine", 2),
    ]
    for i in range(extra_spans):
        spans.append(
            span_dict("phase.scan", f"{prefix}-extra{i}", f"{prefix}-engine", 3)
        )
    return {
        "trace_id": trace_id,
        "worker": worker,
        "pid": pid,
        "truncated": False,
        "spans": spans,
    }


def names(node):
    """Flatten a tree into {name: node} for structural assertions."""
    out = {node["name"]: node}
    for child in node["children"]:
        out.update(names(child))
    return out


class TestStitching:
    def test_fragments_reparent_under_their_rpc_spans(self):
        collector = TraceCollector()
        collector.add_fragment(make_fragment(worker=0, pid=100))
        collector.add_fragment(make_fragment(worker=1, pid=101))
        collector(front_trace(workers=(0, 1)))

        record = collector.get(TRACE_ID)
        assert record is not None
        assert record["partial"] is False
        assert record["truncated"] is False
        assert record["n_spans"] == 4 + 6  # front spans + two fragments
        assert sorted(w["worker"] for w in record["workers"]) == [0, 1]
        assert sorted(w["pid"] for w in record["workers"]) == [100, 101]
        assert all(w["matched"] for w in record["workers"])

        tree = record["tree"]
        assert tree["name"] == "request"
        by_name = names(tree)
        # the acceptance-criteria chain, both sides of the IPC boundary
        for expected in (
            "request",
            "cluster.scatter",
            "worker.rpc",
            "worker.request",
            "engine.maps",
            "phase.scan",
        ):
            assert expected in by_name
        scatter = by_name["cluster.scatter"]
        assert [c["name"] for c in scatter["children"]] == [
            "worker.rpc",
            "worker.rpc",
        ]
        for rpc in scatter["children"]:
            (worker_root,) = rpc["children"]
            assert worker_root["name"] == "worker.request"
            # per-worker attribution + reported (not corrected) skew
            assert worker_root["attributes"]["worker"] == rpc[
                "attributes"
            ]["worker"]
            assert isinstance(
                worker_root["attributes"]["clock_skew_ms"], float
            )

    def test_missing_fragment_surfaces_as_partial(self):
        collector = TraceCollector()
        collector.add_fragment(make_fragment(worker=0))
        collector(front_trace(workers=(0, 1)))  # worker 1 never reported
        record = collector.get(TRACE_ID)
        assert record["partial"] is True
        assert [w["worker"] for w in record["workers"]] == [0]
        assert collector.traces_partial == 1

    def test_unmatched_fragment_attaches_to_front_root(self):
        collector = TraceCollector()
        collector.add_fragment(make_fragment(worker=7))  # no rpc span for 7
        collector(front_trace(workers=(0,)))
        record = collector.get(TRACE_ID)
        assert collector.fragments_unmatched == 1
        by_name = names(record["tree"])
        assert by_name["worker.request"]["attributes"]["fleet_unmatched"]
        # the rpc span for worker 0 stays unclaimed → partial
        assert record["partial"] is True

    def test_late_fragment_merges_into_stored_record(self):
        collector = TraceCollector()
        collector(front_trace(workers=(0,)))
        assert collector.get(TRACE_ID)["partial"] is True
        collector.add_fragment(make_fragment(worker=0))
        record = collector.get(TRACE_ID)
        assert record["partial"] is False
        assert [w["worker"] for w in record["workers"]] == [0]

    def test_no_worker_parity(self):
        """A 0-worker deployment: same sink, same record shape, no workers."""
        collector = TraceCollector()
        root = make_span("request", route="GET /health", status=200)
        child = make_span("engine.maps", span_id="child", parent_id="root")
        collector(Trace(TRACE_ID, (root, child)))
        record = collector.get(TRACE_ID)
        assert record["workers"] == []
        assert record["partial"] is False
        assert record["tree"]["children"][0]["name"] == "engine.maps"

    def test_search_filters(self):
        collector = TraceCollector()
        collector(front_trace("1" * 32, workers=()))
        slow = front_trace("2" * 32, workers=(), duration_s=0.5)
        collector(slow)
        error = front_trace("3" * 32, workers=(), status=500)
        error.spans[0].status = "error"
        collector(error)

        assert len(collector.search()) == 3
        assert [t["trace_id"] for t in collector.search(limit=1)] == [
            "3" * 32
        ]  # most recent first
        assert [t["trace_id"] for t in collector.search(min_ms=400.0)] == [
            "2" * 32
        ]
        assert [t["trace_id"] for t in collector.search(status="error")] == [
            "3" * 32
        ]
        assert len(collector.search(status="ok")) == 2
        assert len(collector.search(op="maps")) == 3
        assert collector.search(op="nowhere") == []
        assert len(collector.search(dataset="synthetic")) == 3
        assert collector.search(dataset="other") == []
        assert collector.get("f" * 32) is None


class TestTailSampler:
    def test_always_keep_rules(self):
        sampler = TailSampler(sample_rate=0.0, slow_ms=50.0)
        keep = sampler.reason_to_keep
        assert keep(TRACE_ID, 1.0, True, {}) == "error"
        assert keep(TRACE_ID, 1.0, False, {"status": 503}) == "error"
        assert keep(TRACE_ID, 1.0, False, {"shed": True}) == "shed"
        assert keep(TRACE_ID, 1.0, False, {"degraded": True}) == "degraded"
        assert keep(TRACE_ID, 60.0, False, {"status": 200}) == "slow"
        assert keep(TRACE_ID, 1.0, False, {"status": 200}) is None

    def test_burn_window_pins_everything(self):
        sampler = TailSampler(sample_rate=0.0)
        assert sampler.reason_to_keep(TRACE_ID, 1.0, False, {}) is None
        sampler.pin_burn("steps")
        assert sampler.reason_to_keep(TRACE_ID, 1.0, False, {}) == "burn"
        sampler.unpin_burn("steps")
        assert sampler.reason_to_keep(TRACE_ID, 1.0, False, {}) is None

    def test_hash_sampling_is_deterministic_and_proportionate(self):
        sampler = TailSampler(sample_rate=0.5)
        ids = [f"{i:032x}" for i in range(2000)]
        first = [sampler.reason_to_keep(t, 1.0, False, {}) for t in ids]
        second = [sampler.reason_to_keep(t, 1.0, False, {}) for t in ids]
        assert first == second  # same id → same decision, always
        kept = sum(1 for r in first if r is not None)
        assert 800 < kept < 1200  # ≈ half

    def test_rate_validation_and_counters(self):
        with pytest.raises(ValueError, match="sample_rate"):
            TailSampler(sample_rate=1.5)
        sampler = TailSampler(sample_rate=1.0)
        sampler.record("sampled")
        sampler.record(None)
        counters = sampler.counters()
        assert counters["kept"] == 1
        assert counters["dropped"] == 1
        assert counters["kept_by_reason"] == {"sampled": 1}

    def test_collector_drops_unremarkable_traces(self):
        collector = TraceCollector(sampler=TailSampler(sample_rate=0.0))
        collector(front_trace("1" * 32, workers=()))
        assert collector.get("1" * 32) is None
        error = front_trace("2" * 32, workers=(), status=500)
        error.spans[0].status = "error"
        collector(error)
        assert collector.get("2" * 32) is not None
        counters = collector.counters()
        assert counters["kept"] == 1
        assert counters["dropped"] == 1


class TestBudgets:
    def test_count_eviction_is_oldest_first(self):
        collector = TraceCollector(max_traces=2)
        for i in range(4):
            collector(front_trace(f"{i:032x}", workers=()))
        assert len(collector) == 2
        assert collector.get(f"{0:032x}") is None
        assert collector.get(f"{3:032x}") is not None

    def test_byte_budget_evicts_oldest(self):
        one_record = len(
            json.dumps(
                TraceCollector()._assemble(
                    front_trace(workers=()), [], "sampled"
                )
            )
        )
        collector = TraceCollector(max_traces=100, max_bytes=3 * one_record)
        for i in range(10):
            collector(front_trace(f"{i:032x}", workers=()))
        assert len(collector) < 10
        assert collector.counters()["stored_bytes"] <= 3 * one_record
        assert collector.get(f"{9:032x}") is not None  # newest survives

    def test_max_spans_truncates_with_marker(self):
        collector = TraceCollector(max_spans_per_trace=3)
        collector(front_trace(workers=(0, 1)))  # 4 front spans → truncated
        record = collector.get(TRACE_ID)
        assert record["truncated"] is True
        assert collector.traces_truncated == 1

    def test_fragment_truncation_marks_record(self):
        collector = TraceCollector(max_spans_per_trace=4)
        collector.add_fragment(make_fragment(worker=0, extra_spans=8))
        collector(front_trace(workers=(0,)))
        record = collector.get(TRACE_ID)
        assert record["truncated"] is True
        (worker_meta,) = record["workers"]
        assert worker_meta["truncated"] is True
        assert worker_meta["n_spans"] == 4

    def test_pending_fragment_buffer_is_bounded(self):
        collector = TraceCollector(pending_capacity=2)
        for i in range(5):
            collector.add_fragment(make_fragment(f"{i:032x}", worker=0))
        assert collector.fragments_evicted >= 3
        assert collector.counters()["pending_fragments"] <= 2


class TestConcurrency:
    def test_eight_thread_collect_search_exactness(self):
        """8 threads collecting + searching concurrently lose nothing."""
        collector = TraceCollector(max_traces=10_000)
        per_thread = 50
        errors: list[Exception] = []

        def work(thread_index: int) -> None:
            try:
                for i in range(per_thread):
                    trace_id = f"{thread_index:04x}{i:028x}"
                    if thread_index % 2 == 0:
                        collector.add_fragment(
                            make_fragment(trace_id, worker=0)
                        )
                    collector(
                        front_trace(
                            trace_id,
                            workers=(0,) if thread_index % 2 == 0 else (),
                        )
                    )
                    # reads race the writes: they must never throw or
                    # observe a half-assembled record
                    found = collector.search(limit=5)
                    assert len(found) <= 5
                    record = collector.get(trace_id)
                    assert record is not None
                    assert record["trace_id"] == trace_id
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        total = 8 * per_thread
        assert len(collector) == total
        assert collector.counters()["kept"] == total
        assert collector.counters()["dropped"] == 0
        assert len(collector.search()) == total
        for thread_index in range(8):
            for i in range(per_thread):
                trace_id = f"{thread_index:04x}{i:028x}"
                record = collector.get(trace_id)
                assert record is not None
                if thread_index % 2 == 0:
                    assert record["partial"] is False
                    assert [w["worker"] for w in record["workers"]] == [0]


class TestHelpers:
    def test_dict_span_tree_attaches_orphans_to_root(self):
        spans = [
            {"span_id": "a", "parent_id": None, "name": "root",
             "started_at": 1.0, "duration_ms": 10.0, "attributes": {}},
            {"span_id": "b", "parent_id": "missing", "name": "orphan",
             "started_at": 2.0, "duration_ms": 1.0, "attributes": {}},
        ]
        tree = dict_span_tree(spans)
        assert tree["name"] == "root"
        assert [c["name"] for c in tree["children"]] == ["orphan"]
        assert dict_span_tree([]) == {}

    def test_fragment_from_trace_truncates(self):
        trace = front_trace(workers=(0, 1))
        fragment = fragment_from_trace(trace, 3, 999, max_spans=2)
        assert fragment["worker"] == 3
        assert fragment["pid"] == 999
        assert fragment["truncated"] is True
        assert len(fragment["spans"]) == 2
        assert fragment["spans"][0]["name"] == "request"

    def test_thread_local_capture_isolated_per_thread(self):
        capture = ThreadLocalTraceCapture()
        capture(front_trace("1" * 32, workers=()))
        seen_in_thread: list = []

        def other():
            seen_in_thread.append(capture.take())

        thread = threading.Thread(target=other)
        thread.start()
        thread.join()
        assert seen_in_thread == [None]  # other thread sees nothing
        taken = capture.take()
        assert taken is not None and taken.trace_id == "1" * 32
        assert capture.take() is None  # consumed
