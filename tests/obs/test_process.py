"""Tests for the process-level resource collectors."""

from __future__ import annotations

import time

from repro.obs import ProcessCollector, rss_bytes
from repro.obs.metrics import MetricsRegistry


class TestRssBytes:
    def test_positive_and_plausible(self):
        rss = rss_bytes()
        # a running CPython interpreter needs at least a few MB and fits
        # in a TB — catches unit mistakes (pages vs bytes vs KB)
        assert 1_000_000 < rss < 1_000_000_000_000

    def test_grows_with_allocation(self):
        before = rss_bytes()
        ballast = bytearray(32 * 1024 * 1024)
        after = rss_bytes()
        del ballast
        assert after >= before


class TestProcessCollector:
    def test_snapshot_fields(self):
        collector = ProcessCollector()
        time.sleep(0.01)
        snapshot = collector.snapshot()
        assert snapshot["rss_bytes"] > 0
        assert snapshot["threads"] >= 1
        assert snapshot["uptime_seconds"] > 0.0
        assert snapshot["gc_objects_pending"] >= 0
        assert set(snapshot["gc_collections"]) == {"gen0", "gen1", "gen2"}

    def test_collect_families(self):
        families = {family.name: family for family in ProcessCollector()()}
        assert set(families) == {
            "subdex_process_resident_memory_bytes",
            "subdex_process_gc_collections_total",
            "subdex_process_threads",
            "subdex_process_uptime_seconds",
        }
        assert families["subdex_process_resident_memory_bytes"].kind == "gauge"
        gc_family = families["subdex_process_gc_collections_total"]
        assert gc_family.kind == "counter"
        assert {
            sample.labels["generation"] for sample in gc_family.samples
        } == {"0", "1", "2"}

    def test_registry_integration_renders_prometheus(self):
        registry = MetricsRegistry()
        registry.register_collector(ProcessCollector())
        text = registry.render_prometheus()
        assert "# HELP subdex_process_resident_memory_bytes" in text
        assert "# TYPE subdex_process_uptime_seconds gauge" in text
