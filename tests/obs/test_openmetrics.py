"""OpenMetrics exposition: exemplars, escaping, EOF, parser round-trip."""

from __future__ import annotations

import re

from repro.obs.metrics import (
    Exemplar,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.tracing import Span, Trace
from repro.perf.spanstats import SpanStatsSink
from repro.slo import SLOTracker

TRACE_ID = "c0ffee" + "0" * 26


# -- a minimal OpenMetrics line parser, used to validate real scrapes ---------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*?)\})?"
    r" (?P<value>[^ #]+)"
    r"(?: # \{(?P<exlabels>.*?)\} (?P<exvalue>[^ ]+)(?: (?P<exts>[^ ]+))?)?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (
        value.replace(r"\"", '"').replace(r"\n", "\n").replace(r"\\", "\\")
    )


def _parse_labels(raw: str | None) -> dict[str, str]:
    if not raw:
        return {}
    return {name: _unescape(value) for name, value in _LABEL_RE.findall(raw)}


def parse_openmetrics(text: str):
    """Parse an OpenMetrics exposition into (samples, types).

    Samples are ``(name, labels, value, exemplar-or-None)`` tuples where
    an exemplar is ``(labels, value)``.  Asserts structural validity:
    mandatory ``# EOF`` terminator and parseable sample lines.
    """
    assert text.endswith("\n# EOF\n"), "missing OpenMetrics EOF terminator"
    samples = []
    types: dict[str, str] = {}
    for line in text.splitlines():
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            __, __, name, kind = line.split(" ", 3)
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # HELP
        match = _SAMPLE_RE.match(line)
        assert match is not None, f"unparseable sample line: {line!r}"
        exemplar = None
        if match.group("exlabels") is not None:
            exemplar = (
                _parse_labels(match.group("exlabels")),
                float(match.group("exvalue")),
            )
        samples.append(
            (
                match.group("name"),
                _parse_labels(match.group("labels")),
                float(match.group("value")),
                exemplar,
            )
        )
    return samples, types


def make_trace(name="engine.maps", duration_s=0.03, trace_id=TRACE_ID):
    span = Span(name, trace_id, "root", None, {})
    span.end = span.start + duration_s
    return Trace(trace_id, (span,))


class TestExemplarRendering:
    def test_render_with_and_without_timestamp(self):
        bare = Exemplar({"trace_id": "abc"}, 0.093)
        assert bare.render() == '# {trace_id="abc"} 0.093'
        stamped = Exemplar({"trace_id": "abc"}, 0.093, 1690000000.1234)
        assert stamped.render() == '# {trace_id="abc"} 0.093 1690000000.123'

    def test_label_values_escaped(self):
        exemplar = Exemplar({"trace_id": 'a"b\\c\nd'}, 1.0)
        assert exemplar.render() == '# {trace_id="a\\"b\\\\c\\nd"} 1'

    def test_exemplars_only_on_bucket_lines(self):
        family = MetricFamily("subdex_x_seconds", "histogram")
        exemplar = Exemplar({"trace_id": "t1"}, 0.5)
        family.add(3, suffix="_bucket", exemplar=exemplar, le="1")
        family.add(0.7, suffix="_sum", exemplar=exemplar)  # must not render
        family.add(3, suffix="_count", exemplar=exemplar)  # must not render
        text = family.render(openmetrics=True)
        lines = text.splitlines()
        assert 'subdex_x_seconds_bucket{le="1"} 3 # {trace_id="t1"} 0.5' in lines
        assert "subdex_x_seconds_sum 0.7" in lines
        assert "subdex_x_seconds_count 3" in lines
        assert text.count("# {") == 1

    def test_classic_rendering_never_carries_exemplars(self):
        family = MetricFamily("subdex_x_seconds", "histogram")
        family.add(
            3, suffix="_bucket", exemplar=Exemplar({"trace_id": "t1"}, 0.5),
            le="1",
        )
        assert "# {" not in family.render()  # openmetrics=False default


class TestRegistryRenderings:
    def make_registry(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "subdex_events_total", "Events.", labelnames=("event",)
        )
        counter.inc(event='weird "value"\nwith\\escapes')
        histogram = registry.histogram(
            "subdex_latency_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        return registry

    def test_openmetrics_has_eof_and_prometheus_does_not(self):
        registry = self.make_registry()
        openmetrics = registry.render_openmetrics()
        classic = registry.render_prometheus()
        assert openmetrics.endswith("\n# EOF\n")
        assert "# EOF" not in classic
        # bodies agree when no exemplars are present
        assert openmetrics == classic.rstrip("\n") + "\n# EOF\n"

    def test_parser_round_trip_with_escaped_labels(self):
        samples, types = parse_openmetrics(
            self.make_registry().render_openmetrics()
        )
        assert types["subdex_events_total"] == "counter"
        assert types["subdex_latency_seconds"] == "histogram"
        by_name: dict[str, list] = {}
        for name, labels, value, exemplar in samples:
            by_name.setdefault(name, []).append((labels, value, exemplar))
        ((labels, value, __),) = by_name["subdex_events_total"]
        assert labels == {"event": 'weird "value"\nwith\\escapes'}
        assert value == 1.0
        buckets = [
            (labels["le"], value)
            for labels, value, __ in by_name["subdex_latency_seconds_bucket"]
        ]
        assert buckets == [("0.1", 1.0), ("1", 1.0), ("+Inf", 1.0)]


class TestSpanStatsExemplars:
    def test_bucket_exemplars_carry_trace_ids(self):
        sink = SpanStatsSink()
        sink(make_trace(duration_s=0.03, trace_id="1" * 32))
        sink(make_trace(duration_s=0.3, trace_id="2" * 32))
        registry = MetricsRegistry()
        registry.register_collector(sink.collect)
        samples, __ = parse_openmetrics(registry.render_openmetrics())
        exemplars = {
            labels["le"]: exemplar
            for name, labels, __, exemplar in samples
            if name == "subdex_span_seconds_bucket" and exemplar is not None
        }
        assert exemplars, "no exemplars on span histogram buckets"
        trace_ids = {labels["trace_id"] for labels, __ in exemplars.values()}
        assert trace_ids == {"1" * 32, "2" * 32}
        for labels, value in exemplars.values():
            assert set(labels) == {"trace_id"}
            assert value > 0.0

    def test_non_bucket_samples_have_no_exemplars(self):
        sink = SpanStatsSink()
        sink(make_trace())
        registry = MetricsRegistry()
        registry.register_collector(sink.collect)
        for name, __, __, exemplar in parse_openmetrics(
            registry.render_openmetrics()
        )[0]:
            if not name.endswith("_bucket"):
                assert exemplar is None, name


class TestSLOExemplars:
    def test_ingest_records_bucket_exemplars(self):
        tracker = SLOTracker()
        tracker.ingest(
            "GET /sessions/{id}/maps", 200, 0.02, trace_id="a" * 32
        )
        tracker.ingest(
            "GET /sessions/{id}/maps", 200, 0.02
        )  # untraced: no exemplar churn
        registry = MetricsRegistry()
        registry.register_collector(tracker.collect)
        samples, __ = parse_openmetrics(registry.render_openmetrics())
        exemplars = [
            exemplar
            for name, __, __, exemplar in samples
            if name == "subdex_slo_request_seconds_bucket"
            and exemplar is not None
        ]
        assert len(exemplars) == 1
        labels, value = exemplars[0]
        assert labels == {"trace_id": "a" * 32}
        assert value == 0.02

    def test_burn_events_carry_notable_trace_ids(self):
        events: list[dict] = []
        tracker = SLOTracker(on_event=events.append)
        # errors with trace ids: notable, and enough to trip the fast window
        for i in range(300):
            tracker.ingest(
                "GET /sessions/{id}/maps", 500, 0.01,
                trace_id=f"{i:032x}",
            )
        assert events, "expected a burn-rate event"
        exemplars = events[0]["exemplars"]
        assert 0 < len(exemplars) <= 8
        assert all(re.fullmatch(r"[0-9a-f]{32}", t) for t in exemplars)
        assert exemplars == events[0]["exemplars"][-len(exemplars):]
        assert tracker.recent_events()[0]["exemplars"] == exemplars
