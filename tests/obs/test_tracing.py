"""Tracing core: span nesting, propagation, and the disabled fast path."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.tracing import (
    Trace,
    Tracer,
    activate,
    current_context,
    current_trace_id,
    current_trace_partial,
    span_tree,
)
from repro.obs.tracing import _NOOP  # noqa: PLC2701 - the shared no-op


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


@pytest.fixture
def sink(tracer):
    traces: list[Trace] = []
    tracer.add_sink(traces.append)
    return traces


class TestSpanLifecycle:
    def test_root_span_delivers_a_trace(self, tracer, sink):
        with tracer.span("request", method="GET") as root:
            root.set(status=200)
        assert len(sink) == 1
        trace = sink[0]
        assert trace.root.name == "request"
        assert trace.root.attributes == {"method": "GET", "status": 200}
        assert trace.root.parent_id is None
        assert trace.duration_ms >= 0.0

    def test_children_nest_under_the_root(self, tracer, sink):
        with tracer.span("request"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("sibling"):
                pass
        (trace,) = sink
        assert [s.name for s in trace.spans] == [
            "request", "inner", "leaf", "sibling",
        ]
        by_name = {s.name: s for s in trace.spans}
        assert by_name["inner"].parent_id == by_name["request"].span_id
        assert by_name["leaf"].parent_id == by_name["inner"].span_id
        assert by_name["sibling"].parent_id == by_name["request"].span_id
        assert len({s.trace_id for s in trace.spans}) == 1

    def test_tree_nests_and_orders_by_start(self, tracer, sink):
        with tracer.span("request"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        tree = sink[0].tree()
        assert tree["name"] == "request"
        assert [c["name"] for c in tree["children"]] == ["a", "b"]

    def test_exception_marks_span_error(self, tracer, sink):
        with pytest.raises(ValueError):
            with tracer.span("request"):
                raise ValueError("boom")
        assert sink[0].root.status == "error"
        assert sink[0].root.attributes["error"] == "ValueError"

    def test_trace_id_seed_is_adopted(self, tracer, sink):
        with tracer.span("request", trace_id="cafe0123deadbeef"):
            assert current_trace_id() == "cafe0123deadbeef"
        assert sink[0].trace_id == "cafe0123deadbeef"

    def test_contextvar_is_reset_after_the_root_exits(self, tracer, sink):
        with tracer.span("request"):
            assert current_context() is not None
        assert current_context() is None
        assert current_trace_id() is None


class TestDisabledPath:
    def test_disabled_tracer_hands_out_the_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("request") is _NOOP

    def test_noop_span_accepts_attributes(self):
        tracer = Tracer(enabled=False)
        with tracer.span("request") as sp:
            assert sp.set(anything=1) is sp

    def test_disabled_tracer_records_no_traces(self):
        tracer = Tracer(enabled=False)
        seen: list[Trace] = []
        tracer.add_sink(seen.append)
        with tracer.span("request"):
            with tracer.span("child"):
                pass
        assert seen == []
        assert tracer.traces_recorded == 0

    def test_reconfigure_flips_the_path(self, sink, tracer):
        tracer.configure(False)
        with tracer.span("off"):
            pass
        tracer.configure(True)
        with tracer.span("on"):
            pass
        assert [t.root.name for t in sink] == ["on"]


class TestThreadPropagation:
    def test_pool_workers_join_the_trace_via_activate(self, tracer, sink):
        n_workers = 8
        barrier = threading.Barrier(n_workers)

        def work(i: int, ctx) -> None:
            with activate(ctx):
                barrier.wait(timeout=10)
                with tracer.span("worker", index=i):
                    pass

        with tracer.span("request"):
            ctx = current_context()
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                futures = [
                    pool.submit(work, i, ctx) for i in range(n_workers)
                ]
                for future in futures:
                    future.result()
        (trace,) = sink
        workers = [s for s in trace.spans if s.name == "worker"]
        assert len(workers) == n_workers
        assert sorted(s.attributes["index"] for s in workers) == list(
            range(n_workers)
        )
        root_id = trace.root.span_id
        assert all(s.parent_id == root_id for s in workers)

    def test_worker_context_does_not_leak_into_the_pool_thread(self, tracer):
        with ThreadPoolExecutor(max_workers=1) as pool:
            with tracer.span("request"):
                ctx = current_context()

                def traced() -> None:
                    with activate(ctx):
                        with tracer.span("worker"):
                            pass

                pool.submit(traced).result()
                # same thread, after activate() exits: no ambient trace
                assert pool.submit(current_context).result() is None

    def test_concurrent_roots_stay_separate(self, tracer, sink):
        n_threads = 8
        barrier = threading.Barrier(n_threads)

        def request(i: int) -> None:
            barrier.wait(timeout=10)
            with tracer.span("request", index=i):
                with tracer.span("child", index=i):
                    pass

        threads = [
            threading.Thread(target=request, args=(i,))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(sink) == n_threads
        for trace in sink:
            assert len(trace.spans) == 2
            root, child = trace.spans
            assert root.attributes["index"] == child.attributes["index"]
        assert len({t.trace_id for t in sink}) == n_threads

    def test_activate_none_is_a_no_op(self, tracer):
        with activate(None):
            assert current_context() is None


class TestPartialSnapshots:
    def test_partial_includes_open_ancestors(self, tracer):
        with tracer.span("request"):
            with tracer.span("finished"):
                pass
            with tracer.span("open"):
                partial = current_trace_partial()
        tree = partial["spans"]
        assert tree["name"] == "request"
        names = {c["name"] for c in tree["children"]}
        assert names == {"finished", "open"}

    def test_partial_without_a_trace_is_none(self):
        assert current_trace_partial() is None

    def test_span_tree_attaches_orphans_to_the_root(self, tracer, sink):
        with tracer.span("request"):
            with tracer.span("middle"):
                with tracer.span("leaf"):
                    pass
        spans = sink[0].spans
        # drop the middle span: the leaf's parent is now unknown
        partial = [s for s in spans if s.name != "middle"]
        tree = span_tree(partial)
        assert [c["name"] for c in tree["children"]] == ["leaf"]


class TestSinkSafety:
    def test_sink_exceptions_are_swallowed_and_counted(self, tracer):
        def broken(trace: Trace) -> None:
            raise RuntimeError("sink down")

        good: list[Trace] = []
        tracer.add_sink(broken)
        tracer.add_sink(good.append)
        with tracer.span("request"):
            pass
        assert len(good) == 1
        assert tracer.sink_errors == 1
        assert tracer.traces_recorded == 1

    def test_remove_sink(self, tracer, sink):
        tracer.remove_sink(sink.append)
        tracer.clear_sinks()
        with tracer.span("request"):
            pass
        assert sink == []
