"""Trace sinks: ring buffer eviction, JSONL durability, slow-trace log."""

from __future__ import annotations

import json
import logging
import time

import pytest

from repro.obs.sinks import (
    JsonlTraceSink,
    SlowTraceLog,
    TraceRingBuffer,
    render_tree,
)
from repro.obs.tracing import Tracer


def make_trace(tracer=None, name="request", sleep_seconds=0.0, **attributes):
    """Run one root span through ``tracer`` and return the finished trace."""
    tracer = tracer or Tracer(enabled=True)
    captured = []
    tracer.add_sink(captured.append)
    with tracer.span(name, **attributes):
        if sleep_seconds:
            time.sleep(sleep_seconds)
    tracer.remove_sink(captured.append)
    return captured[0]


class TestTraceRingBuffer:
    def test_keeps_only_the_most_recent(self):
        ring = TraceRingBuffer(capacity=3)
        tracer = Tracer(enabled=True)
        tracer.add_sink(ring)
        for i in range(5):
            with tracer.span("request", index=i):
                pass
        assert len(ring) == 3
        assert ring.total_recorded == 5
        indices = [
            t["spans"][0]["attributes"]["index"] for t in ring.snapshot()
        ]
        assert indices == [4, 3, 2]  # most recent first

    def test_min_ms_filter(self):
        ring = TraceRingBuffer()
        ring(make_trace(name="fast"))
        ring(make_trace(name="slow", sleep_seconds=0.02))
        slow_only = ring.snapshot(min_ms=15.0)
        assert [t["name"] for t in slow_only] == ["slow"]
        assert len(ring.snapshot()) == 2

    def test_limit(self):
        ring = TraceRingBuffer()
        for _ in range(4):
            ring(make_trace())
        assert len(ring.snapshot(limit=2)) == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceRingBuffer(capacity=0)

    def test_clear(self):
        ring = TraceRingBuffer()
        ring(make_trace())
        ring.clear()
        assert len(ring) == 0
        assert ring.total_recorded == 1  # the counter is cumulative


class TestJsonlTraceSink:
    def test_writes_one_parseable_line_per_trace(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        sink = JsonlTraceSink(str(path))
        tracer = Tracer(enabled=True)
        tracer.add_sink(sink)
        with tracer.span("request", route="GET /health"):
            with tracer.span("child"):
                pass
        with tracer.span("request", route="GET /metrics"):
            pass
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert sink.traces_written == 2
        first = json.loads(lines[0])
        assert first["name"] == "request"
        assert first["n_spans"] == 2
        assert first["spans"][0]["attributes"]["route"] == "GET /health"

    def test_lazy_open_creates_no_file_until_a_trace(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        JsonlTraceSink(str(path))
        assert not path.exists()

    def test_close_is_idempotent_and_reopens_on_demand(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        sink = JsonlTraceSink(str(path))
        sink(make_trace())
        sink.close()
        sink.close()
        sink(make_trace())  # reopens in append mode
        sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_unwritable_path_does_not_break_the_tracer(self, tmp_path):
        tracer = Tracer(enabled=True)
        tracer.add_sink(JsonlTraceSink(str(tmp_path / "no" / "dir.jsonl")))
        with tracer.span("request"):
            pass
        assert tracer.sink_errors == 1
        assert tracer.traces_recorded == 1


class TestRingBudgets:
    def make_fat_trace(self, padding=2048, **attributes):
        return make_trace(payload="x" * padding, **attributes)

    def test_byte_budget_evicts_oldest(self):
        one = self.make_fat_trace()
        one_size = len(json.dumps(one.to_dict(), default=str))
        ring = TraceRingBuffer(capacity=100, max_bytes=3 * one_size)
        for i in range(10):
            ring(self.make_fat_trace(index=i))
        assert len(ring) < 10
        assert ring.stored_bytes <= 3 * one_size
        assert ring.traces_evicted_bytes >= 1
        # newest survives, oldest went first
        indices = [
            t["spans"][0]["attributes"]["index"] for t in ring.snapshot()
        ]
        assert indices[0] == 9
        assert indices == sorted(indices, reverse=True)

    def test_byte_budget_never_empties_the_ring(self):
        ring = TraceRingBuffer(capacity=10, max_bytes=1)
        ring(self.make_fat_trace())
        assert len(ring) == 1  # a single over-budget trace is kept

    def test_span_truncation_marks_snapshot(self):
        ring = TraceRingBuffer(max_spans_per_trace=3)
        tracer = Tracer(enabled=True)
        tracer.add_sink(ring)
        with tracer.span("request"):
            for i in range(6):
                with tracer.span("phase.scan", index=i):
                    pass
        (snap,) = ring.snapshot()
        assert snap["truncated"] is True
        assert len(snap["spans"]) == 3
        assert snap["spans"][0]["name"] == "request"  # root kept
        assert ring.traces_truncated == 1

    def test_untruncated_snapshot_has_no_marker(self):
        ring = TraceRingBuffer(max_spans_per_trace=8)
        ring(make_trace())
        (snap,) = ring.snapshot()
        assert "truncated" not in snap
        assert ring.traces_truncated == 0

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="max_bytes"):
            TraceRingBuffer(max_bytes=0)
        with pytest.raises(ValueError, match="max_spans_per_trace"):
            TraceRingBuffer(max_spans_per_trace=0)


class TestJsonlRotation:
    def fill(self, sink, n, padding=512):
        for _ in range(n):
            sink(make_trace(payload="x" * padding))

    def test_rotation_shifts_generations(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        # ~600-byte lines, 1 KiB budget → rotate roughly every other trace
        sink = JsonlTraceSink(str(path), max_mb=1024 / (1024 * 1024))
        self.fill(sink, 12)
        sink.close()
        assert sink.rotations >= 3
        assert path.exists()
        for gen in (1, 2, 3):
            assert (tmp_path / f"trace.jsonl.{gen}").exists()
        assert not (tmp_path / "trace.jsonl.4").exists()  # oldest deleted
        # every surviving line is intact JSON: rotation never splits a line
        total = 0
        for name in ("trace.jsonl", "trace.jsonl.1", "trace.jsonl.2",
                     "trace.jsonl.3"):
            for line in (tmp_path / name).read_text().splitlines():
                json.loads(line)
                total += 1
        assert total <= 12
        assert sink.traces_written == 12

    def test_no_rotation_without_budget(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path))
        self.fill(sink, 20)
        sink.close()
        assert sink.rotations == 0
        assert not (tmp_path / "trace.jsonl.1").exists()
        assert len(path.read_text().splitlines()) == 20

    def test_budget_counts_preexisting_bytes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("x" * 900 + "\n")  # from a previous process
        sink = JsonlTraceSink(str(path), max_mb=1024 / (1024 * 1024))
        self.fill(sink, 1)
        sink.close()
        assert sink.rotations == 1  # rotated before the first write
        assert (tmp_path / "trace.jsonl.1").read_text().startswith("x")

    def test_single_oversized_line_still_written(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path), max_mb=1 / (1024 * 1024))  # 1 byte
        self.fill(sink, 1)
        sink.close()
        assert len(path.read_text().splitlines()) == 1  # never dropped

    def test_parameter_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_mb"):
            JsonlTraceSink(str(tmp_path / "t.jsonl"), max_mb=0)
        with pytest.raises(ValueError, match="generations"):
            JsonlTraceSink(str(tmp_path / "t.jsonl"), generations=0)


class TestSlowTraceLog:
    def test_slow_traces_logged_with_tree(self, caplog):
        sink = SlowTraceLog(threshold_ms=0.0, logger=logging.getLogger("t"))
        with caplog.at_level(logging.WARNING, logger="t"):
            sink(make_trace(route="GET /metrics"))
        assert sink.slow_traces == 1
        assert "slow request" in caplog.text
        assert "route=GET /metrics" in caplog.text

    def test_fast_traces_skipped(self, caplog):
        sink = SlowTraceLog(threshold_ms=60_000.0)
        with caplog.at_level(logging.WARNING):
            sink(make_trace())
        assert sink.slow_traces == 0
        assert caplog.text == ""

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold_ms"):
            SlowTraceLog(threshold_ms=-1.0)

    def test_rate_and_burst_validation(self):
        with pytest.raises(ValueError, match="rate_per_second"):
            SlowTraceLog(threshold_ms=0.0, rate_per_second=0.0)
        with pytest.raises(ValueError, match="burst"):
            SlowTraceLog(threshold_ms=0.0, burst=0)

    def test_token_bucket_suppresses_floods_per_operation(self, caplog):
        clock = FakeClock()
        sink = SlowTraceLog(
            threshold_ms=0.0,
            logger=logging.getLogger("t.bucket"),
            rate_per_second=1.0,
            burst=2,
            clock=clock,
        )
        trace = make_trace(route="GET /slow")
        with caplog.at_level(logging.WARNING, logger="t.bucket"):
            for _ in range(10):
                sink(trace)
        assert sink.slow_traces == 10
        assert sink.suppressed_total == 8  # burst of 2 logged, rest counted
        assert len(caplog.records) == 2

    def test_suppressed_count_reported_on_next_permitted_log(self, caplog):
        clock = FakeClock()
        sink = SlowTraceLog(
            threshold_ms=0.0,
            logger=logging.getLogger("t.suppressed"),
            rate_per_second=1.0,
            burst=1,
            clock=clock,
        )
        trace = make_trace(route="GET /slow")
        with caplog.at_level(logging.WARNING, logger="t.suppressed"):
            sink(trace)  # logs (bucket starts full)
            sink(trace)  # suppressed
            sink(trace)  # suppressed
            clock.advance(5.0)  # refill
            sink(trace)  # logs again, carrying the count
        assert len(caplog.records) == 2
        assert "suppressed=" not in caplog.records[0].getMessage()
        assert "suppressed=2" in caplog.records[1].getMessage()

    def test_distinct_operations_have_independent_buckets(self, caplog):
        clock = FakeClock()
        sink = SlowTraceLog(
            threshold_ms=0.0,
            logger=logging.getLogger("t.ops"),
            rate_per_second=0.001,
            burst=1,
            clock=clock,
        )
        with caplog.at_level(logging.WARNING, logger="t.ops"):
            sink(make_trace(route="GET /a"))
            sink(make_trace(route="GET /a"))  # suppressed
            sink(make_trace(route="GET /b"))  # fresh bucket → logs
        assert len(caplog.records) == 2
        assert sink.suppressed_total == 1

    def test_operation_falls_back_to_root_name_without_route(self, caplog):
        clock = FakeClock()
        sink = SlowTraceLog(
            threshold_ms=0.0,
            logger=logging.getLogger("t.name"),
            rate_per_second=0.001,
            burst=1,
            clock=clock,
        )
        with caplog.at_level(logging.WARNING, logger="t.name"):
            sink(make_trace(name="op_a"))
            sink(make_trace(name="op_a"))  # same key → suppressed
            sink(make_trace(name="op_b"))  # different key → logs
        assert len(caplog.records) == 2


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class TestRenderTree:
    def test_renders_one_line_per_span(self):
        trace = make_trace()
        text = render_tree(trace.tree())
        assert text.startswith("request ")
        assert "ms" in text

    def test_children_indent_and_errors_flag(self):
        node = {
            "name": "request",
            "duration_ms": 12.0,
            "status": "ok",
            "attributes": {},
            "children": [
                {
                    "name": "child",
                    "duration_ms": 3.0,
                    "status": "error",
                    "attributes": {"error": "ValueError"},
                    "children": [],
                }
            ],
        }
        lines = render_tree(node).splitlines()
        assert lines[0] == "request 12.0ms"
        assert lines[1] == "  child 3.0ms [error] error=ValueError"
