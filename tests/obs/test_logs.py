"""Log formatters and setup: trace correlation, JSON lines, idempotence."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.logs import JsonLogFormatter, TextLogFormatter, setup_logging
from repro.obs.tracing import Tracer


def make_record(message="hello", level=logging.INFO, **extra):
    record = logging.LogRecord(
        "repro.test", level, __file__, 1, message, (), None
    )
    for key, value in extra.items():
        setattr(record, key, value)
    return record


class TestTextLogFormatter:
    def test_basic_line(self):
        text = TextLogFormatter().format(make_record())
        assert "INFO repro.test: hello" in text
        assert "trace=" not in text

    def test_ambient_trace_id_is_appended(self):
        tracer = Tracer(enabled=True)
        with tracer.span("request", trace_id="feedface00000000"):
            text = TextLogFormatter().format(make_record())
        assert text.endswith("trace=feedface00000000")

    def test_explicit_trace_id_wins(self):
        record = make_record(trace_id="cafe")
        assert TextLogFormatter().format(record).endswith("trace=cafe")


class TestJsonLogFormatter:
    def test_fields(self):
        payload = json.loads(JsonLogFormatter().format(make_record()))
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro.test"
        assert payload["message"] == "hello"
        assert "trace_id" not in payload

    def test_trace_id_included_under_a_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("request", trace_id="feedface00000000"):
            payload = json.loads(JsonLogFormatter().format(make_record()))
        assert payload["trace_id"] == "feedface00000000"

    def test_extra_attributes_survive(self):
        record = make_record(dataset="yelp", rows=42)
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["dataset"] == "yelp"
        assert payload["rows"] == 42

    def test_unserialisable_extra_falls_back_to_repr(self):
        record = make_record(weird={1, 2})
        payload = json.loads(JsonLogFormatter().format(record))
        assert "weird" in payload and isinstance(payload["weird"], str)

    def test_exception_is_formatted(self):
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            import sys

            record = logging.LogRecord(
                "repro.test", logging.ERROR, __file__, 1, "failed", (),
                sys.exc_info(),
            )
        payload = json.loads(JsonLogFormatter().format(record))
        assert "RuntimeError: boom" in payload["exception"]


class TestSetupLogging:
    def test_configures_the_repro_logger_only(self):
        stream = io.StringIO()
        logger = setup_logging(level="debug", fmt="text", stream=stream)
        try:
            assert logger.name == "repro"
            assert not logger.propagate
            logging.getLogger("repro.test").debug("visible")
            assert "visible" in stream.getvalue()
        finally:
            setup_logging(level="warning", stream=io.StringIO())

    def test_idempotent_no_handler_stacking(self):
        stream = io.StringIO()
        setup_logging(stream=io.StringIO())
        logger = setup_logging(stream=stream)
        try:
            assert len(logger.handlers) == 1
            logging.getLogger("repro.test").info("once")
            assert stream.getvalue().count("once") == 1
        finally:
            setup_logging(level="warning", stream=io.StringIO())

    def test_json_format_produces_json_lines(self):
        stream = io.StringIO()
        setup_logging(fmt="json", stream=stream)
        try:
            logging.getLogger("repro.test").info("structured")
            payload = json.loads(stream.getvalue())
            assert payload["message"] == "structured"
        finally:
            setup_logging(level="warning", stream=io.StringIO())

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="unknown log level"):
            setup_logging(level="loud")
        with pytest.raises(ValueError, match="unknown log format"):
            setup_logging(fmt="xml")
