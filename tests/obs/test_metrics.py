"""Metrics registry: instruments, collectors, and both renderings."""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    escape_label_value,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("subdex_test_total", labelnames=("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3
        assert counter.value(kind="b") == 1
        assert counter.value(kind="never") == 0

    def test_counters_only_go_up(self, registry):
        counter = registry.counter("subdex_test_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_wrong_labels_rejected(self, registry):
        counter = registry.counter("subdex_test_total", labelnames=("kind",))
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc(other="x")

    def test_get_or_create_returns_the_same_instrument(self, registry):
        a = registry.counter("subdex_test_total", labelnames=("kind",))
        b = registry.counter("subdex_test_total", labelnames=("kind",))
        assert a is b

    def test_type_conflict_rejected(self, registry):
        registry.counter("subdex_test_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("subdex_test_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("subdex_test_total", labelnames=("kind",))

    def test_invalid_names_rejected(self, registry):
        for bad in ("", "9lives", "has-dash", "has space"):
            with pytest.raises(ValueError, match="invalid metric name"):
                registry.counter(bad)

    def test_concurrent_increments_are_exact(self, registry):
        counter = registry.counter("subdex_test_total")
        with ThreadPoolExecutor(max_workers=8) as pool:
            for future in [
                pool.submit(lambda: [counter.inc() for _ in range(500)])
                for _ in range(8)
            ]:
                future.result()
        assert counter.value() == 4000


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("subdex_live")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6


class TestHistogram:
    def test_cumulative_buckets(self, registry):
        histogram = registry.histogram(
            "subdex_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.7, 5.0, 50.0):
            histogram.observe(value)
        counts = histogram.bucket_counts()
        assert counts == {"0.1": 1, "1": 3, "10": 4, "+Inf": 5}

    def test_boundary_lands_in_its_bucket(self, registry):
        # le is inclusive: an observation equal to a bound counts in it
        histogram = registry.histogram("subdex_seconds", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        assert histogram.bucket_counts() == {"1": 1, "2": 1, "+Inf": 1}

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("subdex_seconds", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("subdex_seconds", buckets=(float("inf"),))

    def test_default_buckets_cover_latency_range(self, registry):
        histogram = registry.histogram("subdex_seconds")
        assert histogram.buckets == DEFAULT_LATENCY_BUCKETS

    def test_sum_and_count_render(self, registry):
        histogram = registry.histogram(
            "subdex_seconds", labelnames=("route",), buckets=(1.0,)
        )
        histogram.observe(0.5, route="/health")
        histogram.observe(2.5, route="/health")
        text = registry.render_prometheus()
        assert 'subdex_seconds_bucket{route="/health",le="1"} 1' in text
        assert 'subdex_seconds_bucket{route="/health",le="+Inf"} 2' in text
        assert 'subdex_seconds_sum{route="/health"} 3' in text
        assert 'subdex_seconds_count{route="/health"} 2' in text


class TestPrometheusRendering:
    def test_help_and_type_lines(self, registry):
        registry.counter("subdex_requests_total", "Requests served.")
        registry.gauge("subdex_live", "Live sessions.")
        registry.histogram("subdex_seconds", "Latency.")
        text = registry.render_prometheus()
        assert "# HELP subdex_requests_total Requests served." in text
        assert "# TYPE subdex_requests_total counter" in text
        assert "# TYPE subdex_live gauge" in text
        assert "# TYPE subdex_seconds histogram" in text
        assert text.endswith("\n")

    def test_label_escaping(self, registry):
        counter = registry.counter("subdex_test_total", labelnames=("value",))
        counter.inc(value='a"b\\c\nd')
        text = registry.render_prometheus()
        assert r'value="a\"b\\c\nd"' in text

    def test_escape_label_value(self):
        assert escape_label_value('say "hi"\n') == r'say \"hi\"\n'
        assert escape_label_value("back\\slash") == r"back\\slash"

    def test_families_sorted_by_name(self, registry):
        registry.counter("subdex_z_total")
        registry.counter("subdex_a_total")
        names = [family.name for family in registry.collect()]
        assert names == sorted(names)


class TestCollectors:
    def test_collector_families_are_merged(self, registry):
        def collector():
            family = MetricFamily("subdex_external", "gauge", "External.")
            family.add(7, kind="x")
            return [family]

        registry.register_collector(collector)
        text = registry.render_prometheus()
        assert 'subdex_external{kind="x"} 7' in text

    def test_broken_collector_is_skipped(self, registry):
        registry.counter("subdex_ok_total").inc()

        def broken():
            raise RuntimeError("scrape-time failure")

        registry.register_collector(broken)
        text = registry.render_prometheus()
        assert "subdex_ok_total 1" in text


class TestJsonRendering:
    def test_to_dict_is_json_safe(self, registry):
        counter = registry.counter("subdex_test_total", labelnames=("kind",))
        counter.inc(kind="a")
        registry.histogram("subdex_seconds", buckets=(1.0,)).observe(0.5)
        payload = registry.to_dict()
        encoded = json.dumps(payload)
        decoded = json.loads(encoded)
        assert decoded["subdex_test_total"]["type"] == "counter"
        assert decoded["subdex_test_total"]["samples"][
            'subdex_test_total{kind="a"}'
        ] == 1
