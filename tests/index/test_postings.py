"""Posting lists: row sets identical to naive scans, LRU + stats behave."""

from __future__ import annotations

import threading

import numpy as np

from repro.index.postings import PostingListStore
from repro.model.database import Side
from repro.model.groups import AVPair, RatingGroup, SelectionCriteria


def _some_criteria(db):
    """A spread of criteria: root, single-pair, cross-side, multi-valued."""
    yield SelectionCriteria.root()
    for side, attr in sorted(db.grouping_attributes(), key=lambda p: (p[0].value, p[1])):
        values = db.entity_table(side).column(attr).distinct_values()
        if values:
            yield SelectionCriteria((AVPair(side, attr, values[0]),))
    yield SelectionCriteria.of(reviewer={"gender": "F"}, item={"city": "NYC"})


def test_rows_match_naive_scan(clean_db, sparse_db):
    for db in (clean_db, sparse_db):
        store = PostingListStore(db)
        for criteria in _some_criteria(db):
            naive = RatingGroup(db, criteria)
            np.testing.assert_array_equal(store.rows_for(criteria), naive.rows)
            assert store.entity_count(Side.REVIEWER, criteria) == naive.n_reviewers
            assert store.entity_count(Side.ITEM, criteria) == naive.n_items


def test_hits_and_misses_counted(clean_db):
    store = PostingListStore(clean_db)
    criteria = SelectionCriteria.of(reviewer={"gender": "M"})
    store.rows_for(criteria)
    before = store.stats()
    store.rows_for(criteria)
    after = store.stats()
    assert after["hits"] > before["hits"]
    assert after["builds"] == before["builds"]


def test_eviction_under_tiny_budget_stays_exact(clean_db):
    store = PostingListStore(clean_db, memory_budget_bytes=256)
    criteria = list(_some_criteria(clean_db))
    for c in criteria:
        np.testing.assert_array_equal(
            store.rows_for(c), RatingGroup(clean_db, c).rows
        )
    stats = store.stats()
    assert stats["evictions"] > 0
    assert stats["bytes"] <= max(256, stats["bytes"])  # bounded modulo one entry
    # evicted entries rebuild correctly
    for c in criteria:
        np.testing.assert_array_equal(
            store.rows_for(c), RatingGroup(clean_db, c).rows
        )


def test_concurrent_misses_build_once(clean_db):
    store = PostingListStore(clean_db)
    pair = AVPair(Side.REVIEWER, "gender", "F")
    barrier = threading.Barrier(8)
    results = []

    def worker():
        barrier.wait()
        results.append(store.get(pair).rating_rows)

    threads = [threading.Thread(target=worker) for __ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert store.stats()["builds"] == 1
    for rows in results[1:]:
        np.testing.assert_array_equal(rows, results[0])
