"""Synthetic databases exercising every shape the index must handle:
missing values, multi-valued attributes, numeric attributes, invalid
scores, and groups that come out empty."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SubjectiveDatabase
from repro.db import Table

CITIES = ["NYC", "Austin", "Detroit", "Reno"]
GENRES = ["Pizza", "Sushi", "Tacos", "Burgers", "Ramen"]


def make_db(
    seed: int = 0,
    n_users: int = 60,
    n_items: int = 25,
    n_ratings: int = 900,
    missing: float = 0.0,
    name: str = "synthetic",
) -> SubjectiveDatabase:
    """A deterministic subjective database with one of every column kind.

    ``missing`` drops that fraction of attribute values (categorical and
    numeric) and empties some multi-valued sets, and also knocks out a few
    ratings scores so the invalid-score path is exercised.
    """
    rng = np.random.default_rng(seed)

    def drop(value):
        return None if missing and rng.random() < missing else value

    users = Table.from_columns(
        {
            "user_id": list(range(n_users)),
            "gender": [drop(str(rng.choice(["M", "F"]))) for __ in range(n_users)],
            "age": [drop(int(rng.integers(18, 80))) for __ in range(n_users)],
            "occupation": [
                drop(str(rng.choice(["student", "artist", "lawyer"])))
                for __ in range(n_users)
            ],
        },
        explorable={"user_id": False},
    )
    items = Table.from_columns(
        {
            "item_id": list(range(n_items)),
            "city": [drop(str(rng.choice(CITIES))) for __ in range(n_items)],
            "cuisine": [
                frozenset()
                if missing and rng.random() < missing
                else frozenset(
                    rng.choice(GENRES, size=int(rng.integers(1, 3)), replace=False)
                )
                for __ in range(n_items)
            ],
            "price": [drop(int(rng.integers(1, 5))) for __ in range(n_items)],
        },
        explorable={"item_id": False},
    )
    overall = rng.integers(1, 6, n_ratings).astype(float)
    food = rng.integers(1, 6, n_ratings).astype(float)
    if missing:
        overall[rng.random(n_ratings) < missing / 2] = np.nan
    ratings = Table.from_columns(
        {
            "user_id": rng.integers(0, n_users, n_ratings).tolist(),
            "item_id": rng.integers(0, n_items, n_ratings).tolist(),
            "overall": overall.tolist(),
            "food": food.tolist(),
        },
        explorable={"user_id": False, "item_id": False},
    )
    return SubjectiveDatabase(
        users, items, ratings, ("overall", "food"), scale=5, name=name
    )


@pytest.fixture(scope="session")
def db_factory():
    """The synthetic-database factory, for tests that vary its knobs."""
    return make_db


@pytest.fixture(scope="session")
def clean_db() -> SubjectiveDatabase:
    return make_db(seed=3, name="clean")


@pytest.fixture(scope="session")
def sparse_db() -> SubjectiveDatabase:
    """Heavy missing values in every column kind plus NaN scores."""
    return make_db(seed=7, missing=0.3, name="sparse")
