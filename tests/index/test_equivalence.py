"""The index is byte-identical to the naive oracle, end to end.

Every test builds two engines over the same database — ``use_index=True``
and ``use_index=False`` — runs the same exploration workload through both,
and asserts the verify-module fingerprints match exactly.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.engine import SubDEx, SubDExConfig
from repro.core.recommend import RecommenderConfig
from repro.exceptions import EmptyGroupError
from repro.index.verify import (
    diff_recommendations,
    diff_results,
    result_fingerprint,
)
from repro.model.database import Side
from repro.model.groups import AVPair, SelectionCriteria


def _engines(db):
    config = SubDExConfig(recommender=RecommenderConfig(max_values_per_attribute=4))
    return (
        SubDEx(db, config),
        SubDEx(db, replace(config, use_index=False)),
    )


@pytest.mark.parametrize(
    "db_kwargs",
    [
        dict(seed=11, n_users=40, n_items=15, n_ratings=400),
        dict(seed=12, n_users=80, n_items=40, n_ratings=2500),
        dict(seed=13, n_users=60, n_items=25, n_ratings=900, missing=0.35),
    ],
    ids=["small", "larger", "missing-heavy"],
)
def test_rating_maps_identical(db_kwargs, db_factory):
    db = db_factory(**db_kwargs)
    fast, naive = _engines(db)
    for criteria in (
        SelectionCriteria.root(),
        SelectionCriteria.of(reviewer={"gender": "F"}),
        SelectionCriteria.of(item={"cuisine": "Pizza"}),  # multi-valued filter
    ):
        diffs = diff_results(
            naive.rating_maps(criteria), fast.rating_maps(criteria)
        )
        assert not diffs, diffs


@pytest.mark.parametrize(
    "db_kwargs",
    [
        dict(seed=21, n_users=40, n_items=15, n_ratings=400),
        dict(seed=22, n_users=60, n_items=25, n_ratings=900, missing=0.35),
    ],
    ids=["clean", "missing-heavy"],
)
def test_recommendations_identical(db_kwargs, db_factory):
    db = db_factory(**db_kwargs)
    fast, naive = _engines(db)
    for criteria in (
        SelectionCriteria.root(),
        SelectionCriteria.of(reviewer={"gender": "M"}),
    ):
        diffs = diff_recommendations(
            naive.recommend(criteria), fast.recommend(criteria)
        )
        assert not diffs, diffs


def test_multi_step_exploration_identical(db_factory):
    db = db_factory(seed=31, n_users=70, n_items=30, n_ratings=1500, missing=0.2)
    fast, naive = _engines(db)
    fast_path = fast.explore_automated(n_steps=4)
    naive_path = naive.explore_automated(n_steps=4)
    assert len(fast_path.steps) == len(naive_path.steps)
    for f_step, n_step in zip(fast_path.steps, naive_path.steps):
        assert f_step.criteria == n_step.criteria
        assert f_step.group_size == n_step.group_size
        assert result_fingerprint(f_step.result) == result_fingerprint(
            n_step.result
        )
        assert [r.operation.target for r in f_step.recommendations] == [
            r.operation.target for r in n_step.recommendations
        ]


def test_empty_groups_behave_identically(clean_db):
    fast, naive = _engines(clean_db)
    nowhere = SelectionCriteria(
        (AVPair(Side.ITEM, "city", "Atlantis"),)  # value outside the domain
    )
    assert len(fast.index.group(nowhere)) == 0
    with pytest.raises(EmptyGroupError):
        fast.session(nowhere)
    with pytest.raises(EmptyGroupError):
        naive.session(nowhere)
    diffs = diff_results(
        naive.rating_maps(nowhere), fast.rating_maps(nowhere)
    )
    assert not diffs, diffs


def test_full_pipeline_preview_mode_identical(db_factory):
    """`preview_uses_full_pipeline` bypasses the index — still identical."""
    db = db_factory(seed=41, n_users=40, n_items=15, n_ratings=400)
    config = SubDExConfig(
        recommender=RecommenderConfig(
            max_values_per_attribute=3, preview_uses_full_pipeline=True
        )
    )
    fast = SubDEx(db, config)
    naive = SubDEx(db, replace(config, use_index=False))
    diffs = diff_recommendations(naive.recommend(), fast.recommend())
    assert not diffs, diffs
