"""IndexedDatabase facade: toggle, stats plumbing, budget fallbacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import SubDEx, SubDExConfig
from repro.core.recommend import RecommenderConfig
from repro.index.facade import IndexedDatabase
from repro.index.verify import diff_recommendations
from repro.model.groups import RatingGroup, SelectionCriteria


def _config(**kwargs):
    return SubDExConfig(
        recommender=RecommenderConfig(max_values_per_attribute=3), **kwargs
    )


def test_use_index_toggle(clean_db):
    assert SubDEx(clean_db, _config()).index is not None
    assert SubDEx(clean_db, _config(use_index=False)).index is None


def test_group_matches_naive(clean_db):
    index = IndexedDatabase(clean_db)
    criteria = SelectionCriteria.of(reviewer={"gender": "F"}, item={"city": "NYC"})
    indexed, naive = index.group(criteria), RatingGroup(clean_db, criteria)
    np.testing.assert_array_equal(indexed.rows, naive.rows)
    assert indexed.n_reviewers == naive.n_reviewers
    assert indexed.n_items == naive.n_items
    assert indexed.criteria == naive.criteria


def test_stats_counters_move_during_recommend(clean_db):
    engine = SubDEx(clean_db, _config())
    stats = engine.index.stats()
    assert stats["candidates_cube"] == 0
    engine.recommend()
    stats = engine.index.stats()
    assert stats["candidates_cube"] > 0
    assert stats["cube_builds"] > 0
    assert stats["cube_bytes"] > 0
    assert stats["postings"]["builds"] > 0
    # every route is exercised on this database: the multi-valued cuisine
    # attribute forces the posting path for its FILTER candidates
    assert stats["candidates_delta"] + stats["candidates_direct"] > 0


def test_zero_cube_budget_falls_back_to_postings_identically(clean_db):
    fast = SubDEx(clean_db, _config())
    fast._index = IndexedDatabase(clean_db, max_cube_cells=0)
    fast.recommender._index = fast._index
    naive = SubDEx(clean_db, _config(use_index=False))
    diffs = diff_recommendations(naive.recommend(), fast.recommend())
    assert not diffs, diffs
    stats = fast.index.stats()
    assert stats["candidates_cube"] == 0
    assert stats["cube_builds"] == 0


def test_index_memory_budget_reaches_posting_store(clean_db):
    engine = SubDEx(clean_db, _config(index_memory_budget_bytes=1024))
    engine.recommend()
    stats = engine.index.stats()["postings"]
    assert stats["budget_bytes"] == 1024
    assert stats["evictions"] > 0


def test_metrics_snapshot_shape(clean_db):
    engine = SubDEx(clean_db, _config())
    engine.recommend()
    stats = engine.index.stats()
    assert {
        "postings",
        "cube_builds",
        "cube_bytes",
        "candidates_cube",
        "candidates_delta",
        "candidates_direct",
    } <= set(stats)
    postings = stats["postings"]
    assert {"entries", "bytes", "hits", "misses", "builds", "hit_rate"} <= set(
        postings
    )
