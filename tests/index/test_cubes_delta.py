"""Cube slices and delta-maintained histograms against direct scans."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rating_maps import enumerate_map_specs
from repro.db.types import ColumnType
from repro.index.cubes import StepSlices, axis_for
from repro.index.delta import (
    delta_counts,
    direct_counts,
    prefer_delta,
    split_rows,
)
from repro.model.database import Side
from repro.model.groups import AVPair, RatingGroup, SelectionCriteria


def _parent_rows(db, seed=0):
    rng = np.random.default_rng(seed)
    mask = rng.random(db.n_ratings) < 0.7
    return np.flatnonzero(mask).astype(np.int64)


@pytest.mark.parametrize("fixture", ["clean_db", "sparse_db"])
def test_group_hist_equals_direct_scan(fixture, request):
    db = request.getfixturevalue(fixture)
    rows = _parent_rows(db)
    slices = StepSlices(db, rows)
    for spec in enumerate_map_specs(db, SelectionCriteria.root()):
        np.testing.assert_array_equal(
            slices.group_hist(spec), direct_counts(db, spec, rows)
        )


@pytest.mark.parametrize("fixture", ["clean_db", "sparse_db"])
@pytest.mark.parametrize(
    "side,attribute",
    [(Side.REVIEWER, "gender"), (Side.REVIEWER, "age"), (Side.ITEM, "city")],
)
def test_cube_slices_equal_per_value_scans(fixture, side, attribute, request):
    """Every value's (n_groups, scale) slice == a scan of that child's rows."""
    db = request.getfixturevalue(fixture)
    rows = _parent_rows(db, seed=1)
    axis = axis_for(db, side, attribute)
    assert axis is not None
    slices = StepSlices(db, rows)
    specs = [
        s
        for s in enumerate_map_specs(db, SelectionCriteria.root())
        if not (s.side is side and s.attribute == attribute)
    ]
    grouping = db.aligned_grouping(side, attribute)
    sizes = slices.sizes(side, attribute)
    for code, label in enumerate(axis.labels):
        child_rows = rows[grouping.codes[rows] == code]
        assert sizes[code] == child_rows.size
        assert axis.code_of(label) == code
        for spec in specs:
            np.testing.assert_array_equal(
                slices.cube_slice((side, attribute), spec)[code],
                direct_counts(db, spec, child_rows),
            )


def test_multi_valued_attribute_has_no_axis(clean_db):
    assert axis_for(clean_db, Side.ITEM, "cuisine") is None
    assert (
        clean_db.entity_table(Side.ITEM).column("cuisine").type
        is ColumnType.MULTI_VALUED
    )


def test_pair_hist_shared_across_orientations(clean_db):
    slices = StepSlices(clean_db, _parent_rows(clean_db))
    a, b = (Side.REVIEWER, "gender"), (Side.ITEM, "city")
    forward = slices.pair_hist(a, b, "overall")
    backward = slices.pair_hist(b, a, "overall")
    np.testing.assert_array_equal(forward, backward.transpose(1, 0, 2))
    assert slices.pair_builds == 1


def test_empty_parent_rows_yield_zero_histograms(clean_db):
    slices = StepSlices(clean_db, np.empty(0, dtype=np.int64))
    spec = next(iter(enumerate_map_specs(clean_db, SelectionCriteria.root())))
    assert slices.group_hist(spec).sum() == 0
    assert slices.sizes(Side.REVIEWER, "gender").sum() == 0


def test_delta_counts_equal_direct(clean_db):
    db = clean_db
    parent = RatingGroup(
        db, SelectionCriteria((AVPair(Side.REVIEWER, "gender", "F"),))
    )
    # a CHANGE sibling: overlaps the parent on the item side only
    child = RatingGroup(
        db,
        SelectionCriteria(
            (AVPair(Side.REVIEWER, "gender", "M"),)
        ),
    )
    removed, added = split_rows(parent.rows, child.rows)
    assert prefer_delta(removed, added, child.rows.size) in (True, False)
    for spec in enumerate_map_specs(db, SelectionCriteria.root()):
        parent_counts = direct_counts(db, spec, parent.rows)
        np.testing.assert_array_equal(
            delta_counts(db, spec, parent_counts, removed, added),
            direct_counts(db, spec, child.rows),
        )
